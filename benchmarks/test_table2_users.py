"""Benchmark regenerating Table II: PSNR, bitrate and number of users
served under a saturated queue — the paper's 1.6x throughput headline."""

import pytest

from repro.experiments.table2 import format_table2, run_table2


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark, experiment_size, paper_scale):
    num_videos = 10 if paper_scale else 4
    size = dict(experiment_size)
    size["num_frames"] = min(size["num_frames"], 32)
    result = benchmark.pedantic(
        lambda: run_table2(num_videos=num_videos, seed=0, **size),
        rounds=1, iterations=1,
    )
    print("\n" + format_table2(result))

    # Paper shape assertions (Table II):
    # 1. The proposed approach serves clearly more users (paper 1.6x).
    assert result.user_ratio > 1.3
    # 2. Baseline lands at its paper operating point (~15-16 users on
    #    32 cores at VGA/24fps); allow one-user slack.
    assert 12 <= result.baseline.users_avg <= 18
    # 3. Proposed reaches the paper's 20-27 user range.
    assert 20 <= result.proposed.users_avg <= 32
    # 4. No quality collapse: averages within 2 dB of each other
    #    (paper: 40.5 vs 40.6 dB).
    assert abs(result.proposed.psnr_avg - result.baseline.psnr_avg) < 2.0
    # 5. Comparable compression (paper: 2.23 vs 2.23 Mbps).
    assert result.proposed.bitrate_avg <= 2.0 * result.baseline.bitrate_avg
