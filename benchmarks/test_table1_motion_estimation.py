"""Benchmark regenerating Table I: motion-estimation speedup, PSNR loss
and bitrate degradation vs TZ search across the paper's uniform
tilings."""

import pytest

from repro.experiments.table1 import format_table1, run_table1
from repro.tiling.uniform import TABLE1_TILINGS


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark, small_size):
    result = benchmark.pedantic(
        lambda: run_table1(seed=0, tilings=TABLE1_TILINGS, **small_size),
        rounds=1, iterations=1,
    )
    print("\n" + format_table1(result))

    # Paper shape assertions.
    # 1. Both fast searches beat TZ at every tiling.
    for row in result.proposed + result.hexagon:
        assert row.speedup > 1.0
    # 2. Speedup grows with tile count (1.3 -> ~5x in the paper).
    assert result.proposed[-1].speedup > result.proposed[0].speedup
    # 3. Average speedup is in the paper's regime (several-x, not 1.1x).
    assert result.average_speedup("proposed") > 2.0
    # 4. The proposed search is at least as fast as plain hexagon on
    #    average (the paper's §III-C2 improvement).
    assert (result.average_speedup("proposed")
            >= 0.95 * result.average_speedup("hexagon"))
    # 5. No meaningful encoding-efficiency degradation (paper: <=0.32 dB
    #    PSNR, <=0.5% bitrate; allow simulator slack).
    for row in result.proposed:
        assert row.psnr_loss_db < 0.5
        assert row.compression_loss_pct < 5.0
