"""Benchmark regenerating Fig. 3: tile structure + per-tile CPU time,
proposed content-aware re-tiling vs the Khan et al. [19] baseline."""

import pytest

from repro.experiments.fig3 import format_fig3, run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3(benchmark, experiment_size):
    size = dict(experiment_size)
    size["num_frames"] = min(size["num_frames"], 16)  # one steady GOP is enough
    result = benchmark.pedantic(
        lambda: run_fig3(seed=0, **size), rounds=1, iterations=1
    )
    print("\n" + format_fig3(result))

    # Paper shape assertions (Fig. 3a vs 3b):
    # 1. Content-aware tiling yields more tiles than one-per-core.
    assert len(result.proposed.tiles) > len(result.baseline.tiles)
    # 2. Proposed per-tile CPU times are diverse (an order of magnitude
    #    in the paper; at least several-x here).
    times = result.proposed.tile_cpu_times
    assert max(times) > 2 * min(times)
    # 3. Baseline tiles have near-equal CPU demand (workload balancing).
    btimes = result.baseline.tile_cpu_times
    assert max(btimes) < 2.5 * min(btimes)
    # 4. Proposed needs fewer or equal cores, with fewer cores pinned
    #    at f_max for the whole slot.
    assert result.proposed.cores_used <= result.baseline.cores_used
    assert (result.proposed.cores_at_fmax_whole_slot
            < result.baseline.cores_at_fmax_whole_slot
            + len(result.baseline.tiles))
    # 5. The whole frame is cheaper under the proposed configuration.
    assert result.proposed.frame_cpu_time < result.baseline.frame_cpu_time
