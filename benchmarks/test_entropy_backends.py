"""Entropy-backend comparison: static exp-Golomb vs the CABAC-style
adaptive arithmetic coder, on the *actual* quantized coefficients a
frame of medical video produces."""

import numpy as np
import pytest

from repro.codec.cabac import (
    BinaryArithmeticDecoder,
    BinaryArithmeticEncoder,
    CoefficientCabac,
)
from repro.codec.entropy import count_block_bits
from repro.codec.quant import quantize
from repro.codec.transform import blockify, forward_dct
from repro.video.generator import ContentClass, MotionPreset, generate_video


def _coefficient_blocks(qp: int, width=320, height=240):
    """Zigzag-scanned quantized coefficient blocks of a real frame."""
    from repro.codec.zigzag import zigzag_scan
    video = generate_video(
        content_class=ContentClass.BRAIN, motion=MotionPreset.STILL,
        width=width, height=height, num_frames=1, seed=0,
    )
    sub = blockify(video[0].luma.astype(np.float64) - 128.0, 8)
    levels = quantize(forward_dct(sub), qp)
    return zigzag_scan(levels)


@pytest.mark.benchmark(group="entropy-backends")
@pytest.mark.parametrize("qp", [27, 37])
def test_cabac_vs_golomb_rate(benchmark, qp):
    blocks = _coefficient_blocks(qp)

    def encode_cabac():
        enc = BinaryArithmeticEncoder()
        coder = CoefficientCabac()
        for i in range(blocks.shape[0]):
            coder.encode_block(enc, blocks[i])
        return enc.finish()

    data = benchmark.pedantic(encode_cabac, rounds=1, iterations=1)
    cabac_bits = len(data) * 8
    golomb_bits = sum(count_block_bits(blocks[i]) for i in range(blocks.shape[0]))
    ratio = cabac_bits / golomb_bits
    print(f"\nQP {qp}: golomb {golomb_bits} bits, cabac {cabac_bits} bits "
          f"({(1 - ratio) * 100:+.1f}% saving)")

    # Context modelling beats the static code on real coefficient
    # statistics (the HEVC-over-AVC entropy gain in miniature).
    assert cabac_bits < golomb_bits

    # And the stream still decodes exactly.
    dec = BinaryArithmeticDecoder(data)
    coder = CoefficientCabac()
    for i in range(min(50, blocks.shape[0])):
        decoded = coder.decode_block(dec, blocks.shape[1])
        np.testing.assert_array_equal(decoded, blocks[i])
