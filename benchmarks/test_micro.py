"""Micro-benchmarks of the hot paths: encoder throughput, motion search
rates, content analysis and re-tiling.

Unlike the experiment benchmarks (single-shot harness regenerations),
these use pytest-benchmark's statistical timing — they are the numbers
to watch when optimising the substrate.
"""

import numpy as np
import pytest

from repro.analysis.evaluator import ContentEvaluator
from repro.codec.config import EncoderConfig, FrameType
from repro.codec.encoder import FrameEncoder
from repro.motion import FullSearch, HexagonSearch, TZSearch
from repro.motion.base import SearchContext
from repro.tiling.content_aware import ContentAwareRetiler
from repro.tiling.uniform import uniform_tiling
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


@pytest.fixture(scope="module")
def frame_pair():
    cfg = GeneratorConfig(width=320, height=240, num_frames=2, seed=0,
                          content_class=ContentClass.BRAIN,
                          motion=MotionPreset.PAN_RIGHT, motion_magnitude=3.0)
    v = BioMedicalVideoGenerator(cfg).generate()
    return v[0].luma, v[1].luma


@pytest.mark.benchmark(group="micro-codec")
def test_encode_intra_frame(benchmark, frame_pair):
    _, cur = frame_pair
    grid = uniform_tiling(320, 240, 2, 2)
    configs = [EncoderConfig(qp=32)] * 4
    encoder = FrameEncoder()
    benchmark(lambda: encoder.encode(cur, grid, configs, FrameType.I))


@pytest.mark.benchmark(group="micro-codec")
def test_encode_inter_frame(benchmark, frame_pair):
    prev, cur = frame_pair
    grid = uniform_tiling(320, 240, 2, 2)
    configs = [EncoderConfig(qp=32, search="hexagon", search_window=32)] * 4
    encoder = FrameEncoder()
    _, recon = encoder.encode(prev, grid, configs, FrameType.I)
    benchmark(
        lambda: encoder.encode(cur, grid, configs, FrameType.P, reference=recon)
    )


def _search_ctx(frame_pair, window):
    prev, cur = frame_pair
    block = cur[112:128, 144:160]
    return SearchContext(prev, block, 144, 112, window, lambda_mv=4.0)


@pytest.mark.benchmark(group="micro-motion")
@pytest.mark.parametrize("alg,window", [
    (FullSearch(), 16),
    (TZSearch(), 64),
    (HexagonSearch(), 64),
], ids=["full-16", "tz-64", "hexagon-64"])
def test_motion_search(benchmark, frame_pair, alg, window):
    def run():
        ctx = _search_ctx(frame_pair, window)
        return alg.search(ctx)
    benchmark(run)


@pytest.mark.benchmark(group="micro-analysis")
def test_content_evaluation(benchmark, frame_pair):
    prev, cur = frame_pair
    grid = uniform_tiling(320, 240, 4, 3)
    evaluator = ContentEvaluator()
    benchmark(lambda: evaluator.evaluate(grid, cur, prev))


@pytest.mark.benchmark(group="micro-analysis")
def test_content_aware_retiling(benchmark, frame_pair):
    prev, cur = frame_pair
    retiler = ContentAwareRetiler()
    benchmark(lambda: retiler.retile(cur, prev))


@pytest.mark.benchmark(group="micro-generator")
def test_video_generation(benchmark):
    def run():
        cfg = GeneratorConfig(width=320, height=240, num_frames=4, seed=1)
        return BioMedicalVideoGenerator(cfg).generate()
    benchmark(run)
