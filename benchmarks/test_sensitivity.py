"""Sensitivity sweeps beyond the paper's evaluation: frame rate,
platform size, and the QP ladder.

The paper fixes FPS = 24 and the 32-core Xeon; these sweeps check that
the reproduced advantage is not an artefact of that single operating
point ("our proposed methodology is valid for any arbitrary resolution
and frame rate", §IV-A).
"""

import numpy as np
import pytest

from repro.allocation import KhanAllocator, ProposedAllocator
from repro.codec.config import EncoderConfig
from repro.codec.encoder import VideoEncoder
from repro.platform.mpsoc import GHZ, MpsocConfig
from repro.transcode.pipeline import PipelineConfig, PipelineMode, StreamTranscoder
from repro.transcode.server import TranscodingServer
from repro.video.generator import ContentClass, MotionPreset, generate_video


@pytest.fixture(scope="module")
def video(small_size):
    return generate_video(
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        seed=0, **small_size,
    )


@pytest.mark.benchmark(group="sensitivity-fps")
def test_fps_sweep(benchmark, video):
    """The user-count advantage persists across target frame rates."""
    def sweep():
        ratios = {}
        for fps in (15.0, 24.0, 30.0):
            tp = StreamTranscoder(
                PipelineConfig(mode=PipelineMode.PROPOSED, fps=fps)
            ).run(video)
            tk = StreamTranscoder(PipelineConfig.khan(fps=fps)).run(video)
            server = TranscodingServer(fps=fps)
            up = server.serve([tp], ProposedAllocator()).num_users_served
            uk = server.serve([tk], KhanAllocator()).num_users_served
            ratios[fps] = (up, uk)
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nfps -> (proposed users, khan users):", ratios)
    for fps, (up, uk) in ratios.items():
        assert up >= uk, f"advantage lost at {fps} fps"
    # Lower fps -> longer slots -> more users for both.
    assert ratios[15.0][0] >= ratios[30.0][0]


@pytest.mark.benchmark(group="sensitivity-platform")
def test_platform_size_sweep(benchmark, video):
    """The throughput factor holds from 8 to 64 cores."""
    tp = StreamTranscoder(PipelineConfig()).run(video)
    tk = StreamTranscoder(PipelineConfig.khan()).run(video)

    def sweep():
        results = {}
        for sockets, cores in ((1, 8), (2, 8), (4, 8), (4, 16)):
            platform = MpsocConfig(num_sockets=sockets, cores_per_socket=cores)
            server = TranscodingServer(platform=platform)
            up = server.serve([tp], ProposedAllocator(platform)).num_users_served
            uk = server.serve([tk], KhanAllocator(platform)).num_users_served
            results[platform.num_cores] = (up, uk)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\ncores -> (proposed users, khan users):", results)
    for n, (up, uk) in results.items():
        assert up >= uk
    # Served users scale with the platform for both approaches.
    ups = [results[n][0] for n in sorted(results)]
    assert ups == sorted(ups)


@pytest.mark.benchmark(group="sensitivity-qp")
def test_qp_ladder_rate_distortion(benchmark, video):
    """The paper's QP ladder spans a monotone RD curve on the
    substrate codec (the premise of Algorithm 1)."""
    def sweep():
        points = []
        for qp in (22, 27, 32, 37, 42):
            stats = VideoEncoder(
                EncoderConfig(qp=qp, search_window=16)
            ).encode(video)
            points.append((qp, stats.average_psnr,
                           stats.bitrate_mbps(24.0)))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nQP -> (PSNR dB, Mbps):",
          [(q, round(p, 2), round(r, 3)) for q, p, r in points])
    psnrs = [p for _, p, _ in points]
    rates = [r for _, _, r in points]
    assert psnrs == sorted(psnrs, reverse=True)
    assert rates == sorted(rates, reverse=True)
