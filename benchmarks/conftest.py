"""Benchmark configuration.

The experiment benchmarks regenerate the paper's tables and figures at
reduced-but-meaningful sizes (QVGA/VGA, a few GOPs) so a full
``pytest benchmarks/ --benchmark-only`` run completes in minutes on a
laptop.  Pass ``--paper-scale`` to run at the paper's full size
(640x480, hundreds of frames) — expect a long run.

Each experiment benchmark *asserts the paper's qualitative claims*
(who wins, roughly by how much) in addition to timing the harness, and
prints the regenerated table/figure so the numbers land in the
benchmark log.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run experiment benchmarks at the paper's full scale",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    return request.config.getoption("--paper-scale")


@pytest.fixture(scope="session")
def experiment_size(paper_scale):
    """(width, height, num_frames) for the experiment harnesses."""
    if paper_scale:
        return dict(width=640, height=480, num_frames=400)
    return dict(width=640, height=480, num_frames=16)


@pytest.fixture(scope="session")
def small_size(paper_scale):
    """Cheaper size for the sweeps that encode many configurations."""
    if paper_scale:
        return dict(width=640, height=480, num_frames=48)
    return dict(width=320, height=240, num_frames=16)
