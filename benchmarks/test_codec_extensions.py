"""Rate-distortion benchmarks of the codec extensions: B frames,
half-pel motion compensation, and 4:2:0 chroma.

These quantify what each extension buys (or costs) on bio-medical
content, beyond the round-trip correctness the unit tests verify.
"""

import numpy as np
import pytest

from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.encoder import FrameCodec, VideoEncoder
from repro.tiling.uniform import uniform_tiling
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


@pytest.fixture(scope="module")
def subpel_video():
    """Sub-pixel panning: the case half-pel MC exists for."""
    return BioMedicalVideoGenerator(GeneratorConfig(
        width=160, height=128, num_frames=16, seed=1,
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        motion_magnitude=1.5, noise_sigma=0.0,
    )).generate()


@pytest.mark.benchmark(group="codec-ext")
def test_half_pel_rd(benchmark, subpel_video):
    base = EncoderConfig(qp=27, search_window=8)
    stats_int = VideoEncoder(base).encode(subpel_video)

    stats_half = benchmark.pedantic(
        lambda: VideoEncoder(
            EncoderConfig(qp=27, search_window=8, half_pel=True)
        ).encode(subpel_video),
        rounds=1, iterations=1,
    )
    saving = (1 - stats_half.total_bits / stats_int.total_bits) * 100
    print(f"\nhalf-pel: {stats_int.total_bits} -> {stats_half.total_bits} bits "
          f"({saving:+.1f}%), PSNR {stats_int.average_psnr:.2f} -> "
          f"{stats_half.average_psnr:.2f} dB")
    assert stats_half.total_bits < stats_int.total_bits
    assert stats_half.average_psnr > stats_int.average_psnr - 0.1


@pytest.mark.benchmark(group="codec-ext")
def test_b_frames_rd(benchmark, subpel_video):
    base = EncoderConfig(qp=32, search_window=8)
    stats_p = VideoEncoder(base, GopConfig(8)).encode(subpel_video)

    stats_b = benchmark.pedantic(
        lambda: VideoEncoder(
            base, GopConfig(8, use_b_frames=True)
        ).encode(subpel_video),
        rounds=1, iterations=1,
    )
    print(f"\nB frames: {stats_p.total_bits} -> {stats_b.total_bits} bits, "
          f"ME ops {stats_p.ops.sad_pixel_ops} -> {stats_b.ops.sad_pixel_ops}")
    # Bi-prediction must not hurt rate meaningfully; it does cost ME.
    assert stats_b.total_bits <= stats_p.total_bits * 1.1
    assert stats_b.ops.sad_pixel_ops > stats_p.ops.sad_pixel_ops


@pytest.mark.benchmark(group="codec-ext")
def test_chroma_420_overhead(benchmark):
    """Chroma costs a minor share of the stream on medical content."""
    video = BioMedicalVideoGenerator(GeneratorConfig(
        width=160, height=128, num_frames=8, seed=2,
        content_class=ContentClass.CARDIAC, motion=MotionPreset.PAN_RIGHT,
        with_chroma=True,
    )).generate()
    grid = uniform_tiling(video.width, video.height, 2, 1, align=16)
    configs = [EncoderConfig(qp=30, search_window=8)] * 2
    gop = GopConfig(8)

    def run():
        codec = FrameCodec()
        refs = []
        luma_bits = 0
        chroma_bits = 0
        for i, frame in enumerate(video):
            stats, chroma, recon = codec.encode_frame(
                frame, grid, configs, gop.frame_type(i),
                reference_frames=refs, frame_index=i,
            )
            luma_bits += stats.bits
            chroma_bits += chroma.bits
            refs = [recon] + refs[:1]
        return luma_bits, chroma_bits

    luma_bits, chroma_bits = benchmark.pedantic(run, rounds=1, iterations=1)
    share = chroma_bits / (luma_bits + chroma_bits) * 100
    print(f"\nchroma share: {share:.1f}% of the stream "
          f"({chroma_bits} of {luma_bits + chroma_bits} bits)")
    assert share < 40.0
