"""Benchmark regenerating Fig. 4: power savings of the proposed
approach vs [19] across user counts."""

import pytest

from repro.experiments.fig4 import FIG4_USER_COUNTS, format_fig4, run_fig4


@pytest.mark.benchmark(group="fig4")
def test_fig4(benchmark, experiment_size, paper_scale):
    num_videos = 4 if paper_scale else 2
    size = dict(experiment_size)
    size["num_frames"] = min(size["num_frames"], 16)
    result = benchmark.pedantic(
        lambda: run_fig4(num_videos=num_videos, seed=0,
                         user_counts=FIG4_USER_COUNTS, **size),
        rounds=1, iterations=1,
    )
    print("\n" + format_fig4(result))

    # Paper shape assertions (Fig. 4):
    # 1. Positive savings at every user count.
    for n, s in result.savings_percent.items():
        assert s > 0, f"no savings at {n} users"
    # 2. Savings grow toward saturation.
    assert result.savings_percent[12] > result.savings_percent[1]
    # 3. Peak savings approach the paper's 44% claim.
    assert result.peak_savings > 35.0
    # 4. Meaningful average savings.
    assert result.average_savings > 20.0
