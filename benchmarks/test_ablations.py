"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation swaps one mechanism for an alternative and reports the
impact on the quantities the paper optimises (workload, users served,
power, quality).
"""

import numpy as np
import pytest

from repro.allocation import (
    FirstFitAllocator,
    KhanAllocator,
    ProposedAllocator,
    UserDemand,
    WorstFitAllocator,
)
from repro.analysis.evaluator import ContentEvaluator
from repro.analysis.motion_probe import MotionProbeConfig
from repro.platform.power import PowerModel
from repro.platform.schedule import DvfsPolicy, ThreadTask
from repro.tiling.constraints import TilingConstraints
from repro.tiling.content_aware import ContentAwareRetiler
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.transcode.server import TranscodingServer
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
    generate_video,
)
from repro.workload.estimator import WorkloadEstimator
from repro.workload.keys import WorkloadKey, area_bucket


@pytest.fixture(scope="module")
def video(small_size):
    return generate_video(
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        seed=0, motion_magnitude=3.0, **small_size,
    )


@pytest.fixture(scope="module")
def proposed_trace(video):
    return StreamTranscoder(PipelineConfig()).run(video)


# ----------------------------------------------------------------------
# Ablation 1: motion-probe coefficients (1,3,3) vs uniform (1,1,1)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-probe")
def test_motion_probe_coefficients(benchmark, video):
    """The paper weights centre/max comparisons 3x because medical
    information concentrates centrally.  At the same threshold, the
    centre-weighted probe is *more selective*: a tile goes HIGH when
    its diagnostically relevant points move, not when 3 of 4 border
    corners flicker — so it flags fewer tiles overall while still
    catching the content motion (every HIGH tile costs a bigger search
    window downstream, so selectivity is compute)."""
    paper_cfg = MotionProbeConfig()                       # (1, 3, 3)
    uniform_cfg = MotionProbeConfig(beta=1.0, gamma=1.0)  # (1, 1, 1)

    def classify(cfg):
        from repro.analysis.motion_probe import MotionClass
        retiler = ContentAwareRetiler(
            evaluator=ContentEvaluator(motion_config=cfg)
        )
        high = 0
        total = 0
        for prev, cur in zip(video.frames[:-1], video.frames[1:]):
            result = retiler.retile(cur.luma, prev.luma)
            high += sum(
                1 for c in result.contents if c.motion is MotionClass.HIGH
            )
            total += len(result.contents)
        return high, total

    high_paper, total_paper = benchmark.pedantic(
        lambda: classify(paper_cfg), rounds=1, iterations=1
    )
    high_uniform, _ = classify(uniform_cfg)
    print(f"\nhigh-motion tiles: paper-coeffs {high_paper}/{total_paper}, "
          f"uniform-coeffs {high_uniform}/{total_paper}")
    # Selectivity: the centre-weighted probe flags no more tiles than
    # the corner-dominated uniform probe ...
    assert high_paper <= high_uniform
    # ... while still detecting the content motion somewhere.
    assert high_paper > 0


# ----------------------------------------------------------------------
# Ablation 2: corner growth step 25% vs 10% / 50%
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-growth")
def test_growth_step(benchmark, video):
    """25% growth balances margin quality against evaluation count
    (the paper found it experimentally)."""
    import time

    def measure(step):
        retiler = ContentAwareRetiler(TilingConstraints(growth_step=step))
        t0 = time.perf_counter()
        result = retiler.retile(video[1].luma, video[0].luma)
        elapsed = time.perf_counter() - t0
        return len(result.grid), elapsed

    results = {}
    for step in (0.10, 0.25, 0.50):
        results[step] = measure(step)
    benchmark.pedantic(lambda: measure(0.25), rounds=3, iterations=1)
    print("\ngrowth step -> (tiles, retile seconds):",
          {k: (v[0], round(v[1], 5)) for k, v in results.items()})
    # Finer steps cannot be faster than coarser ones (more evaluations).
    assert results[0.10][1] >= results[0.50][1] * 0.5


# ----------------------------------------------------------------------
# Ablation 3: LUT workload estimation vs oracle vs naive global mean
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-lut")
def test_workload_estimation_accuracy(benchmark, proposed_trace):
    """The per-key LUT tracks per-tile CPU time far better than a
    single global mean (and approaches the oracle)."""
    records = [
        (t, f.frame_type)
        for g in proposed_trace.gops for f in g.frames for t in f.tiles
    ]
    assert len(records) > 20

    def lut_errors():
        est = WorkloadEstimator()
        area_of = {}
        for g in proposed_trace.gops:
            for i, tile in enumerate(g.grid):
                area_of[(g.gop_index, i)] = tile.area
        errors = []
        for g in proposed_trace.gops:
            for f in g.frames:
                for t in f.tiles:
                    area = area_of.get((g.gop_index, t.tile_index), 4096)
                    key = WorkloadKey(
                        texture=t.texture, motion=t.motion, qp=t.qp,
                        search_window=t.search_window, frame_type=f.frame_type,
                        area_bucket=area_bucket(area),
                    )
                    errors.append(abs(est.estimate(key, area) - t.cpu_time_fmax))
                    est.observe(key, t.cpu_time_fmax)
        return float(np.mean(errors[len(errors) // 2:]))  # warmed-up half

    lut_err = benchmark.pedantic(lut_errors, rounds=1, iterations=1)
    times = [t.cpu_time_fmax for t, _ in records]
    global_mean = float(np.mean(times))
    naive_err = float(np.mean([abs(global_mean - t) for t in times]))
    print(f"\nLUT mean abs error {lut_err * 1e6:.1f} us vs "
          f"naive global mean {naive_err * 1e6:.1f} us")
    assert lut_err < naive_err
    # The paper reports sub-100 us estimation once trained.
    assert lut_err < 500e-6


# ----------------------------------------------------------------------
# Ablation 4: min-distance-to-cap packing vs first-fit / worst-fit
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-packing")
def test_packing_heuristics(benchmark, proposed_trace):
    """Compare the slot balance of the three packers on a realistic
    thread population."""
    gop = proposed_trace.steady_state_gop()
    demands = [
        UserDemand(
            user_id=u,
            threads=[
                ThreadTask(thread_id=i, user_id=u, cpu_time_fmax=t.cpu_time_fmax,
                           tile_index=i)
                for i, t in enumerate(gop.frames[-1].tiles)
            ],
        )
        for u in range(8)
    ]
    pm = PowerModel()

    def run(allocator):
        result = allocator.allocate(demands, 24.0)
        sched = result.schedule
        loads = [s.load_fmax for s in sched.slots]
        return sched.average_power(pm), float(np.std(loads)), max(loads)

    power_cap, _, max_cap = benchmark.pedantic(
        lambda: run(ProposedAllocator()), rounds=1, iterations=1
    )
    power_ff, _, max_ff = run(FirstFitAllocator())
    power_wf, _, max_wf = run(WorstFitAllocator())
    print(f"\navg power (W): distance-to-cap {power_cap:.1f}, "
          f"first-fit {power_ff:.1f}, worst-fit {power_wf:.1f}")
    print(f"max core load (s): {max_cap:.4f} / {max_ff:.4f} / {max_wf:.4f}")
    # The paper's packer must not be worse than first-fit on power and
    # must keep the max load within the slot.
    assert power_cap <= power_ff * 1.05
    assert max_cap <= 1.0 / 24.0 + 1e-9


# ----------------------------------------------------------------------
# Ablation 5: per-GOP vs per-frame re-tiling
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-retiling")
def test_retiling_granularity(benchmark, video):
    """Per-GOP re-tiling (the paper's choice) keeps adaptation state
    alive; per-frame re-tiling churns tile identities."""
    import time

    def run(per_gop):
        t0 = time.perf_counter()
        trace = StreamTranscoder(
            PipelineConfig(retile_per_gop=per_gop)
        ).run(video)
        wall = time.perf_counter() - t0
        frame_cpu = np.mean([f.cpu_time_fmax for f in trace.frame_records])
        return trace.average_psnr, float(frame_cpu), wall

    psnr_gop, cpu_gop, wall_gop = benchmark.pedantic(
        lambda: run(True), rounds=1, iterations=1
    )
    psnr_frame, cpu_frame, wall_frame = run(False)
    print(f"\nper-GOP: psnr {psnr_gop:.2f} dB, frame cpu {cpu_gop:.4f} s, "
          f"wall {wall_gop:.1f} s")
    print(f"per-frame: psnr {psnr_frame:.2f} dB, frame cpu {cpu_frame:.4f} s, "
          f"wall {wall_frame:.1f} s")
    # Quality must be comparable; the per-GOP scheme must not cost
    # noticeably more encoder CPU.
    assert abs(psnr_gop - psnr_frame) < 1.5
    assert cpu_gop <= cpu_frame * 1.15


# ----------------------------------------------------------------------
# Ablation 6: DVFS policy (STRETCH vs RACE_TO_IDLE vs ALWAYS_ON)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-dvfs")
def test_dvfs_policies(benchmark, proposed_trace):
    """Quantify what each DVFS policy contributes to Fig. 4."""
    server = TranscodingServer()

    def power(policy, energy_aware=True):
        alloc = ProposedAllocator(dvfs_policy=policy,
                                  energy_aware_pool=energy_aware)
        return server.serve([proposed_trace], alloc, num_users=8).average_power_w

    p_stretch = benchmark.pedantic(
        lambda: power(DvfsPolicy.STRETCH), rounds=1, iterations=1
    )
    p_race = power(DvfsPolicy.RACE_TO_IDLE, energy_aware=False)
    p_always = power(DvfsPolicy.ALWAYS_ON, energy_aware=False)
    print(f"\npower @8 users: stretch {p_stretch:.1f} W, "
          f"race-to-idle {p_race:.1f} W, always-on {p_always:.1f} W")
    assert p_stretch <= p_race <= p_always
