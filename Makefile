# Developer entry points.  `make check` is the pre-commit gate: the
# tier-1 test suite plus a fast smoke pass over the benchmark harnesses
# (their `-m 'not slow'` subset runs each micro-benchmark once without
# timing loops).  Coverage is collected when pytest-cov is installed
# and skipped silently otherwise — the toolchain image does not bake
# the plugin in, and the suite must not depend on it.

PY      := python
PYTEST  := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) $(PY) -m pytest
HAS_COV := $(shell $(PY) -c "import pytest_cov" 2>/dev/null && echo 1)
COVOPTS := $(if $(HAS_COV),--cov=repro --cov-report=term-missing)

.PHONY: check test bench-smoke bench-serving golden serve-demo \
	serve-smoke chaos fleet-chaos ladder-smoke policy-smoke torture clean

check: test bench-smoke bench-serving serve-smoke chaos fleet-chaos \
	ladder-smoke policy-smoke torture

test:
	$(PYTEST) -x -q $(COVOPTS)

bench-smoke:
	$(PYTEST) benchmarks -q -p no:cacheprovider --override-ini="addopts=" \
		-m "not slow" --co -q >/dev/null
	$(PYTEST) benchmarks/test_micro.py -q --override-ini="addopts=" \
		-m "not slow" --benchmark-disable

# Serving hot-path regression tripwire: one small unpaced loadgen
# round against a live server; fails if end-to-end throughput falls
# below the pre-hot-path seed floor.  Full measurement (BENCH_6.json):
# `python -m repro.serving.bench_serving`.
bench-serving:
	PYTHONPATH=src $(PY) -m repro.serving.bench_serving --smoke

# Regenerate the golden trace after an intentional instrumentation change.
golden:
	$(PYTEST) tests/test_golden_trace.py -q --update-golden

# End-to-end gate for the network serving layer: ephemeral port, a few
# short loadgen sessions, fails on any protocol error or an empty
# serving-metrics snapshot.
serve-smoke:
	PYTHONPATH=src $(PY) -m repro.serving.smoke

# Fixed-seed chaos drill: journaled server behind the chaos proxy, a
# deterministic mid-stream cut, fault-tolerant clients; fails unless
# the severed session RESUMEs and every frame outcome is delivered.
chaos:
	PYTHONPATH=src $(PY) -m repro.serving.chaos_smoke

# Fixed-seed fleet failover drill: SIGKILL one of two workers
# mid-stream; fails unless the dead worker's sessions are adopted by
# the survivor, delivery is bit-identical to an uninterrupted
# reference pass, and the supervisor restarts the dead slot.
fleet-chaos:
	PYTHONPATH=src $(PY) -m repro.serving.fleet_smoke

# Fixed-seed rendition-ladder drill: encodes one stream into a 3-rung
# ladder, checks GOP-aligned segments + manifest, per-rung bit-identity
# with independent sessions, and the golden per-rung digests.  After an
# intentional codec change: `make ladder-smoke UPDATE=--update-golden`.
ladder-smoke:
	PYTHONPATH=src $(PY) -m repro.ladder.smoke $(UPDATE)

# Fixed-seed brownout drill: four tenants through Algorithm 2 on a
# policy-clamped platform with a mid-run surge; fails unless tenants
# shed in strict reverse-priority order (emergency never dropped),
# windowed power settles inside the cap, hysteretic readmission
# restores everyone, and the event/power digest matches the golden.
# After an intentional policy/model change:
# `make policy-smoke UPDATE=--update-golden`.
policy-smoke:
	PYTHONPATH=src $(PY) -m repro.policy.smoke $(UPDATE)

# Fixed-seed crash-consistency torture drill: records every durable
# mutation of a pinned serving drill, checks the write-point digest
# against tests/golden/torture_points.json, simulates a crash (and a
# torn write) at every recorded point asserting each prefix restores
# bit-identically or fails with a typed StorageError, then runs a live
# ENOSPC durability-brownout drill.  After an intentional change to
# the set of durable write paths: `make torture UPDATE=--update-golden`.
torture:
	PYTHONPATH=src $(PY) -m repro.storage.torture $(UPDATE)

# One-shot observability demo: writes metrics.json + trace.jsonl.
serve-demo:
	PYTHONPATH=src $(PY) -m repro.cli serve --videos 2 --frames 8 \
		--users 8 --metrics-out metrics.json --trace-out trace.jsonl

clean:
	rm -rf .pytest_cache .hypothesis metrics.json trace.jsonl
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
