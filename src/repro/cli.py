"""Command-line interface.

Usage::

    python -m repro.cli generate --content brain --out video.npz
    python -m repro.cli encode video.npz --qp 32 --search hexagon --tiles 2x2
    python -m repro.cli transcode video.npz [--baseline] [--parallel-workers N]
    python -m repro.cli serve --metrics-out metrics.json --trace-out trace.jsonl
    python -m repro.cli serve-net --port 9470 [--duration 10] [--journal-dir j]
    python -m repro.cli serve-fleet --workers 4 --journal-dir j [--port 9470]
    python -m repro.cli loadgen --port 9470 --sessions 3 [--max-reconnects 3]
    python -m repro.cli chaos --port 9471 --upstream-port 9470 --reset-rate 0.01
    python -m repro.cli metrics metrics.json [--prom]
    python -m repro.cli experiment table1|fig3|table2|fig4 [options...]
    python -m repro.cli fault-drill --seed 0
    python -m repro.cli bench [--groups motion codec] [--out BENCH.json]

``generate`` writes a synthetic bio-medical video; ``encode`` runs the
codec substrate with a fixed configuration and reports PSNR/bitrate and
simulated CPU time; ``transcode`` runs the full content-aware pipeline
(or the [19] baseline); ``experiment`` regenerates one of the paper's
tables/figures (forwarding the remaining arguments to that harness);
``fault-drill`` runs a seeded chaos scenario (corrupt frames, CPU-time
spikes, core failures, LUT corruption) through the whole serving stack
and prints a survival report; ``bench`` runs the micro-benchmarks and
records throughput to ``BENCH_<n>.json``.

``--parallel-workers N`` on ``encode``/``transcode`` encodes each
frame's tiles concurrently on a process pool (N=0 uses every core);
the output is bit-exact with the serial path.

``serve`` runs the multi-user serving simulation end-to-end (measure a
small corpus, pack users with Algorithm 2) and exports the
observability artifacts: ``--metrics-out`` writes the metrics registry
snapshot as JSON, ``--trace-out`` enables span tracing and writes the
trace buffer as JSONL.  ``metrics`` pretty-prints such a snapshot
(``--prom`` emits Prometheus text exposition instead).

``serve-net`` runs the real asyncio network front-end (admission
control, backpressure, online GOP encoding); ``loadgen`` drives it with
a seeded arrival process and content mix and prints a latency /
deadline-miss report.  ``--seed`` on ``serve``/``serve-net``/``loadgen``
makes every stochastic component (corpus, fault injection, arrivals,
content mix) reproducible.

``serve-net --journal-dir`` enables the fault-tolerance stack of
``DESIGN.md`` §11: per-session journals, RESUME after a connection
loss, SIGTERM graceful drain (parked sessions survive a restart) and a
warm LUT checkpoint.  ``loadgen --max-reconnects N`` makes the clients
fault tolerant (exponential backoff + seeded jitter, RESUME with the
server's token).  ``chaos`` interposes a seeded TCP fault proxy —
latency spikes, resets, corruption, half-open stalls, or a
deterministic mid-stream cut — between the two.

``serve-fleet`` runs the supervised multi-worker fleet of ``DESIGN.md``
§12: N worker processes behind one public port, heartbeat monitoring,
crash restarts with exponential backoff and a flap circuit breaker, and
cross-worker session adoption — a RESUME token whose owning worker died
is adopted by a survivor from the shared ``--journal-dir``.  The
long-running commands accept ``--run-dir`` so their pidfiles land in a
dedicated run directory instead of the CWD.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.codec.config import EncoderConfig, GopConfig
from repro.codec.encoder import VideoEncoder
from repro.platform.cost_model import CostModel
from repro.platform.mpsoc import XEON_E5_2667
from repro.tiling.uniform import uniform_tiling
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video import io as video_io
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


def _cmd_generate(args: argparse.Namespace) -> int:
    cfg = GeneratorConfig(
        width=args.width, height=args.height, num_frames=args.frames,
        fps=args.fps, content_class=ContentClass(args.content),
        motion=MotionPreset(args.motion), motion_magnitude=args.magnitude,
        seed=args.seed,
    )
    video = BioMedicalVideoGenerator(cfg).generate()
    video_io.save_npz(video, args.out)
    print(f"wrote {args.out}: {video.name}, {len(video)} frames "
          f"{video.width}x{video.height} @ {video.fps:g} fps")
    return 0


def _parse_tiles(spec: str):
    try:
        cols, rows = (int(x) for x in spec.lower().split("x"))
    except ValueError:
        raise SystemExit(f"invalid tiling {spec!r}; expected e.g. 2x2")
    return cols, rows


def _cmd_encode(args: argparse.Namespace) -> int:
    video = video_io.load_npz(args.video)
    cols, rows = _parse_tiles(args.tiles)
    grid = uniform_tiling(video.width, video.height, cols, rows)
    config = EncoderConfig(qp=args.qp, search=args.search,
                           search_window=args.window)
    encoder = VideoEncoder(config, GopConfig(args.gop, use_b_frames=args.b_frames),
                           parallel_workers=args.parallel_workers)
    stats = encoder.encode(video, grid)
    cpu = CostModel().seconds(stats.ops, XEON_E5_2667.f_max)
    print(f"encoded {len(stats.frames)} frames "
          f"({cols}x{rows} tiles, QP {args.qp}, {args.search}/{args.window})")
    print(f"  PSNR   : {stats.average_psnr:.2f} dB")
    print(f"  bitrate: {stats.bitrate_mbps(video.fps):.3f} Mbps")
    print(f"  CPU    : {cpu:.3f} simulated seconds at f_max "
          f"({cpu / len(stats.frames) * 1e3:.1f} ms/frame)")
    return 0


def _cmd_transcode(args: argparse.Namespace) -> int:
    video = video_io.load_npz(args.video)
    parallel = {}
    if args.parallel_workers is not None:
        parallel = dict(parallel_tiles=True,
                        parallel_workers=args.parallel_workers or None)
    if args.baseline:
        config = PipelineConfig.khan(fps=video.fps, **parallel)
        label = "Khan et al. [19] baseline"
    else:
        config = PipelineConfig(fps=video.fps, **parallel)
        label = "proposed content-aware pipeline"
    with StreamTranscoder(config) as transcoder:
        trace = transcoder.run(video)
    gop = trace.steady_state_gop()
    times = gop.mean_tile_cpu_times()
    print(f"transcoded with the {label}:")
    print(f"  PSNR   : {trace.average_psnr:.2f} dB "
          f"(min {trace.min_psnr:.2f} / max {trace.max_psnr:.2f})")
    print(f"  bitrate: {trace.bitrate_mbps:.3f} Mbps")
    print(f"  tiling : {len(gop.grid)} tiles, frame CPU {sum(times) * 1e3:.1f} ms")
    for content, cpu in zip(gop.contents, times):
        t = content.tile
        print(f"    ({t.x:>4},{t.y:>4}) {t.width:>4}x{t.height:<4} "
              f"{cpu * 1e3:6.2f} ms")
    return 0


def _parse_rungs(specs):
    rungs = []
    for spec in specs:
        try:
            w, h = (int(x) for x in spec.lower().split("x"))
        except ValueError:
            raise SystemExit(f"invalid rung {spec!r}; expected e.g. 480x360")
        rungs.append((w, h))
    return tuple(rungs)


def _cmd_ladder(args: argparse.Namespace) -> int:
    from repro.ladder import (
        LadderConfig,
        LadderRung,
        LadderSegmentWriter,
        LadderSession,
        default_rungs_for,
    )

    if args.video:
        video = video_io.load_npz(args.video)
    else:
        video = BioMedicalVideoGenerator(GeneratorConfig(
            width=args.width, height=args.height, num_frames=args.frames,
            fps=args.fps, content_class=ContentClass(args.content),
            seed=args.seed,
        )).generate()
    if args.rungs:
        rungs = tuple(LadderRung(w, h) for w, h in _parse_rungs(args.rungs))
    else:
        rungs = default_rungs_for(video.width, video.height)
    ladder_cfg = LadderConfig(
        rungs=rungs, prune=not args.no_prune,
        min_gain_db=args.min_gain_db, segment_gops=args.segment_gops,
    )
    pipeline = PipelineConfig(fps=video.fps, gop=GopConfig(args.gop))
    writer = None
    with LadderSession(base_config=pipeline, ladder=ladder_cfg) as session:
        for frame in video.frames:
            outputs = session.push(frame)
            if writer is None:
                # The plan exists after the first push (planning needs
                # the first frame's features).
                writer = LadderSegmentWriter(
                    args.out, session.plan, video.width, video.height,
                    gop=args.gop, segment_gops=args.segment_gops,
                    fps=video.fps,
                )
            for out in outputs:
                writer.add(out)
        for out in session.finish():
            writer.add(out)
        manifest = writer.finalize()
    print(f"wrote {args.out}: ladder of {len(manifest['rungs'])} rung(s) "
          f"from {video.width}x{video.height} "
          f"(complexity {manifest['complexity']:.3f})")
    for rung in manifest["rungs"]:
        frames = sum(s["frames"] for s in rung["segments"])
        print(f"  rung {rung['id']} {rung['name']:>5} "
              f"{rung['width']}x{rung['height']}: "
              f"{len(rung['segments'])} segment(s), {frames} frames")
    for pruned in manifest["pruned"]:
        print(f"  rung {pruned['id']} pruned "
              f"(predicted gain {pruned['predicted_gain_db']:.2f} dB "
              f"< {args.min_gain_db:g} dB)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.allocation.proposed import ProposedAllocator
    from repro.experiments.common import medical_corpus
    from repro.observability import (
        disable_tracing,
        enable_tracing,
        get_registry,
        get_tracer,
    )
    from repro.transcode.server import TranscodingServer
    from repro.workload.estimator import WorkloadEstimator

    if args.trace_out:
        enable_tracing()
    try:
        videos = medical_corpus(
            width=args.width, height=args.height, num_frames=args.frames,
            seed=args.seed, num_videos=args.videos,
        )
        estimator = WorkloadEstimator()
        traces = []
        for video in videos:
            config = PipelineConfig(fps=args.fps)
            with StreamTranscoder(config, estimator=estimator) as transcoder:
                traces.append(transcoder.run(video))
        server = TranscodingServer(fps=args.fps)
        report = server.serve(
            traces, ProposedAllocator(), num_users=args.users
        )
        print(f"served {report.num_users_served}/{report.num_users_requested} "
              f"users at {args.fps:g} fps "
              f"({report.average_power_w:.1f} W average)")
        if report.psnr_avg is not None:
            print(f"  PSNR   : {report.psnr_avg:.2f} dB avg")
        if report.bitrate_avg_mbps is not None:
            print(f"  bitrate: {report.bitrate_avg_mbps:.3f} Mbps avg")
        if args.metrics_out:
            with open(args.metrics_out, "w") as fh:
                fh.write(get_registry().to_json())
                fh.write("\n")
            print(f"wrote metrics snapshot to {args.metrics_out}")
        if args.trace_out:
            n = get_tracer().to_jsonl(args.trace_out)
            print(f"wrote {n} trace records to {args.trace_out}")
        return 0
    finally:
        if args.trace_out:
            disable_tracing()


def _enter_run_dir(run_dir: Optional[str], name: str) -> Optional[str]:
    """Materialise ``run_dir`` and drop ``<name>.pid`` into it.

    Long-running commands (``serve-net``, ``serve-fleet``, ``chaos``)
    own their runtime artifacts: the pidfile lands in the run directory
    instead of whatever the shell's CWD happens to be (historically the
    repo root), so harnesses that background them can find the pid
    without ``echo $! > server.pid`` debris.  Returns the pidfile path,
    or ``None`` when no run directory was requested.
    """
    if not run_dir:
        return None
    os.makedirs(run_dir, exist_ok=True)
    path = os.path.join(run_dir, f"{name}.pid")
    with open(path, "w") as fh:
        fh.write(f"{os.getpid()}\n")
    return path


def _cmd_serve_net(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.observability import get_registry
    from repro.serving.admission import AdmissionPolicy
    from repro.serving.server import NetworkServer, ServeNetConfig

    _enter_run_dir(args.run_dir, "server")
    config = ServeNetConfig(
        host=args.host, port=args.port, fps=args.fps, gop=args.gop,
        seed=args.seed, queue_frames=args.queue_frames,
        egress_frames=args.egress_frames,
        parallel_workers=args.parallel_workers,
        fault_spike_rate=args.spike_rate,
        fault_spike_factor=args.spike_factor,
        admission=AdmissionPolicy(utilization=args.utilization,
                                  park_capacity=args.park_capacity),
        journal_dir=args.journal_dir,
        journal_fsync=not args.no_journal_fsync,
        watchdog_multiple=args.watchdog_multiple,
        watchdog_min_s=args.watchdog_min,
        drain_grace_s=args.drain_grace,
        policy_file=args.policy,
        policy_reload_s=args.policy_reload,
    )

    async def run() -> None:
        server = NetworkServer(config)
        await server.start()
        print(f"serving on {config.host}:{server.port} "
              f"(fps {config.fps:g}, gop {config.gop}, "
              f"queue {config.queue_frames} frames)", flush=True)
        loop = asyncio.get_running_loop()
        term = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, term.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal handlers (e.g. Windows loop)
        try:
            forever = asyncio.ensure_future(server.serve_forever())
            stop = asyncio.ensure_future(term.wait())
            done, _ = await asyncio.wait(
                {forever, stop}, timeout=args.duration,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if stop in done:
                print("SIGTERM: draining (admissions stopped, "
                      "flushing in-flight sessions)", flush=True)
            for task in (forever, stop):
                task.cancel()
            await asyncio.gather(forever, stop, return_exceptions=True)
        finally:
            # Graceful path for every exit: journaled sessions park,
            # the LUT checkpoint lands next to the journals.
            await server.drain()
            if args.metrics_out:
                with open(args.metrics_out, "w") as fh:
                    fh.write(get_registry().to_json())
                    fh.write("\n")
                print(f"wrote metrics snapshot to {args.metrics_out}")
        print("drained; exiting", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shut down")
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from repro.serving.admission import AdmissionPolicy
    from repro.serving.fleet import (
        FleetConfig,
        FleetSupervisor,
        RestartPolicy,
    )
    from repro.serving.server import ServeNetConfig

    _enter_run_dir(args.run_dir, "supervisor")
    server = ServeNetConfig(
        fps=args.fps, gop=args.gop, seed=args.seed,
        queue_frames=args.queue_frames,
        egress_frames=args.egress_frames,
        admission=AdmissionPolicy(utilization=args.utilization,
                                  park_capacity=args.park_capacity),
        journal_dir=args.journal_dir,
        journal_fsync=not args.no_journal_fsync,
        drain_grace_s=args.drain_grace,
        encode_floor_s=args.encode_floor,
        policy_file=args.policy,
    )
    config = FleetConfig(
        workers=args.workers, host=args.host, port=args.port,
        mode=args.mode, heartbeat_s=args.heartbeat, server=server,
        restart=RestartPolicy(backoff_base_s=args.backoff_base,
                              breaker_threshold=args.breaker_threshold),
        drain_grace_s=args.drain_grace,
    )

    async def run() -> None:
        supervisor = FleetSupervisor(config)
        await supervisor.start()
        await supervisor.wait_ready()
        print(f"fleet serving on {config.host}:{supervisor.port} "
              f"({config.workers} workers, mode {config.mode})", flush=True)
        loop = asyncio.get_running_loop()
        term = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, term.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal handlers (e.g. Windows loop)
        try:
            stop = asyncio.ensure_future(term.wait())
            done, _ = await asyncio.wait({stop}, timeout=args.duration)
            if stop in done:
                print("SIGTERM: draining fleet (admissions stopped, "
                      "in-flight sessions parking)", flush=True)
            stop.cancel()
            await asyncio.gather(stop, return_exceptions=True)
        finally:
            await supervisor.drain()
            if args.metrics_out:
                with open(args.metrics_out, "w") as fh:
                    json.dump(supervisor.metrics_snapshot(), fh)
                    fh.write("\n")
                print(f"wrote metrics snapshot to {args.metrics_out}")
        print("fleet drained; exiting", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shut down")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving.chaos import ChaosConfig, ChaosProxy

    _enter_run_dir(args.run_dir, "chaos")
    config = ChaosConfig(
        seed=args.seed,
        latency_spike_rate=args.latency_rate,
        latency_spike_s=args.latency_s,
        reset_rate=args.reset_rate,
        corrupt_rate=args.corrupt_rate,
        stall_rate=args.stall_rate,
        stall_s=args.stall_s,
        cut_after_c2s_bytes=args.cut_after,
        cut_connections=args.cut_connections,
    )

    async def run() -> None:
        proxy = ChaosProxy(args.upstream_host, args.upstream_port,
                           config, host=args.host, port=args.port)
        await proxy.start()
        print(f"chaos proxy on {proxy.host}:{proxy.port} -> "
              f"{args.upstream_host}:{args.upstream_port} "
              f"(seed {config.seed})", flush=True)
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        finally:
            await proxy.stop()
            print("chaos proxy stopped; injected "
                  + (", ".join(f"{k}={v}"
                               for k, v in sorted(proxy.counts.items()))
                     or "nothing"), flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; proxy stopped")
    return 0


def _parse_weighted(specs) -> tuple:
    """Parse ``NAME[:WEIGHT]`` argument lists into weighted tuples."""
    if not specs:
        return ()
    pairs = []
    for spec in specs:
        name, _, weight = spec.partition(":")
        pairs.append((name, float(weight) if weight else 1.0))
    return tuple(pairs)


def _cmd_policy(args: argparse.Namespace) -> int:
    from repro.policy import (
        PolicyError,
        compile_policy,
        load_policy_file,
        plan_change,
    )

    if args.action == "plan" and not args.new_file:
        print("policy plan needs two documents: <current> <proposed>",
              file=sys.stderr)
        return 2
    try:
        if args.action == "plan":
            old = compile_policy(load_policy_file(args.file))
            new = compile_policy(load_policy_file(args.new_file))
            print(plan_change(old, new).summary())
            return 0
        policy = compile_policy(load_policy_file(args.file))
    except PolicyError as exc:
        print(f"policy invalid: {exc}", file=sys.stderr)
        return 1
    if args.action == "validate":
        print(f"{args.file}: OK ({len(policy.tenants)} tenants, "
              f"shed order {' -> '.join(policy.shed_order) or 'none'})")
        return 0
    # show: the compiled lowering, knob by knob.
    cap = (f"{policy.power_cap_w:g} W over {policy.energy_window_s:g} s"
           if policy.power_cap_w is not None else "none")
    print(f"policy {args.file} (version {policy.version})")
    print(f"  power cap   : {cap}")
    print(f"  default     : {policy.default_tenant}")
    print(f"  shed order  : {' -> '.join(policy.shed_order) or 'none'}")
    for name in policy.tenant_names():
        rt = policy.tenants[name]
        budget = (f", budget {rt.power_budget_w:g} W"
                  if rt.power_budget_w is not None else "")
        rungs = f", max {rt.max_rungs} rungs" if rt.max_rungs else ""
        print(f"  tenant {name:>8s}: rank {rt.rank}, "
              f"{rt.capacity_fraction:.0%} of cores, degradation <= "
              f"{rt.max_level.name.lower()} (escalate after "
              f"{rt.escalate_after}){rungs}{budget}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serving.loadgen import LoadGenConfig, run_loadgen
    from repro.video.generator import ContentClass as _CC

    mix = None
    if args.mix:
        pairs = []
        for spec in args.mix:
            name, _, weight = spec.partition(":")
            pairs.append((_CC(name), float(weight) if weight else 1.0))
        mix = tuple(pairs)
    config = LoadGenConfig(
        host=args.host, port=args.port, sessions=args.sessions,
        frames=args.frames, width=args.width, height=args.height,
        fps=args.fps, gop=args.gop, arrival=args.arrival,
        rate_hz=args.rate, burst_size=args.burst_size,
        frame_interval_s=args.frame_interval, seed=args.seed,
        max_reconnects=args.max_reconnects,
        backoff_base_s=args.backoff_base,
        backoff_max_s=args.backoff_max,
        backoff_jitter=args.backoff_jitter,
        ladder=_parse_rungs(args.ladder) if args.ladder else (),
        tenants=_parse_weighted(args.tenants),
        surge_tenants=_parse_weighted(args.surge_tenants),
        scenario=args.scenario,
        **({"mix": mix} if mix else {}),
    )
    report = run_loadgen(config)
    print(report.summary())
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote report to {args.json_out}")
    return 1 if (report.protocol_errors or report.errored) else 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.observability.metrics import MetricsRegistry, format_metrics

    with open(args.snapshot) as fh:
        data = json.load(fh)
    if args.prom:
        print(MetricsRegistry.from_dict(data).to_prometheus_text(), end="")
    else:
        print(format_metrics(data))
    return 0


def _cmd_fault_drill(args: argparse.Namespace) -> int:
    from repro.resilience.drill import DrillConfig, run_drill

    config = DrillConfig(
        seed=args.seed,
        num_streams=args.streams,
        frames_per_stream=args.frames,
        fps=args.fps,
        core_failure_rate=args.core_failure_rate,
        frame_corruption_rate=args.corrupt_frame_rate,
        time_spike_rate=args.spike_rate,
        time_spike_factor=args.spike_factor,
        num_slots=args.slots,
        num_users=args.users,
    )
    report = run_drill(config)
    print(report.format())
    return 0 if report.passed else 1


def _cmd_torture(args: argparse.Namespace) -> int:
    from repro.storage.torture import main as torture_main

    return torture_main(["--update-golden"] if args.update_golden else [])


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    argv = []
    if args.groups:
        argv += ["--groups", *args.groups]
    if args.out:
        argv += ["--out", args.out]
    return bench.main(argv)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import fig3, fig4, table1, table2
    module = {"table1": table1, "fig3": fig3, "table2": table2,
              "fig4": fig4}[args.name]
    module.main(args.rest)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic bio-medical video")
    g.add_argument("--out", required=True)
    g.add_argument("--content", default="brain",
                   choices=[c.value for c in ContentClass])
    g.add_argument("--motion", default="pan_right",
                   choices=[m.value for m in MotionPreset])
    g.add_argument("--magnitude", type=float, default=1.5)
    g.add_argument("--width", type=int, default=640)
    g.add_argument("--height", type=int, default=480)
    g.add_argument("--frames", type=int, default=48)
    g.add_argument("--fps", type=float, default=24.0)
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(func=_cmd_generate)

    e = sub.add_parser("encode", help="encode with a fixed configuration")
    e.add_argument("video", help="input .npz (from `generate`)")
    e.add_argument("--qp", type=int, default=32)
    e.add_argument("--search", default="hexagon")
    e.add_argument("--window", type=int, default=64)
    e.add_argument("--tiles", default="1x1")
    e.add_argument("--gop", type=int, default=8)
    e.add_argument("--b-frames", action="store_true")
    e.add_argument("--parallel-workers", type=int, default=None, metavar="N",
                   help="encode tiles on an N-worker process pool (0 = all cores)")
    e.set_defaults(func=_cmd_encode)

    t = sub.add_parser("transcode", help="run the full pipeline")
    t.add_argument("video")
    t.add_argument("--baseline", action="store_true",
                   help="use the Khan et al. [19] baseline instead")
    t.add_argument("--parallel-workers", type=int, default=None, metavar="N",
                   help="encode tiles on an N-worker process pool (0 = all cores)")
    t.set_defaults(func=_cmd_transcode)

    la = sub.add_parser(
        "ladder",
        help="encode a rendition ladder into GOP-aligned segments",
    )
    la.add_argument("--video", default=None,
                    help="input .npz (from `generate`); omitted = synthesize")
    la.add_argument("--out", required=True, metavar="DIR",
                    help="segment directory (manifest.json + rung*/...)")
    la.add_argument("--content", default="brain",
                    choices=[c.value for c in ContentClass])
    la.add_argument("--width", type=int, default=640)
    la.add_argument("--height", type=int, default=480)
    la.add_argument("--frames", type=int, default=16)
    la.add_argument("--fps", type=float, default=24.0)
    la.add_argument("--seed", type=int, default=0)
    la.add_argument("--gop", type=int, default=8)
    la.add_argument("--segment-gops", type=int, default=2,
                    help="segment length in GOPs (boundaries stay "
                         "GOP-aligned)")
    la.add_argument("--rungs", nargs="+", default=None, metavar="WxH",
                    help="ladder rungs, largest first (default: full, "
                         "3/4 and 1/2 scale of the ingest)")
    la.add_argument("--no-prune", action="store_true",
                    help="disable Green-VCA content pruning")
    la.add_argument("--min-gain-db", type=float, default=1.0,
                    help="minimum predicted gain an intermediate rung "
                         "must buy to survive pruning")
    la.set_defaults(func=_cmd_ladder)

    s = sub.add_parser(
        "serve",
        help="run the serving simulation and export metrics/traces",
    )
    s.add_argument("--videos", type=int, default=2,
                   help="corpus size (representative measured streams)")
    s.add_argument("--frames", type=int, default=8)
    s.add_argument("--width", type=int, default=96)
    s.add_argument("--height", type=int, default=80)
    s.add_argument("--fps", type=float, default=24.0)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--users", type=int, default=None,
                   help="requested users (default: saturated queue)")
    s.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the metrics registry snapshot as JSON")
    s.add_argument("--trace-out", default=None, metavar="PATH",
                   help="enable span tracing and write JSONL records")
    s.set_defaults(func=_cmd_serve)

    sn = sub.add_parser(
        "serve-net",
        help="run the asyncio network serving front-end",
    )
    sn.add_argument("--host", default="127.0.0.1")
    sn.add_argument("--port", type=int, default=0,
                    help="TCP port (0 = ephemeral; the bound port is printed)")
    sn.add_argument("--fps", type=float, default=24.0)
    sn.add_argument("--gop", type=int, default=8)
    sn.add_argument("--seed", type=int, default=0,
                    help="seed for stochastic serving components "
                         "(fault injection)")
    sn.add_argument("--queue-frames", type=int, default=16,
                    help="per-session ingest queue bound")
    sn.add_argument("--egress-frames", type=int, default=32,
                    help="per-session egress queue bound")
    sn.add_argument("--utilization", type=float, default=1.0,
                    help="fraction of cores admission may fill")
    sn.add_argument("--park-capacity", type=int, default=2,
                    help="waiting-room size for parked sessions")
    sn.add_argument("--parallel-workers", type=int, default=None, metavar="N",
                    help="per-session tile process pool (0 = all cores)")
    sn.add_argument("--spike-rate", type=float, default=0.0,
                    help="seeded CPU-time spike injection rate (0 = off)")
    sn.add_argument("--spike-factor", type=float, default=8.0)
    sn.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                    help="stop after this long (default: run until ^C)")
    sn.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="write the metrics snapshot as JSON on shutdown")
    sn.add_argument("--journal-dir", default=None, metavar="DIR",
                    help="per-session journal directory (enables RESUME, "
                         "drain parking and the warm LUT checkpoint)")
    sn.add_argument("--no-journal-fsync", action="store_true",
                    help="skip fsync on journal appends (benchmarks only)")
    sn.add_argument("--watchdog-multiple", type=float, default=0.0,
                    help="cancel an encode exceeding this multiple of the "
                         "GOP real-time budget (0 = watchdog off)")
    sn.add_argument("--watchdog-min", type=float, default=0.25,
                    metavar="SECONDS", help="watchdog deadline floor")
    sn.add_argument("--drain-grace", type=float, default=10.0,
                    metavar="SECONDS",
                    help="SIGTERM drain: max wait for in-flight sessions")
    sn.add_argument("--policy", default=None, metavar="FILE",
                    help="tenant policy document (YAML/JSON); compiles "
                         "into admission weights, degradation caps, "
                         "DVFS bounds and the energy budget")
    sn.add_argument("--policy-reload", type=float, default=0.0,
                    metavar="SECONDS", dest="policy_reload",
                    help="poll the policy file for hot reload "
                         "(0 = no reload)")
    sn.add_argument("--run-dir", default=None, metavar="DIR",
                    help="directory for runtime artifacts (pidfile); "
                         "created if missing")
    sn.set_defaults(func=_cmd_serve_net)

    sf = sub.add_parser(
        "serve-fleet",
        help="supervised multi-worker serving fleet with crash failover",
    )
    sf.add_argument("--workers", type=int, default=2,
                    help="number of worker processes")
    sf.add_argument("--host", default="127.0.0.1")
    sf.add_argument("--port", type=int, default=0,
                    help="public TCP port (0 = ephemeral in router mode; "
                         "reuseport mode requires an explicit port)")
    sf.add_argument("--mode", default="router",
                    choices=["router", "reuseport"],
                    help="router: supervisor owns the port and splices to "
                         "workers; reuseport: workers share the port via "
                         "SO_REUSEPORT")
    sf.add_argument("--fps", type=float, default=24.0)
    sf.add_argument("--gop", type=int, default=8)
    sf.add_argument("--seed", type=int, default=0)
    sf.add_argument("--queue-frames", type=int, default=16)
    sf.add_argument("--egress-frames", type=int, default=32)
    sf.add_argument("--utilization", type=float, default=1.0,
                    help="fraction of cores admission may fill, split "
                         "evenly across workers")
    sf.add_argument("--park-capacity", type=int, default=2,
                    help="per-worker waiting-room size (the fleet-wide "
                         "park scales with live workers)")
    sf.add_argument("--journal-dir", required=True, metavar="DIR",
                    help="shared state directory (journals, leases, LUT "
                         "checkpoint); required — adoption needs it")
    sf.add_argument("--no-journal-fsync", action="store_true")
    sf.add_argument("--heartbeat", type=float, default=0.25,
                    metavar="SECONDS", help="worker heartbeat interval")
    sf.add_argument("--backoff-base", type=float, default=0.25,
                    metavar="SECONDS", help="first restart backoff delay")
    sf.add_argument("--breaker-threshold", type=int, default=5,
                    help="worker deaths in the flap window before the "
                         "slot's circuit breaker opens")
    sf.add_argument("--encode-floor", type=float, default=0.0,
                    metavar="SECONDS",
                    help="minimum wall-clock per encoded frame (pacing "
                         "for scaling benchmarks; 0 = off)")
    sf.add_argument("--drain-grace", type=float, default=10.0,
                    metavar="SECONDS")
    sf.add_argument("--duration", type=float, default=None,
                    metavar="SECONDS",
                    help="stop after this long (default: run until ^C)")
    sf.add_argument("--metrics-out", default=None, metavar="PATH",
                    help="write the merged fleet metrics snapshot as "
                         "JSON on shutdown")
    sf.add_argument("--policy", default=None, metavar="FILE",
                    help="tenant policy document; the router enforces "
                         "fleet-wide entitlements and every worker "
                         "enforces it locally")
    sf.add_argument("--run-dir", default=None, metavar="DIR",
                    help="directory for runtime artifacts (pidfile); "
                         "created if missing")
    sf.set_defaults(func=_cmd_serve_fleet)

    ch = sub.add_parser(
        "chaos",
        help="seeded TCP chaos proxy in front of serve-net",
    )
    ch.add_argument("--host", default="127.0.0.1")
    ch.add_argument("--port", type=int, default=0,
                    help="listen port (0 = ephemeral; printed on start)")
    ch.add_argument("--upstream-host", default="127.0.0.1")
    ch.add_argument("--upstream-port", type=int, required=True)
    ch.add_argument("--seed", type=int, default=0,
                    help="seed of the per-connection fault schedule")
    ch.add_argument("--latency-rate", type=float, default=0.0,
                    help="per-chunk latency-spike probability")
    ch.add_argument("--latency-s", type=float, default=0.05)
    ch.add_argument("--reset-rate", type=float, default=0.0,
                    help="per-chunk connection-reset probability")
    ch.add_argument("--corrupt-rate", type=float, default=0.0,
                    help="per-chunk byte-corruption probability")
    ch.add_argument("--stall-rate", type=float, default=0.0,
                    help="per-chunk half-open stall probability")
    ch.add_argument("--stall-s", type=float, default=0.25)
    ch.add_argument("--cut-after", type=int, default=0, metavar="BYTES",
                    help="deterministic cut after exactly this many "
                         "client->server bytes (0 = off)")
    ch.add_argument("--cut-connections", type=int, default=1,
                    help="only the first N connections suffer the cut")
    ch.add_argument("--duration", type=float, default=None,
                    metavar="SECONDS",
                    help="stop after this long (default: run until ^C)")
    ch.add_argument("--run-dir", default=None, metavar="DIR",
                    help="directory for runtime artifacts (pidfile); "
                         "created if missing")
    ch.set_defaults(func=_cmd_chaos)

    lg = sub.add_parser(
        "loadgen",
        help="drive serve-net with a seeded arrival process",
    )
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, required=True)
    lg.add_argument("--sessions", type=int, default=3)
    lg.add_argument("--frames", type=int, default=16,
                    help="frames per session (default: two GOPs)")
    lg.add_argument("--width", type=int, default=96)
    lg.add_argument("--height", type=int, default=96)
    lg.add_argument("--fps", type=float, default=24.0)
    lg.add_argument("--gop", type=int, default=8)
    lg.add_argument("--arrival", default="poisson",
                    choices=["poisson", "burst"])
    lg.add_argument("--rate", type=float, default=20.0,
                    help="mean session arrival rate (sessions/s)")
    lg.add_argument("--burst-size", type=int, default=4)
    lg.add_argument("--frame-interval", type=float, default=0.0,
                    help="inter-frame pacing in seconds (0 = flat out)")
    lg.add_argument("--mix", nargs="+", default=None, metavar="CLASS[:W]",
                    help="weighted content mix, e.g. brain:2 lung:1")
    lg.add_argument("--seed", type=int, default=0,
                    help="seed for arrivals, content mix and video synthesis")
    lg.add_argument("--json-out", default=None, metavar="PATH",
                    help="also write the report as JSON")
    lg.add_argument("--max-reconnects", type=int, default=0,
                    help="per-session reconnect budget (0 = give up on "
                         "the first connection loss)")
    lg.add_argument("--backoff-base", type=float, default=0.05,
                    metavar="SECONDS", help="initial reconnect backoff")
    lg.add_argument("--backoff-max", type=float, default=2.0,
                    metavar="SECONDS", help="reconnect backoff ceiling")
    lg.add_argument("--ladder", nargs="+", default=None, metavar="WxH",
                    help="request a rendition ladder per session "
                         "(rungs largest first, e.g. 96x96 72x72 48x48)")
    lg.add_argument("--tenants", nargs="+", default=None,
                    metavar="NAME[:W]",
                    help="weighted tenant mix sessions bill to "
                         "(omit for pre-policy HELLOs)")
    lg.add_argument("--surge-tenants", nargs="+", default=None,
                    metavar="NAME[:W]",
                    help="tenant mix of the surge cohort "
                         "(scenario=surge; defaults to --tenants)")
    lg.add_argument("--scenario", default="",
                    choices=["", "surge", "diurnal"],
                    help="load shape: mixed-tenant mid-run surge, or "
                         "diurnal hospital-shift arrivals")
    lg.add_argument("--backoff-jitter", type=float, default=0.5,
                    help="seeded jitter fraction applied to each backoff")
    lg.set_defaults(func=_cmd_loadgen)

    po = sub.add_parser(
        "policy",
        help="validate, inspect or diff tenant policy documents",
    )
    po.add_argument("action", choices=["validate", "show", "plan"],
                    help="validate: parse+compile; show: print the "
                         "compiled knobs; plan: diff two documents")
    po.add_argument("file", help="policy document (YAML or JSON)")
    po.add_argument("new_file", nargs="?", default=None,
                    help="proposed document (plan only)")
    po.set_defaults(func=_cmd_policy)

    m = sub.add_parser(
        "metrics",
        help="pretty-print a metrics.json snapshot",
    )
    m.add_argument("snapshot", help="metrics JSON written by `serve`")
    m.add_argument("--prom", action="store_true",
                   help="emit Prometheus text exposition instead")
    m.set_defaults(func=_cmd_metrics)

    f = sub.add_parser(
        "fault-drill",
        help="run a seeded chaos scenario and print a survival report",
    )
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--streams", type=int, default=4)
    f.add_argument("--frames", type=int, default=12)
    f.add_argument("--fps", type=float, default=120.0)
    f.add_argument("--core-failure-rate", type=float, default=0.2)
    f.add_argument("--corrupt-frame-rate", type=float, default=0.05)
    f.add_argument("--spike-rate", type=float, default=0.1)
    f.add_argument("--spike-factor", type=float, default=8.0)
    f.add_argument("--slots", type=int, default=6)
    f.add_argument("--users", type=int, default=12)
    f.set_defaults(func=_cmd_fault_drill)

    to = sub.add_parser(
        "torture",
        help="crash-consistency torture harness over the storage layer",
    )
    to.add_argument("--update-golden", action="store_true",
                    dest="update_golden",
                    help="rewrite tests/golden/torture_points.json from "
                         "this run's write-point digest")
    to.set_defaults(func=_cmd_torture)

    x = sub.add_parser("experiment", help="regenerate a paper table/figure")
    x.add_argument("name", choices=["table1", "fig3", "table2", "fig4"])
    x.add_argument("rest", nargs=argparse.REMAINDER,
                   help="arguments forwarded to the harness")
    x.set_defaults(func=_cmd_experiment)

    b = sub.add_parser(
        "bench",
        help="run the micro-benchmarks and record BENCH_<n>.json",
    )
    b.add_argument("--groups", nargs="+", default=None,
                   help="benchmark groups (default: motion codec)")
    b.add_argument("--out", default=None,
                   help="output path (default: next free BENCH_<n>.json)")
    b.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; treat as a clean exit,
        # and detach stdout so the interpreter's shutdown flush does not
        # raise the same error again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
