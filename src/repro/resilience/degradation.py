"""Deadline monitor and graded degradation ladder.

Generalizes :class:`repro.transcode.feedback.FramerateFeedback` (the
paper's single "alternative lighter configuration", §III-D2) into a
graded response to sustained deadline pressure:

====================  ==============================================
level                 response applied to the next frame(s)
====================  ==============================================
``QP_BUMP``           bottleneck tiles get ``QP + ΔQP``
``WINDOW_SHRINK``     additionally, every tile's search window halves
``TILE_MERGE``        additionally, the next re-tiling halves the
                      maximum tile count (fewer, larger tiles — less
                      per-tile overhead, coarser parallelism)
``FRAME_DROP``        frames are skipped entirely until the rolling
                      budget recovers
====================  ==============================================

Escalation happens after ``escalate_after`` consecutive deadline
misses; de-escalation requires ``recover_after`` consecutive on-time
frames *and* a drained debt — the hysteresis that stops a stream from
oscillating between levels when load hovers near the budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.resilience.errors import DeadlineMissError


class DegradationLevel(enum.IntEnum):
    """Rungs of the degradation ladder, mildest first."""

    NONE = 0
    QP_BUMP = 1
    WINDOW_SHRINK = 2
    TILE_MERGE = 3
    FRAME_DROP = 4


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the deadline monitor and degradation ladder."""

    #: Relative headroom before a frame counts as a deadline miss.
    tolerance: float = 0.05
    #: Consecutive misses required to climb one rung.
    escalate_after: int = 1
    #: Outstanding debt (in slots) that forces one rung of escalation
    #: per frame even without consecutive misses — a single huge spike
    #: leaves the stream behind budget although every following frame
    #: is individually on time.
    escalate_debt_slots: float = 1.0
    #: Consecutive on-time frames (with drained debt) to descend one
    #: rung — the hysteresis.
    recover_after: int = 3
    #: Highest rung the ladder may reach.
    max_level: DegradationLevel = DegradationLevel.FRAME_DROP
    #: Drop corrupt input frames instead of raising
    #: :class:`~repro.resilience.errors.CorruptFrameError`.
    drop_corrupt_frames: bool = True
    #: Raise :class:`~repro.resilience.errors.DeadlineMissError` when
    #: the ladder is exhausted and debt still exceeds this many slots
    #: (``None`` disables the hard failure — degrade forever).
    fail_after_debt_slots: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if self.escalate_after < 1 or self.recover_after < 1:
            raise ValueError("escalate_after/recover_after must be >= 1")


@dataclass(frozen=True)
class DegradationAction:
    """One logged resilience event."""

    frame_index: int
    kind: str  # "escalate", "recover", "frame_drop", "corrupt_drop"
    level: DegradationLevel


@dataclass
class DegradationReport:
    """Summary of one stream's resilience behaviour."""

    actions: List[DegradationAction] = field(default_factory=list)
    frames_observed: int = 0
    deadline_misses: int = 0
    frames_dropped: int = 0
    corrupt_frames_dropped: int = 0
    final_debt_seconds: float = 0.0
    final_level: DegradationLevel = DegradationLevel.NONE

    @property
    def deadline_miss_rate(self) -> float:
        if self.frames_observed == 0:
            return 0.0
        return self.deadline_misses / self.frames_observed

    def action_counts(self) -> Dict[str, int]:
        """Deterministically ordered ``kind -> count`` map."""
        counts: Dict[str, int] = {}
        for a in self.actions:
            counts[a.kind] = counts.get(a.kind, 0) + 1
        return {k: counts[k] for k in sorted(counts)}


class DegradationController:
    """Per-stream deadline monitor driving the degradation ladder.

    Exposes the same observation interface as
    :class:`~repro.transcode.feedback.FramerateFeedback`
    (``observe_frame`` / ``bottleneck_tiles`` / ``debt_seconds``) so the
    pipeline can use either interchangeably, plus the ladder state the
    resilient pipeline consumes.
    """

    def __init__(self, fps: float, config: ResilienceConfig = ResilienceConfig()):
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.fps = fps
        self.config = config
        self._level = DegradationLevel.NONE
        self._miss_streak = 0
        self._hit_streak = 0
        self._debt_seconds = 0.0
        self._bottlenecks: Set[int] = set()
        self.report = DegradationReport()

    # -- observation ---------------------------------------------------
    @property
    def slot_duration(self) -> float:
        return 1.0 / self.fps

    @property
    def level(self) -> DegradationLevel:
        return self._level

    @property
    def debt_seconds(self) -> float:
        return self._debt_seconds

    @property
    def bottleneck_tiles(self) -> Set[int]:
        return set(self._bottlenecks)

    def framerate_satisfied(self) -> bool:
        return self._debt_seconds <= 0.0

    def observe_frame(self, tile_cpu_times: Sequence[float],
                      frame_index: int = -1) -> bool:
        """Record one encoded frame's per-tile CPU times.

        Returns ``True`` when the frame missed its deadline.  Work is
        parallel across cores, so the frame's critical path is the
        maximum tile time.
        """
        if not tile_cpu_times:
            raise ValueError("no tile times supplied")
        slot = self.slot_duration
        threshold = slot * (1 + self.config.tolerance)
        critical = max(tile_cpu_times)
        self._debt_seconds = max(0.0, self._debt_seconds + critical - slot)
        self._bottlenecks = {
            i for i, t in enumerate(tile_cpu_times) if t > threshold
        }
        missed = critical > threshold
        self.report.frames_observed += 1
        if missed:
            self.report.deadline_misses += 1
            self._miss_streak += 1
            self._hit_streak = 0
            if self._miss_streak >= self.config.escalate_after:
                self._escalate(frame_index)
                self._miss_streak = 0
        elif self._debt_seconds > self.config.escalate_debt_slots * slot:
            # On time, but still behind budget: keep climbing the
            # ladder so the backlog drains instead of lingering.
            self._hit_streak = 0
            self._miss_streak = 0
            self._escalate(frame_index)
        else:
            self._hit_streak += 1
            self._miss_streak = 0
            if (
                self._hit_streak >= self.config.recover_after
                and self._debt_seconds <= 0.0
                and self._level > DegradationLevel.NONE
            ):
                self._recover(frame_index)
                self._hit_streak = 0
        self._check_hard_failure(frame_index)
        self._snapshot()
        return missed

    def _escalate(self, frame_index: int) -> None:
        if self._level >= self.config.max_level:
            return
        self._level = DegradationLevel(self._level + 1)
        self.report.actions.append(
            DegradationAction(frame_index, "escalate", self._level)
        )

    def _recover(self, frame_index: int) -> None:
        self._level = DegradationLevel(self._level - 1)
        self.report.actions.append(
            DegradationAction(frame_index, "recover", self._level)
        )

    def _check_hard_failure(self, frame_index: int) -> None:
        limit = self.config.fail_after_debt_slots
        if limit is None:
            return
        if (
            self._level >= self.config.max_level
            and self._debt_seconds > limit * self.slot_duration
        ):
            raise DeadlineMissError(
                f"frame {frame_index}: ladder exhausted at "
                f"{self._level.name} with {self._debt_seconds:.4f}s debt"
            )

    def _snapshot(self) -> None:
        self.report.final_debt_seconds = self._debt_seconds
        self.report.final_level = self._level

    # -- responses -----------------------------------------------------
    def adjust_tile(self, qp: int, window: int, is_bottleneck: bool,
                    qp_max: int, delta_qp: int) -> tuple:
        """Apply the current rung's lighter configuration to one tile."""
        if self._level >= DegradationLevel.QP_BUMP and is_bottleneck:
            qp = min(qp_max, qp + delta_qp)
        if self._level >= DegradationLevel.WINDOW_SHRINK:
            window = max(8, window // 2)
        elif is_bottleneck and self._level >= DegradationLevel.QP_BUMP:
            window = max(8, window // 2)
        return qp, window

    @property
    def merge_tiles(self) -> bool:
        """Next re-tiling should use a reduced maximum tile count."""
        return self._level >= DegradationLevel.TILE_MERGE

    def should_drop_frame(self) -> bool:
        """At the top rung, drop frames while debt is outstanding."""
        return (
            self._level >= DegradationLevel.FRAME_DROP
            and self._debt_seconds > 0.0
        )

    def observe_dropped_frame(self, frame_index: int) -> None:
        """Account for a deliberately dropped frame: its whole slot is
        reclaimed against the debt."""
        self._debt_seconds = max(0.0, self._debt_seconds - self.slot_duration)
        self.report.frames_dropped += 1
        self.report.actions.append(
            DegradationAction(frame_index, "frame_drop", self._level)
        )
        if self._debt_seconds <= 0.0:
            # Budget restored; resume encoding one rung down.
            self._recover(frame_index)
            self._hit_streak = 0
        self._snapshot()

    def observe_corrupt_frame(self, frame_index: int) -> None:
        """Account for a corrupt input frame dropped by validation."""
        self.report.corrupt_frames_dropped += 1
        self.report.actions.append(
            DegradationAction(frame_index, "corrupt_drop", self._level)
        )
        self._snapshot()

    def force_escalate(self, frame_index: int = -1,
                       kind: str = "watchdog") -> DegradationLevel:
        """Climb one rung outside the normal miss-streak path.

        Used by the serving watchdog when an encode task wedges: the
        session continues degraded instead of stalling, and the action
        log records why (``kind``).  Returns the new level.
        """
        if self._level < self.config.max_level:
            self._level = DegradationLevel(self._level + 1)
        self._hit_streak = 0
        self._miss_streak = 0
        self.report.actions.append(
            DegradationAction(frame_index, kind, self._level)
        )
        self._snapshot()
        return self._level

    # -- persistence ---------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the monitor's mutable state.

        Everything that influences *future* decisions is captured
        (level, debt, streaks, bottleneck set) plus the report counters
        so a resumed stream's summary stays continuous.  The per-action
        log is not carried across a resume.
        """
        return {
            "level": int(self._level),
            "miss_streak": self._miss_streak,
            "hit_streak": self._hit_streak,
            "debt_seconds": self._debt_seconds,
            "bottlenecks": sorted(self._bottlenecks),
            "report": {
                "frames_observed": self.report.frames_observed,
                "deadline_misses": self.report.deadline_misses,
                "frames_dropped": self.report.frames_dropped,
                "corrupt_frames_dropped": self.report.corrupt_frames_dropped,
            },
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self._level = DegradationLevel(int(state["level"]))
        self._miss_streak = int(state["miss_streak"])
        self._hit_streak = int(state["hit_streak"])
        self._debt_seconds = float(state["debt_seconds"])
        self._bottlenecks = {int(i) for i in state["bottlenecks"]}
        counters = state.get("report") or {}
        self.report.frames_observed = int(counters.get("frames_observed", 0))
        self.report.deadline_misses = int(counters.get("deadline_misses", 0))
        self.report.frames_dropped = int(counters.get("frames_dropped", 0))
        self.report.corrupt_frames_dropped = int(
            counters.get("corrupt_frames_dropped", 0)
        )
        self._snapshot()

    def reset(self) -> None:
        self._debt_seconds = 0.0
        self._bottlenecks.clear()
        self._miss_streak = 0
        self._hit_streak = 0
        self._level = DegradationLevel.NONE
