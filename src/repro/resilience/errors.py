"""Typed error taxonomy for the transcoding stack.

Bare ``ValueError``s give callers no way to distinguish "the input is
garbage" from "the platform ran out of cores" from "the stream fell
behind the framerate budget" — three situations with three different
recovery strategies (drop the frame, shed a user, degrade the encoding
configuration).  The hierarchy below makes the distinction explicit.

Errors that replace pre-existing ``ValueError`` raises inherit from
``ValueError`` too, so existing ``except ValueError`` call sites (and
tests) keep working.
"""

from __future__ import annotations


class TranscodeError(Exception):
    """Base class of every error raised by the transcoding stack."""


class CorruptFrameError(TranscodeError, ValueError):
    """An input frame (or whole video) failed validation: mismatched
    geometry, non-finite luma samples, or a frame too small for the
    minimum tile size."""


class DeadlineMissError(TranscodeError, RuntimeError):
    """A stream exhausted the degradation ladder and still cannot meet
    its ``1/FPS`` slot budget."""


class AllocationError(TranscodeError, ValueError):
    """Thread allocation cannot proceed: no usable cores, invalid slot
    parameters, or an inconsistent schedule mutation."""


class LutCorruptionError(TranscodeError, ValueError):
    """A workload-LUT checkpoint failed its integrity check (checksum
    mismatch, truncated payload, or undecodable key/histogram)."""


class JournalCorruptionError(TranscodeError, ValueError):
    """A session journal failed its integrity check: a record whose
    checksum does not match its payload, an undecodable record body, or
    a sequence-number gap.  A *truncated tail* (the mid-write crash
    case) is not corruption — loaders discard the partial final record
    and resume from the last intact one."""


class LeaseHeldError(TranscodeError, RuntimeError):
    """A session lease is held by another live owner.

    Raised by :meth:`repro.serving.statestore.SharedDirStateStore.acquire`
    when the single-owner lease of a resume token belongs to a different
    worker whose process is still alive.  A lease whose owner pid is
    dead is *not* an error — it is reclaimed in place (crash failover).
    """

    def __init__(self, token: str, owner: str, pid: int):
        super().__init__(
            f"lease for {token!r} held by {owner!r} (pid {pid})"
        )
        self.token = token
        self.owner = owner
        self.pid = pid
