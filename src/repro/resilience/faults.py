"""Seeded fault injection for chaos drills and resilience tests.

All randomness flows through one ``numpy`` generator seeded from
:class:`FaultConfig.seed`, so a drill with the same seed injects the
same faults in the same order — the property the ``repro fault-drill``
acceptance check (byte-identical reports across runs) relies on.

Fault classes modelled (the ones an online transcoding server actually
meets):

* **core failures** — a core dies mid-service and its threads must be
  re-packed (``sample_core_failures`` / ``failure_schedule``),
* **CPU-time spikes** — an encode takes far longer than its LUT
  estimate (``perturb_cpu_time``),
* **corrupt input frames** — NaN-poisoned or mis-shaped luma planes
  (``corrupt_video``),
* **LUT-entry corruption** — in-memory histogram state damaged
  (``corrupt_lut``) and checkpoint-file damage (``corrupt_file``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.video.frame import Video
from repro.workload.lut import WorkloadLut


@dataclass(frozen=True)
class FaultConfig:
    """Rates of each injected fault class (all probabilities per
    opportunity: per core, per frame, per LUT entry)."""

    seed: int = 0
    core_failure_rate: float = 0.0
    frame_corruption_rate: float = 0.0
    time_spike_rate: float = 0.0
    time_spike_factor: float = 8.0
    lut_corruption_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("core_failure_rate", "frame_corruption_rate",
                     "time_spike_rate", "lut_corruption_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.time_spike_factor < 1.0:
            raise ValueError("time_spike_factor must be >= 1")


class FaultInjector:
    """Injects seeded faults and counts what it injected."""

    def __init__(self, config: FaultConfig = FaultConfig()):
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        #: ``fault kind -> number injected`` (deterministic given seed).
        self.counts: Dict[str, int] = {}

    def _tally(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    # -- input faults --------------------------------------------------
    def corrupt_video(self, video: Video) -> List[int]:
        """Corrupt frames in-place with the configured probability.

        Alternates between the two corruption shapes validation must
        catch: NaN-poisoned float luma and a truncated (mis-shaped)
        plane.  Frame 0 is spared so the stream keeps a valid geometry
        reference; returns the corrupted indices.
        """
        corrupted: List[int] = []
        for frame in video.frames[1:]:
            if self.rng.random() >= self.config.frame_corruption_rate:
                continue
            if len(corrupted) % 2 == 0:
                bad = frame.luma.astype(np.float64)
                bad[:: max(1, bad.shape[0] // 4)] = np.nan
                frame.luma = bad
            else:
                frame.luma = frame.luma[:-8, :]
            corrupted.append(frame.index)
            self._tally("corrupt_frame")
        return corrupted

    # -- timing faults -------------------------------------------------
    def perturb_cpu_time(self, cpu_time: float) -> float:
        """Occasionally multiply an encode's CPU time by the spike
        factor (models cache pollution, co-runner interference, a
        pathological content block)."""
        if self.config.time_spike_rate <= 0.0:
            return cpu_time
        if self.rng.random() < self.config.time_spike_rate:
            self._tally("time_spike")
            return cpu_time * self.config.time_spike_factor
        return cpu_time

    # -- platform faults -----------------------------------------------
    def sample_core_failures(self, core_ids: List[int]) -> List[int]:
        """Fail the configured *fraction* of the listed cores (chosen
        uniformly without replacement); returns the failed ids, sorted.

        A quota rather than per-core Bernoulli draws: a drill asked for
        "20% core failures" must actually exercise the re-packing path,
        not skip it on a lucky seed.
        """
        quota = int(round(self.config.core_failure_rate * len(core_ids)))
        if quota == 0:
            return []
        chosen = self.rng.choice(core_ids, size=quota, replace=False)
        self._tally("core_failure", quota)
        return sorted(int(c) for c in chosen)

    def failure_schedule(self, core_ids: List[int],
                         num_slots: int) -> Dict[int, List[int]]:
        """Assign each failing core a failure slot in ``[1, num_slots)``.

        Returns ``slot -> [core ids failing at that slot]`` with
        deterministic ordering.  With a single slot there is no room to
        fail mid-service, so the map is empty.
        """
        failed = self.sample_core_failures(core_ids)
        schedule: Dict[int, List[int]] = {}
        if num_slots <= 1:
            return schedule
        for cid in failed:
            slot = int(self.rng.integers(1, num_slots))
            schedule.setdefault(slot, []).append(cid)
        return {s: sorted(cids) for s, cids in sorted(schedule.items())}

    # -- LUT faults ----------------------------------------------------
    def corrupt_lut(self, lut: WorkloadLut) -> int:
        """Damage histogram entries in-place with the configured rate
        (NaN running sum or negative bin counts); returns the number of
        entries corrupted."""
        damaged = 0
        for i, hist in enumerate(lut.tables.values()):
            if self.rng.random() >= self.config.lut_corruption_rate:
                continue
            if i % 2 == 0:
                hist._sum = float("nan")
            else:
                hist.counts[: len(hist.counts) // 2] = -1
            damaged += 1
        self._tally("lut_entry_corruption", damaged)
        return damaged

    def corrupt_file(self, path) -> None:
        """Flip bytes in the middle of a checkpoint file so its
        checksum no longer matches."""
        with open(path, "r+b") as fh:
            data = bytearray(fh.read())
            if not data:
                return
            mid = len(data) // 2
            for off in range(mid, min(mid + 16, len(data))):
                data[off] ^= 0x5A
            fh.seek(0)
            fh.write(bytes(data))
            fh.truncate()
        self._tally("checkpoint_corruption")
