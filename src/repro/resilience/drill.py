"""Seeded end-to-end chaos drill (``repro fault-drill``).

Runs the whole serving stack — synthetic stream generation, resilient
transcoding, multi-slot allocation — under a configured fault load
(corrupt frames, CPU-time spikes, mid-service core failures, LUT
corruption) and reports what survived.  Every random draw flows through
one :class:`~repro.resilience.faults.FaultInjector` generator, so the
survival report is byte-identical across runs with the same seed.

The drill's pass criterion mirrors the paper's online constraint: a
stream is "within budget" when it finishes with less than one ``1/FPS``
slot of outstanding deadline debt — i.e. the degradation ladder
absorbed the injected spikes instead of letting them accumulate.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.allocation.proposed import ProposedAllocator
from repro.observability import get_registry
from repro.platform.mpsoc import MpsocConfig
from repro.resilience.checkpoint import load_lut, save_lut
from repro.resilience.degradation import ResilienceConfig
from repro.resilience.errors import TranscodeError
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.transcode.server import ResilientServingReport, TranscodingServer
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)
from repro.workload.estimator import WorkloadEstimator

_CONTENT_CYCLE = (ContentClass.BRAIN, ContentClass.BONE, ContentClass.LUNG)
_MOTION_CYCLE = (MotionPreset.PAN_RIGHT, MotionPreset.PULSATE,
                 MotionPreset.PAN_DOWN)


@dataclass(frozen=True)
class DrillConfig:
    """Scenario parameters of one chaos drill."""

    seed: int = 0
    num_streams: int = 4
    frames_per_stream: int = 12
    width: int = 96
    height: int = 80
    #: Stream framerate.  High on purpose: the tighter slot makes the
    #: injected CPU-time spikes actually threaten the deadline on the
    #: small drill videos.
    fps: float = 120.0
    core_failure_rate: float = 0.2
    frame_corruption_rate: float = 0.05
    time_spike_rate: float = 0.1
    time_spike_factor: float = 8.0
    lut_corruption_rate: float = 0.25
    num_slots: int = 6
    num_users: int = 12
    #: Drill platform: one 8-core socket, so 20% core failures and
    #: shedding actually bind (the paper's 32-core server would absorb
    #: the tiny drill workload without breaking a sweat).
    platform: MpsocConfig = MpsocConfig(num_sockets=1, cores_per_socket=8)

    def fault_config(self) -> FaultConfig:
        return FaultConfig(
            seed=self.seed,
            core_failure_rate=self.core_failure_rate,
            frame_corruption_rate=self.frame_corruption_rate,
            time_spike_rate=self.time_spike_rate,
            time_spike_factor=self.time_spike_factor,
            lut_corruption_rate=self.lut_corruption_rate,
        )


@dataclass
class StreamOutcome:
    """Per-stream survival record."""

    stream_id: int
    survived: bool
    within_budget: bool
    frames_encoded: int
    frames_dropped: int
    corrupt_frames_dropped: int
    deadline_misses: int
    final_debt_seconds: float
    action_counts: Dict[str, int] = field(default_factory=dict)
    failure: str = ""


@dataclass
class DrillReport:
    """Aggregated survival report of one drill."""

    config: DrillConfig
    streams: List[StreamOutcome] = field(default_factory=list)
    serving: Optional[ResilientServingReport] = None
    injected: Dict[str, int] = field(default_factory=dict)
    lut_entries: int = 0
    lut_entries_removed: int = 0
    checkpoint_recovered: bool = True

    @property
    def streams_survived(self) -> int:
        return sum(1 for s in self.streams if s.survived)

    @property
    def streams_within_budget(self) -> int:
        return sum(1 for s in self.streams if s.within_budget)

    @property
    def passed(self) -> bool:
        if not self.streams:
            return False
        return self.streams_within_budget >= 0.8 * len(self.streams)

    def format(self) -> str:
        """Render the survival report (stable across runs: fixed field
        order, fixed float precision, no paths or timestamps)."""
        cfg = self.config
        lines = [
            f"fault drill: seed={cfg.seed} streams={cfg.num_streams} "
            f"frames={cfg.frames_per_stream} fps={cfg.fps:g}",
            f"fault rates: core={cfg.core_failure_rate:g} "
            f"frame={cfg.frame_corruption_rate:g} "
            f"spike={cfg.time_spike_rate:g}x{cfg.time_spike_factor:g} "
            f"lut={cfg.lut_corruption_rate:g}",
        ]
        injected = " ".join(
            f"{k}={v}" for k, v in sorted(self.injected.items())
        ) or "none"
        lines.append(f"faults injected: {injected}")
        for s in self.streams:
            actions = " ".join(
                f"{k}={v}" for k, v in sorted(s.action_counts.items())
            ) or "none"
            status = "ok" if s.survived else f"FAILED({s.failure})"
            budget = "yes" if s.within_budget else "NO"
            lines.append(
                f"stream {s.stream_id}: {status} encoded={s.frames_encoded} "
                f"dropped={s.frames_dropped} corrupt={s.corrupt_frames_dropped} "
                f"misses={s.deadline_misses} "
                f"debt={s.final_debt_seconds:.4f}s in_budget={budget} "
                f"actions: {actions}"
            )
        lines.append(
            f"streams: survived={self.streams_survived}/{len(self.streams)} "
            f"within_budget={self.streams_within_budget}/{len(self.streams)}"
        )
        if self.serving is not None:
            srv = self.serving
            lines.append(
                f"serving: requested={srv.num_users_requested} "
                f"slots={srv.num_slots} cores_failed={srv.cores_failed} "
                f"shed={srv.users_shed} retries={srv.retry_attempts} "
                f"readmitted={srv.users_readmitted} "
                f"final_served={srv.final_users_served} "
                f"avg_power={srv.average_power_w:.2f}W"
            )
        lines.append(
            f"lut: entries={self.lut_entries} "
            f"corrupted_removed={self.lut_entries_removed} "
            f"checkpoint_corruption_detected="
            f"{'yes' if not self.checkpoint_recovered else 'no'}"
        )
        lines.append(
            f"verdict: {'PASS' if self.passed else 'FAIL'} "
            f"({self.streams_within_budget}/{len(self.streams)} streams "
            "within the framerate budget, threshold 80%)"
        )
        return "\n".join(lines)


def run_drill(config: DrillConfig = DrillConfig()) -> DrillReport:
    """Execute one seeded chaos scenario end-to-end."""
    injector = FaultInjector(config.fault_config())
    report = DrillReport(config=config)
    estimator = WorkloadEstimator()  # shared across streams, like a server
    resilience = ResilienceConfig()
    slot = 1.0 / config.fps

    # -- phase 1: generate streams and poison their inputs -------------
    videos = []
    for i in range(config.num_streams):
        gen = GeneratorConfig(
            width=config.width, height=config.height,
            num_frames=config.frames_per_stream, fps=config.fps,
            content_class=_CONTENT_CYCLE[i % len(_CONTENT_CYCLE)],
            motion=_MOTION_CYCLE[i % len(_MOTION_CYCLE)],
            seed=config.seed * 997 + i,
        )
        video = BioMedicalVideoGenerator(gen).generate()
        injector.corrupt_video(video)
        videos.append(video)

    # -- phase 2: resilient transcoding --------------------------------
    traces = []
    for i, video in enumerate(videos):
        pipeline = PipelineConfig(fps=config.fps, resilience=resilience)
        transcoder = StreamTranscoder(
            pipeline, estimator=estimator, fault_injector=injector
        )
        try:
            trace = transcoder.run(video)
        except TranscodeError as exc:
            report.streams.append(StreamOutcome(
                stream_id=i, survived=False, within_budget=False,
                frames_encoded=0, frames_dropped=0,
                corrupt_frames_dropped=0, deadline_misses=0,
                final_debt_seconds=0.0, failure=type(exc).__name__,
            ))
            continue
        res = trace.resilience
        traces.append(trace)
        report.streams.append(StreamOutcome(
            stream_id=i,
            survived=True,
            within_budget=res.final_debt_seconds < slot,
            frames_encoded=len(trace.frame_records),
            frames_dropped=res.frames_dropped,
            corrupt_frames_dropped=res.corrupt_frames_dropped,
            deadline_misses=res.deadline_misses,
            final_debt_seconds=res.final_debt_seconds,
            action_counts=res.action_counts(),
        ))

    # -- phase 3: serve under core failures ----------------------------
    if traces:
        server = TranscodingServer(platform=config.platform, fps=config.fps)
        report.serving = server.serve_with_faults(
            traces,
            ProposedAllocator(config.platform),
            injector,
            num_slots=config.num_slots,
            num_users=config.num_users,
        )

    # -- phase 4: LUT corruption, checkpoint and restore ---------------
    lut = estimator.lut
    report.lut_entries = len(lut)
    injector.corrupt_lut(lut)
    report.lut_entries_removed = lut.validate()
    tmpdir = tempfile.mkdtemp(prefix="repro-fault-drill-")
    path = os.path.join(tmpdir, "lut.json")
    try:
        save_lut(lut, path)
        if config.lut_corruption_rate > 0:
            injector.corrupt_file(path)
        loaded = load_lut(path)
        report.checkpoint_recovered = loaded.recovered
    finally:
        if os.path.exists(path):
            os.remove(path)
        os.rmdir(tmpdir)

    report.injected = dict(sorted(injector.counts.items()))
    registry = get_registry()
    for kind, count in report.injected.items():
        registry.inc("repro_faults_injected_total", count, kind=kind,
                     help="Faults injected by the drill, by kind")
    registry.inc("repro_drill_streams_survived_total",
                 report.streams_survived,
                 help="Drill streams that finished transcoding")
    registry.inc("repro_drill_streams_within_budget_total",
                 report.streams_within_budget,
                 help="Drill streams that met the framerate budget")
    registry.inc("repro_drill_lut_entries_removed_total",
                 report.lut_entries_removed,
                 help="Corrupted LUT entries dropped by validation")
    return report
