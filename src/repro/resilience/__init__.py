"""Resilience subsystem: fault injection, deadline monitoring and
graceful degradation for the transcoding server.

The paper's allocator promises *online* operation — every admitted
stream must retire a frame each ``1/FPS`` slot — but says nothing about
what happens when reality diverges from the plan: a core dies, a frame
arrives corrupt, an encode blows past its LUT estimate.  This package
supplies the missing failure semantics:

* :mod:`repro.resilience.errors` — typed error taxonomy.
* :mod:`repro.resilience.faults` — seeded fault injector (core
  failures, CPU-time spikes, corrupt frames, LUT-entry corruption).
* :mod:`repro.resilience.degradation` — deadline monitor with a graded
  degradation ladder (QP bump → window shrink → tile merge → frame
  drop) and hysteresis-based recovery.
* :mod:`repro.resilience.checkpoint` — checksummed LUT checkpoint /
  restore with corruption fallback.
* :mod:`repro.resilience.drill` — end-to-end seeded chaos scenario
  (``repro fault-drill``).
"""

from repro.resilience.errors import (
    AllocationError,
    CorruptFrameError,
    DeadlineMissError,
    LutCorruptionError,
    TranscodeError,
)
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.resilience.degradation import (
    DegradationAction,
    DegradationController,
    DegradationLevel,
    DegradationReport,
    ResilienceConfig,
)
from repro.resilience.checkpoint import CheckpointLoadResult, load_lut, save_lut

__all__ = [
    "AllocationError",
    "CheckpointLoadResult",
    "CorruptFrameError",
    "DeadlineMissError",
    "DegradationAction",
    "DegradationController",
    "DegradationLevel",
    "DegradationReport",
    "FaultConfig",
    "FaultInjector",
    "LutCorruptionError",
    "ResilienceConfig",
    "TranscodeError",
    "load_lut",
    "save_lut",
]
