"""Checksummed LUT checkpoint / restore.

The workload LUT is the server's accumulated knowledge — the paper
primes it "from previously processed videos of the same body-part
class" — so losing it costs estimation accuracy until it re-warms, but
*trusting a corrupted one* costs deadline misses on every allocation.
Checkpoints therefore carry a SHA-256 checksum over the canonical
payload; a mismatch (or any undecodable content) makes ``load_lut``
fall back to a fresh LUT instead of crashing or silently serving
garbage estimates.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Optional, Union

from repro.resilience.errors import LutCorruptionError
from repro.workload.lut import WorkloadLut

_FORMAT_VERSION = 1


def canonical_json(payload: dict) -> str:
    """Canonical (sorted, separator-stable) JSON rendering used for
    checksums.  Shared with the session journal
    (:mod:`repro.serving.recovery`), which reuses this checkpoint
    format for its per-record integrity checks."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# Backwards-compatible internal aliases.
_canonical = canonical_json
_checksum = payload_checksum


def save_lut(lut: WorkloadLut, path: Union[str, os.PathLike],
             fileops=None,
             staging_path: Optional[Union[str, os.PathLike]] = None) -> str:
    """Write a checksummed JSON checkpoint; returns the checksum.

    Inconsistent entries (see
    :meth:`~repro.workload.lut.WorkloadLut.validate`) are dropped
    before serializing so corruption never propagates into a
    checkpoint that would then verify as healthy.

    The write is crash-atomic *and durable*: the document is staged
    (fsync'd) under ``staging_path`` (default ``<path>.tmp``), then
    published with an ``os.replace`` followed by a parent-directory
    fsync — a bare rename is atomic but not durable, a crash could
    roll the directory entry back to the previous checkpoint.
    ``fileops`` is the injectable seam of :mod:`repro.storage.faultfs`
    (``None`` = the real filesystem).
    """
    from repro.storage.faultfs import REAL_FILEOPS

    ops = fileops or REAL_FILEOPS
    lut.validate()
    payload = lut.to_dict()
    document = {
        "version": _FORMAT_VERSION,
        "checksum": _checksum(payload),
        "payload": payload,
    }
    tmp = os.fspath(staging_path) if staging_path is not None \
        else f"{os.fspath(path)}.tmp"
    data = json.dumps(document, sort_keys=True).encode("utf-8")
    ops.write_file(tmp, data, point="lut.stage")
    ops.replace(tmp, path, point="lut.publish")
    return document["checksum"]


@dataclass
class CheckpointLoadResult:
    """Outcome of a checkpoint load: the LUT to use plus provenance."""

    lut: WorkloadLut
    recovered: bool  #: True when the checkpoint was loaded intact.
    reason: str  #: "ok", "missing", or the corruption description.


def load_lut(path: Union[str, os.PathLike],
             strict: bool = False, fileops=None) -> CheckpointLoadResult:
    """Load a checkpoint, verifying its checksum.

    On any corruption — unreadable file, bad JSON, checksum mismatch,
    undecodable keys/histograms — returns a *fresh* LUT
    (``recovered=False``) unless ``strict`` is set, in which case
    :class:`~repro.resilience.errors.LutCorruptionError` is raised.
    A missing file is not corruption: it is the cold-start case.
    Storage faults injected through ``fileops`` land in the same
    fallback: :class:`~repro.storage.errors.StorageError` is an
    ``OSError``, which the handler below already treats as corruption.
    """
    if not os.path.exists(path):
        return CheckpointLoadResult(WorkloadLut(), False, "missing")
    try:
        if fileops is not None:
            document = json.loads(
                fileops.read_bytes(path, point="lut.read").decode("utf-8")
            )
        else:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        if document.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported version {document.get('version')!r}")
        payload = document["payload"]
        if _checksum(payload) != document["checksum"]:
            raise ValueError("checksum mismatch")
        lut = WorkloadLut.from_dict(payload)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        if strict:
            raise LutCorruptionError(
                f"corrupt LUT checkpoint {os.fspath(path)!r}: {exc}"
            ) from exc
        return CheckpointLoadResult(WorkloadLut(), False, str(exc))
    return CheckpointLoadResult(lut, True, "ok")
