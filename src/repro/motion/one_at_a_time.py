"""One-at-a-time search (Srinivasan & Rao, IEEE TCOM 1985) [14].

Walks along one axis one sample at a time until the cost stops
improving, then walks along the other axis.  The paper uses it "for the
remaining frames in the GOP in the direction of the motion vector
obtained from the corresponding tiles of the first frame" (§III-C2), so
the primary axis is selectable.
"""

from __future__ import annotations

from typing import Tuple

from repro.motion.base import MotionSearch, MotionSearchResult, MotionVector, SearchContext


class OneAtATimeSearch(MotionSearch):
    name = "one_at_a_time"

    def __init__(self, primary_axis: str = "x"):
        if primary_axis not in ("x", "y"):
            raise ValueError(f"primary_axis must be 'x' or 'y', got {primary_axis!r}")
        self.primary_axis = primary_axis

    def native_spec(self):
        return (1, 0 if self.primary_axis == "x" else 1)

    def _walk(
        self,
        ctx: SearchContext,
        best_mv: MotionVector,
        best_cost: float,
        axis: str,
    ) -> Tuple[MotionVector, float]:
        """Walk +-1 steps along ``axis`` while the cost improves."""
        step = (1, 0) if axis == "x" else (0, 1)
        # Choose the promising direction first (both probes as a batch).
        plus, minus = ctx.evaluate_batch([
            (best_mv[0] + step[0], best_mv[1] + step[1]),
            (best_mv[0] - step[0], best_mv[1] - step[1]),
        ])
        if plus >= best_cost and minus >= best_cost:
            return best_mv, best_cost
        direction = 1 if plus < minus else -1
        cost_ahead = min(plus, minus)
        while cost_ahead < best_cost:
            best_cost = cost_ahead
            best_mv = (best_mv[0] + direction * step[0], best_mv[1] + direction * step[1])
            cost_ahead = ctx.evaluate(
                (best_mv[0] + direction * step[0], best_mv[1] + direction * step[1])
            )
        return best_mv, best_cost

    def search(
        self, ctx: SearchContext, start: MotionVector = (0, 0)
    ) -> MotionSearchResult:
        best_mv, best_cost = self._start(ctx, start)
        first = self.primary_axis
        second = "y" if first == "x" else "x"
        best_mv, best_cost = self._walk(ctx, best_mv, best_cost, first)
        best_mv, best_cost = self._walk(ctx, best_mv, best_cost, second)
        return ctx.result(best_mv, best_cost)
