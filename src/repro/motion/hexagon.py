"""Hexagon-based search (Zhu, Lin, Chau, IEEE TCSVT 2002) [15].

Iterates a 6-point hexagon pattern until the centre is best, then
refines with the 4-point small cross.  Two orientations exist with
identical complexity:

* **horizontal** (flat hexagon, points spread wider in x) — "outperforms
  [vertical] when the motion is more horizontal" (paper §III-C2);
* **vertical** (pointy hexagon, points spread wider in y).

The **rotating** mode alternates orientation between iterations, used
by the paper "for the first frame of the GOP" when the dominant motion
direction is not yet known.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.motion.base import MotionSearch, MotionSearchResult, MotionVector, SearchContext

#: Flat hexagon: wide in x.
_HEX_HORIZONTAL = [(-2, 0), (2, 0), (-1, -2), (1, -2), (-1, 2), (1, 2)]
#: Pointy hexagon: wide in y.
_HEX_VERTICAL = [(0, -2), (0, 2), (-2, -1), (-2, 1), (2, -1), (2, 1)]
_SMALL_CROSS = [(0, -1), (-1, 0), (1, 0), (0, 1)]

_MAX_ITERATIONS = 256


class HexagonOrientation(enum.Enum):
    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"
    ROTATING = "rotating"


class HexagonSearch(MotionSearch):
    name = "hexagon"

    def __init__(self, orientation: HexagonOrientation = HexagonOrientation.HORIZONTAL):
        self.orientation = orientation
        self._native_spec = (2, {
            HexagonOrientation.HORIZONTAL: 0,
            HexagonOrientation.VERTICAL: 1,
            HexagonOrientation.ROTATING: 2,
        }[orientation])

    def native_spec(self):
        return self._native_spec

    def _pattern(self, iteration: int) -> List[Tuple[int, int]]:
        if self.orientation is HexagonOrientation.HORIZONTAL:
            return _HEX_HORIZONTAL
        if self.orientation is HexagonOrientation.VERTICAL:
            return _HEX_VERTICAL
        return _HEX_HORIZONTAL if iteration % 2 == 0 else _HEX_VERTICAL

    def search(
        self, ctx: SearchContext, start: MotionVector = (0, 0)
    ) -> MotionSearchResult:
        best_mv, best_cost = self._start(ctx, start)
        for iteration in range(_MAX_ITERATIONS):
            pattern = self._pattern(iteration)
            candidates = [(best_mv[0] + dx, best_mv[1] + dy) for dx, dy in pattern]
            mv, cost = ctx.evaluate_many(candidates)
            if cost < best_cost:
                best_mv, best_cost = mv, cost
            else:
                break
        candidates = [(best_mv[0] + dx, best_mv[1] + dy) for dx, dy in _SMALL_CROSS]
        mv, cost = ctx.evaluate_many(candidates)
        if cost < best_cost:
            best_mv, best_cost = mv, cost
        return ctx.result(best_mv, best_cost)
