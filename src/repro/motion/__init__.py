"""Block-matching motion estimation library.

Implements the classical search algorithms surveyed in the paper's
§II-B plus the paper's proposed bio-medical combined search (§III-C2):

* full search (exhaustive; quality upper bound, used in tests)
* TZ search (HEVC reference software; the paper's Table I baseline)
* three step search [11]
* diamond search [12]
* cross search [13]
* one-at-a-time search [14]
* hexagon-based search [15] — horizontal, vertical and rotating
* the proposed combined search for bio-medical content

All algorithms share a :class:`~repro.motion.base.SearchContext` that
counts SAD evaluations, which feeds the platform cost model.
"""

from repro.motion.base import (
    MotionSearchResult,
    MotionVector,
    SearchContext,
    MotionSearch,
)
from repro.motion.full_search import FullSearch
from repro.motion.tz_search import TZSearch
from repro.motion.three_step import ThreeStepSearch
from repro.motion.diamond import DiamondSearch
from repro.motion.cross import CrossSearch
from repro.motion.one_at_a_time import OneAtATimeSearch
from repro.motion.hexagon import HexagonSearch, HexagonOrientation
from repro.motion.proposed import BioMedicalSearchPolicy, ProposedSearchConfig
from repro.motion.registry import get_search, SEARCH_REGISTRY

__all__ = [
    "MotionSearchResult",
    "MotionVector",
    "SearchContext",
    "MotionSearch",
    "FullSearch",
    "TZSearch",
    "ThreeStepSearch",
    "DiamondSearch",
    "CrossSearch",
    "OneAtATimeSearch",
    "HexagonSearch",
    "HexagonOrientation",
    "BioMedicalSearchPolicy",
    "ProposedSearchConfig",
    "get_search",
    "SEARCH_REGISTRY",
]
