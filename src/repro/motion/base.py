"""Shared infrastructure for block-matching motion search.

A :class:`SearchContext` binds one current block to a reference plane
and exposes :meth:`SearchContext.evaluate`, which returns the matching
cost of a candidate motion vector.  The context

* clamps candidates to the frame and to the configured search window,
* caches costs so revisited candidates are free (as in real encoders,
  which skip already-tested points), and
* counts SAD evaluations — the dominant encoding cost — for the
  platform cost model.

Cost is SAD plus a small motion-vector rate penalty
``lambda_mv * (|dx| + |dy|)``, a standard simplification of the
rate-distortion cost used by HM/Kvazaar integer search.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import native
from repro.motion.kernel import sad_batch, window_view

MotionVector = Tuple[int, int]

#: Cost returned for candidates outside the frame or window.
INFEASIBLE = float("inf")

#: Per-dtype cache of ``promote_types(dtype, int32)`` (hot-path helper;
#: a fresh context is built for every block of every frame).
_DIFF_DTYPES: Dict[np.dtype, np.dtype] = {}


def _diff_dtype(dtype: np.dtype) -> np.dtype:
    cached = _DIFF_DTYPES.get(dtype)
    if cached is None:
        cached = _DIFF_DTYPES[dtype] = np.promote_types(dtype, np.int32)
    return cached


@dataclass
class MotionSearchResult:
    """Outcome of one block search."""

    mv: MotionVector
    cost: float
    sad_evaluations: int
    pixel_ops: int
    #: Integer SAD of the winning vector when the search driver already
    #: computed it (the native C driver does); ``None`` otherwise.  Lets
    #: the encoder skip re-deriving the prediction SAD.
    sad: Optional[int] = None

    @property
    def dx(self) -> int:
        return self.mv[0]

    @property
    def dy(self) -> int:
        return self.mv[1]


class SearchContext:
    """Evaluation context for one block against one reference plane.

    Parameters
    ----------
    reference:
        Reconstructed reference luma plane (``int`` or ``uint8``).
    block:
        Current block samples, shape ``(bh, bw)``.
    block_x, block_y:
        Top-left position of the block in the current frame.
    window:
        Maximum displacement magnitude per axis (search range +-window).
    lambda_mv:
        Motion-vector rate penalty weight.
    """

    def __init__(
        self,
        reference: np.ndarray,
        block: np.ndarray,
        block_x: int,
        block_y: int,
        window: int,
        lambda_mv: float = 1.0,
    ):
        if window < 0:
            raise ValueError("window must be non-negative")
        self.reference = reference
        self.block = block.astype(np.int32, copy=False)
        self.block_x = block_x
        self.block_y = block_y
        self.window = window
        self.lambda_mv = lambda_mv
        #: Cost cache contract: key is the exact integer candidate
        #: ``(dx, dy)``; value is the **full rate-penalized cost**
        #: ``SAD + lambda_mv * (|dx| + |dy|)`` as a Python float, or
        #: :data:`INFEASIBLE` for candidates outside the window/frame.
        #: The scalar (:meth:`evaluate`) and batched
        #: (:meth:`evaluate_batch`) paths read and write the same
        #: cache with the same key/value convention, so revisited
        #: candidates are free regardless of which path saw them first.
        self._cache: Dict[MotionVector, float] = {}
        self.sad_evaluations = 0
        self.pixel_ops = 0
        self._windows: Optional[np.ndarray] = None  # lazy sliding view
        #: Difference dtype: wide enough for reference - block without
        #: overflow (int32 for 8-bit planes, as the scalar path always
        #: used; wider planes promote).
        self._diff_dtype = _diff_dtype(reference.dtype)
        #: The C kernel computes the same int64 SADs as the NumPy
        #: strided path (bit-identical), but only handles contiguous
        #: 8-bit planes; anything else falls back to NumPy.
        self._use_native = (
            native.lib is not None
            and reference.dtype == np.uint8
            and reference.flags.c_contiguous
            and self.block.flags.c_contiguous
        )
        if self._use_native:
            # Pointer ints cached for the context lifetime and shared
            # thread-local candidate scratch: the foreign call then
            # costs ~2us instead of the ~15us of per-call ctypes
            # pointer-object construction.  The C kernel computes the
            # full rate-penalized cost with the exact arithmetic of the
            # scalar path (one rounding per operation).
            self._nc_call = native.lib.sad_cost_batch_u8
            self._nc_ref = reference.ctypes.data
            self._nc_blk = self.block.ctypes.data
            self._nc_stride = reference.strides[0]
            self._nc_scratch = native.scratch()
            self._nc_scratch.ensure(64)

    @property
    def block_height(self) -> int:
        return self.block.shape[0]

    @property
    def block_width(self) -> int:
        return self.block.shape[1]

    def is_feasible(self, mv: MotionVector) -> bool:
        """Candidate lies within the window and the reference frame."""
        dx, dy = mv
        if abs(dx) > self.window or abs(dy) > self.window:
            return False
        rx = self.block_x + dx
        ry = self.block_y + dy
        ref_h, ref_w = self.reference.shape
        return (
            0 <= rx
            and 0 <= ry
            and rx + self.block_width <= ref_w
            and ry + self.block_height <= ref_h
        )

    def evaluate(self, mv: MotionVector) -> float:
        """Cost of a candidate MV (cached; infeasible candidates are inf).

        The cached value is the rate-penalized cost (see the cache
        contract in ``__init__``), shared with the batched path.
        """
        mv = (int(mv[0]), int(mv[1]))
        cached = self._cache.get(mv)
        if cached is not None:
            return cached
        if not self.is_feasible(mv):
            self._cache[mv] = INFEASIBLE
            return INFEASIBLE
        dx, dy = mv
        rx = self.block_x + dx
        ry = self.block_y + dy
        if self._use_native:
            sc = self._nc_scratch
            sc.xs[0] = rx
            sc.ys[0] = ry
            self._nc_call(
                self._nc_ref, self._nc_stride, self._nc_blk,
                self.block.shape[0], self.block.shape[1],
                sc.xs_ptr, sc.ys_ptr, 1,
                self.block_x, self.block_y, self.lambda_mv,
                sc.costs_ptr,
            )
            cost = sc.costs[0].item()
            self._cache[mv] = cost
            self.sad_evaluations += 1
            self.pixel_ops += self.block_width * self.block_height
            return cost
        else:
            if self._windows is None:
                self._windows = window_view(
                    self.reference, self.block_height, self.block_width
                )
            diff = np.subtract(
                self._windows[ry, rx], self.block, dtype=self._diff_dtype
            )
            np.abs(diff, out=diff)
            sad = int(diff.sum())
        cost = sad + self.lambda_mv * (abs(dx) + abs(dy))
        self._cache[mv] = cost
        self.sad_evaluations += 1
        self.pixel_ops += self.block_width * self.block_height
        return cost

    def evaluate_batch(self, mvs: Iterable[MotionVector]) -> List[float]:
        """Costs of a candidate batch, in input order (vectorized).

        All candidates not already cached are computed in one strided
        NumPy pass (:func:`repro.motion.kernel.sad_batch`): duplicate
        candidates within the batch are deduplicated, infeasible ones
        are cached as :data:`INFEASIBLE`, and ``sad_evaluations`` /
        ``pixel_ops`` advance exactly as if each new feasible candidate
        had been probed through :meth:`evaluate` — same costs, same
        cache contents, same op counts, just one kernel dispatch.
        """
        mvs_list = [(int(mv[0]), int(mv[1])) for mv in mvs]
        return self._batch_costs(mvs_list)

    def _batch_costs(self, mvs_list: List[MotionVector]) -> List[float]:
        """:meth:`evaluate_batch` body for already-normalized tuples.

        One Python pass deduplicates, filters the cache and splits by
        feasibility; all remaining candidates are answered by a single
        :func:`~repro.motion.kernel.sad_batch` dispatch.
        """
        cache = self._cache
        bh, bw = self.block.shape
        ref_h, ref_w = self.reference.shape
        w = self.window
        bx, by = self.block_x, self.block_y
        max_rx = ref_w - bw
        max_ry = ref_h - bh
        xs: List[int] = []
        ys: List[int] = []
        feasible: List[MotionVector] = []
        pending: set = set()
        for mv in mvs_list:
            if mv in cache or mv in pending:
                continue
            dx, dy = mv
            rx = bx + dx
            ry = by + dy
            if -w <= dx <= w and -w <= dy <= w and 0 <= rx <= max_rx and 0 <= ry <= max_ry:
                pending.add(mv)
                xs.append(rx)
                ys.append(ry)
                feasible.append(mv)
            else:
                cache[mv] = INFEASIBLE
        if feasible:
            if self._use_native:
                n = len(feasible)
                sc = self._nc_scratch
                if n > sc.cap:
                    sc.ensure(n)
                sc.xs[:n] = xs
                sc.ys[:n] = ys
                self._nc_call(
                    self._nc_ref, self._nc_stride, self._nc_blk,
                    bh, bw,
                    sc.xs_ptr, sc.ys_ptr, n,
                    bx, by, self.lambda_mv,
                    sc.costs_ptr,
                )
                # The kernel already applied the rate penalty with the
                # scalar path's exact arithmetic.
                for mv, cost in zip(feasible, sc.costs[:n].tolist()):
                    cache[mv] = cost
            else:
                if self._windows is None:
                    self._windows = window_view(self.reference, bh, bw)
                sads = sad_batch(
                    self._windows,
                    self.block,
                    np.asarray(xs, dtype=np.intp),
                    np.asarray(ys, dtype=np.intp),
                    self._diff_dtype,
                )
                lam = self.lambda_mv
                for mv, sad in zip(feasible, sads.tolist()):
                    # Same arithmetic as the scalar path: Python int
                    # SAD plus the float rate penalty.
                    cache[mv] = sad + lam * (abs(mv[0]) + abs(mv[1]))
            self.sad_evaluations += len(feasible)
            self.pixel_ops += len(feasible) * bw * bh
        return [cache[mv] for mv in mvs_list]

    def evaluate_many(self, mvs: Iterable[MotionVector]) -> Tuple[MotionVector, float]:
        """Evaluate candidates (vectorized); return the best (mv, cost).

        Ties are broken toward the earlier candidate, so pattern
        ordering is deterministic — identical to probing each candidate
        through :meth:`evaluate` in order.
        """
        mvs_list = [(int(mv[0]), int(mv[1])) for mv in mvs]
        costs = self._batch_costs(mvs_list)
        best_mv: Optional[MotionVector] = None
        best_cost = INFEASIBLE
        for mv, cost in zip(mvs_list, costs):
            if cost < best_cost:
                best_cost = cost
                best_mv = mv
        if best_mv is None:
            # Every candidate infeasible: fall back to zero MV, which is
            # always feasible for in-frame blocks.
            best_mv = (0, 0)
            best_cost = self.evaluate(best_mv)
        return best_mv, best_cost

    def result(self, mv: MotionVector, cost: float) -> MotionSearchResult:
        return MotionSearchResult(
            mv=mv,
            cost=cost,
            sad_evaluations=self.sad_evaluations,
            pixel_ops=self.pixel_ops,
        )


class MotionSearch(abc.ABC):
    """Base class for search algorithms.

    Subclasses implement :meth:`search`, receiving the context and a
    start vector (the motion predictor, e.g. the neighbouring block's
    MV or the direction inherited from the first frame of the GOP).
    """

    name: str = "base"

    @abc.abstractmethod
    def search(
        self, ctx: SearchContext, start: MotionVector = (0, 0)
    ) -> MotionSearchResult:
        """Run the search and return the best motion vector found."""

    def native_spec(self) -> Optional[Tuple[int, int]]:
        """``(alg_code, param)`` for :func:`repro.native.motion_search`.

        Algorithms the C search driver replicates
        evaluation-for-evaluation return their dispatch code; others
        return ``None`` and always run the Python loop.
        """
        return None

    def _start(self, ctx: SearchContext, start: MotionVector) -> Tuple[MotionVector, float]:
        """Evaluate the start predictor and the zero vector."""
        return ctx.evaluate_many([(0, 0), (int(start[0]), int(start[1]))])
