"""Shared infrastructure for block-matching motion search.

A :class:`SearchContext` binds one current block to a reference plane
and exposes :meth:`SearchContext.evaluate`, which returns the matching
cost of a candidate motion vector.  The context

* clamps candidates to the frame and to the configured search window,
* caches costs so revisited candidates are free (as in real encoders,
  which skip already-tested points), and
* counts SAD evaluations — the dominant encoding cost — for the
  platform cost model.

Cost is SAD plus a small motion-vector rate penalty
``lambda_mv * (|dx| + |dy|)``, a standard simplification of the
rate-distortion cost used by HM/Kvazaar integer search.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

MotionVector = Tuple[int, int]

#: Cost returned for candidates outside the frame or window.
INFEASIBLE = float("inf")


@dataclass
class MotionSearchResult:
    """Outcome of one block search."""

    mv: MotionVector
    cost: float
    sad_evaluations: int
    pixel_ops: int

    @property
    def dx(self) -> int:
        return self.mv[0]

    @property
    def dy(self) -> int:
        return self.mv[1]


class SearchContext:
    """Evaluation context for one block against one reference plane.

    Parameters
    ----------
    reference:
        Reconstructed reference luma plane (``int`` or ``uint8``).
    block:
        Current block samples, shape ``(bh, bw)``.
    block_x, block_y:
        Top-left position of the block in the current frame.
    window:
        Maximum displacement magnitude per axis (search range +-window).
    lambda_mv:
        Motion-vector rate penalty weight.
    """

    def __init__(
        self,
        reference: np.ndarray,
        block: np.ndarray,
        block_x: int,
        block_y: int,
        window: int,
        lambda_mv: float = 1.0,
    ):
        if window < 0:
            raise ValueError("window must be non-negative")
        self.reference = reference
        self.block = block.astype(np.int32, copy=False)
        self.block_x = block_x
        self.block_y = block_y
        self.window = window
        self.lambda_mv = lambda_mv
        self._cache: Dict[MotionVector, float] = {}
        self.sad_evaluations = 0
        self.pixel_ops = 0

    @property
    def block_height(self) -> int:
        return self.block.shape[0]

    @property
    def block_width(self) -> int:
        return self.block.shape[1]

    def is_feasible(self, mv: MotionVector) -> bool:
        """Candidate lies within the window and the reference frame."""
        dx, dy = mv
        if abs(dx) > self.window or abs(dy) > self.window:
            return False
        rx = self.block_x + dx
        ry = self.block_y + dy
        ref_h, ref_w = self.reference.shape
        return (
            0 <= rx
            and 0 <= ry
            and rx + self.block_width <= ref_w
            and ry + self.block_height <= ref_h
        )

    def evaluate(self, mv: MotionVector) -> float:
        """Cost of a candidate MV (cached; infeasible candidates are inf)."""
        mv = (int(mv[0]), int(mv[1]))
        cached = self._cache.get(mv)
        if cached is not None:
            return cached
        if not self.is_feasible(mv):
            self._cache[mv] = INFEASIBLE
            return INFEASIBLE
        dx, dy = mv
        rx = self.block_x + dx
        ry = self.block_y + dy
        candidate = self.reference[
            ry : ry + self.block_height, rx : rx + self.block_width
        ].astype(np.int32, copy=False)
        sad = int(np.abs(self.block - candidate).sum())
        cost = sad + self.lambda_mv * (abs(dx) + abs(dy))
        self._cache[mv] = cost
        self.sad_evaluations += 1
        self.pixel_ops += self.block_width * self.block_height
        return cost

    def evaluate_many(self, mvs: Iterable[MotionVector]) -> Tuple[MotionVector, float]:
        """Evaluate candidates; return the best (mv, cost).

        Ties are broken toward the earlier candidate, so pattern
        ordering is deterministic.
        """
        best_mv: Optional[MotionVector] = None
        best_cost = INFEASIBLE
        for mv in mvs:
            cost = self.evaluate(mv)
            if cost < best_cost:
                best_cost = cost
                best_mv = (int(mv[0]), int(mv[1]))
        if best_mv is None:
            # Every candidate infeasible: fall back to zero MV, which is
            # always feasible for in-frame blocks.
            best_mv = (0, 0)
            best_cost = self.evaluate(best_mv)
        return best_mv, best_cost

    def result(self, mv: MotionVector, cost: float) -> MotionSearchResult:
        return MotionSearchResult(
            mv=mv,
            cost=cost,
            sad_evaluations=self.sad_evaluations,
            pixel_ops=self.pixel_ops,
        )


class MotionSearch(abc.ABC):
    """Base class for search algorithms.

    Subclasses implement :meth:`search`, receiving the context and a
    start vector (the motion predictor, e.g. the neighbouring block's
    MV or the direction inherited from the first frame of the GOP).
    """

    name: str = "base"

    @abc.abstractmethod
    def search(
        self, ctx: SearchContext, start: MotionVector = (0, 0)
    ) -> MotionSearchResult:
        """Run the search and return the best motion vector found."""

    def _start(self, ctx: SearchContext, start: MotionVector) -> Tuple[MotionVector, float]:
        """Evaluate the start predictor and the zero vector."""
        return ctx.evaluate_many([(0, 0), (int(start[0]), int(start[1]))])
