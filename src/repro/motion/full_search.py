"""Exhaustive full search.

Tests every integer displacement in the window.  "The classical full
search algorithm provides the best motion estimation [but] is not
applicable for real-time and online applications due to its intolerable
runtime overhead" (paper §II-B).  Used here as the quality reference in
tests and as the cost upper bound.
"""

from __future__ import annotations

from repro.motion.base import MotionSearch, MotionSearchResult, MotionVector, SearchContext


class FullSearch(MotionSearch):
    name = "full"

    def search(
        self, ctx: SearchContext, start: MotionVector = (0, 0)
    ) -> MotionSearchResult:
        w = ctx.window
        candidates = (
            (dx, dy) for dy in range(-w, w + 1) for dx in range(-w, w + 1)
        )
        best_mv, best_cost = ctx.evaluate_many(candidates)
        return ctx.result(best_mv, best_cost)
