"""TZ (Test Zone) search, as used in the HEVC reference software (HM)
and Kvazaar [21].

The paper's Table I reports all speedups *relative to TZ search*, which
is the quality/complexity reference for practical encoders.  This is a
faithful simplification of HM's integer TZ search:

1. start from the best of the zero vector and the predictor;
2. **zonal search**: 8-point diamond patterns at exponentially growing
   distances 1, 2, 4, ... up to the window, centred on the start;
3. **raster search** over the whole window with stride ``raster_step``
   if the best zonal distance exceeds ``raster_threshold``;
4. **refinement**: repeated zonal search around the current best with
   shrinking distances until distance 1 wins.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.motion.base import MotionSearch, MotionSearchResult, MotionVector, SearchContext


def _diamond_points(center: MotionVector, dist: int) -> List[MotionVector]:
    """8-point diamond at L-inf/diagonal mix, like HM's star pattern."""
    cx, cy = center
    if dist == 1:
        return [(cx, cy - 1), (cx - 1, cy), (cx + 1, cy), (cx, cy + 1)]
    half = dist // 2
    return [
        (cx, cy - dist),
        (cx - half, cy - half),
        (cx + half, cy - half),
        (cx - dist, cy),
        (cx + dist, cy),
        (cx - half, cy + half),
        (cx + half, cy + half),
        (cx, cy + dist),
    ]


class TZSearch(MotionSearch):
    name = "tz"

    def __init__(self, raster_threshold: int = 5, raster_step: int = 5):
        if raster_step <= 0:
            raise ValueError("raster_step must be positive")
        self.raster_threshold = raster_threshold
        self.raster_step = raster_step

    def _zonal(
        self, ctx: SearchContext, center: MotionVector, best_cost: float
    ) -> tuple:
        """Expanding diamonds around ``center``; returns (mv, cost, best_dist).

        As in HM, the expansion terminates early once the distance has
        grown well past the last improving ring: a good start predictor
        makes TZ nearly as cheap as a pattern search, while a poor one
        (e.g. after tile-boundary predictor resets) pays for the full
        expansion — the behaviour behind Table I's speedup growth with
        tile count.
        """
        best_mv = center
        best_dist = 0
        dist = 1
        while dist <= max(ctx.window, 1):
            mv, cost = ctx.evaluate_many(_diamond_points(center, dist))
            if cost < best_cost:
                best_cost = cost
                best_mv = mv
                best_dist = dist
            if dist > 4 * max(1, best_dist):
                break  # two rings with no improvement: give up expanding
            dist *= 2
        return best_mv, best_cost, best_dist

    def search(
        self, ctx: SearchContext, start: MotionVector = (0, 0)
    ) -> MotionSearchResult:
        best_mv, best_cost = self._start(ctx, start)

        # Stage 2: zonal search around the start point.
        mv, cost, best_dist = self._zonal(ctx, best_mv, best_cost)
        if cost < best_cost:
            best_mv, best_cost = mv, cost

        # Stage 3: raster search when the zonal winner was far out.
        if best_dist > self.raster_threshold and ctx.window > 0:
            w, s = ctx.window, self.raster_step
            raster: Iterable[MotionVector] = (
                (dx, dy)
                for dy in range(-w, w + 1, s)
                for dx in range(-w, w + 1, s)
            )
            mv, cost = ctx.evaluate_many(raster)
            if cost < best_cost:
                best_mv, best_cost = mv, cost

        # Stage 4: refinement around the current best — only needed when
        # the winner was found away from the start (HM skips the star
        # refinement when the zonal distance is already <= 1).
        while best_dist > 1:
            mv, cost, best_dist = self._zonal(ctx, best_mv, best_cost)
            if cost < best_cost:
                best_mv, best_cost = mv, cost
        return ctx.result(best_mv, best_cost)
