"""Name-based registry of motion search algorithms.

Used by the encoder configuration and the benchmark harness to select
algorithms by string (e.g. on a command line).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.motion.base import MotionSearch
from repro.motion.cross import CrossSearch
from repro.motion.diamond import DiamondSearch
from repro.motion.full_search import FullSearch
from repro.motion.hexagon import HexagonOrientation, HexagonSearch
from repro.motion.one_at_a_time import OneAtATimeSearch
from repro.motion.three_step import ThreeStepSearch
from repro.motion.tz_search import TZSearch

SEARCH_REGISTRY: Dict[str, Callable[[], MotionSearch]] = {
    "full": FullSearch,
    "tz": TZSearch,
    "three_step": ThreeStepSearch,
    "diamond": DiamondSearch,
    "cross": CrossSearch,
    "one_at_a_time": OneAtATimeSearch,
    "hexagon": lambda: HexagonSearch(HexagonOrientation.HORIZONTAL),
    "hexagon_horizontal": lambda: HexagonSearch(HexagonOrientation.HORIZONTAL),
    "hexagon_vertical": lambda: HexagonSearch(HexagonOrientation.VERTICAL),
    "hexagon_rotating": lambda: HexagonSearch(HexagonOrientation.ROTATING),
}


def get_search(name: str) -> MotionSearch:
    """Instantiate a search algorithm by name."""
    try:
        factory = SEARCH_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SEARCH_REGISTRY))
        raise ValueError(f"unknown search {name!r}; known: {known}") from None
    return factory()
