"""Three step search (Li, Zeng, Liou, IEEE TCSVT 1994) [11].

Starts with a step of roughly half the window, evaluates the 8
neighbours at the current step around the best point, halves the step,
and repeats until the step reaches 1.
"""

from __future__ import annotations

from repro.motion.base import MotionSearch, MotionSearchResult, MotionVector, SearchContext

_NEIGHBOURS = [(-1, -1), (0, -1), (1, -1), (-1, 0), (1, 0), (-1, 1), (0, 1), (1, 1)]


class ThreeStepSearch(MotionSearch):
    name = "three_step"

    def search(
        self, ctx: SearchContext, start: MotionVector = (0, 0)
    ) -> MotionSearchResult:
        best_mv, best_cost = self._start(ctx, start)
        step = max(1, ctx.window // 2)
        while step >= 1:
            candidates = [
                (best_mv[0] + dx * step, best_mv[1] + dy * step)
                for dx, dy in _NEIGHBOURS
            ]
            mv, cost = ctx.evaluate_many(candidates)
            if cost < best_cost:
                best_mv, best_cost = mv, cost
            if step == 1:
                break
            step //= 2
        return ctx.result(best_mv, best_cost)
