"""Diamond search (Zhu & Ma, 1997) [12].

Iterates a large diamond search pattern (LDSP, 8 points at L1 distance
2) until the centre is best, then refines once with the small diamond
pattern (SDSP, 4 points at L1 distance 1).
"""

from __future__ import annotations

from repro.motion.base import MotionSearch, MotionSearchResult, MotionVector, SearchContext

_LDSP = [(0, -2), (-1, -1), (1, -1), (-2, 0), (2, 0), (-1, 1), (1, 1), (0, 2)]
_SDSP = [(0, -1), (-1, 0), (1, 0), (0, 1)]

#: Safety bound on LDSP iterations (reference encoders bound pattern
#: refinement similarly); generous relative to any practical window.
_MAX_ITERATIONS = 256


class DiamondSearch(MotionSearch):
    name = "diamond"

    def search(
        self, ctx: SearchContext, start: MotionVector = (0, 0)
    ) -> MotionSearchResult:
        best_mv, best_cost = self._start(ctx, start)
        for _ in range(_MAX_ITERATIONS):
            candidates = [(best_mv[0] + dx, best_mv[1] + dy) for dx, dy in _LDSP]
            mv, cost = ctx.evaluate_many(candidates)
            if cost < best_cost:
                best_mv, best_cost = mv, cost
            else:
                break
        candidates = [(best_mv[0] + dx, best_mv[1] + dy) for dx, dy in _SDSP]
        mv, cost = ctx.evaluate_many(candidates)
        if cost < best_cost:
            best_mv, best_cost = mv, cost
        return ctx.result(best_mv, best_cost)
