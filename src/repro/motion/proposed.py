"""The paper's proposed fast motion search for bio-medical videos
(§III-C2).

The policy exploits two bio-medical properties: motion is globally
consistent across tiles, and its direction persists within a GOP.
Per tile it selects algorithm and search window from (motion class,
position of the frame in its GOP, direction learned on the GOP's first
frame):

=============  =======================  ==========================
tile motion    first frame of GOP       remaining frames of GOP
=============  =======================  ==========================
low            cross search, 16x16      one-at-a-time along the
               window                   learned axis, 8x8 window
high           rotating hexagon, max    horizontal/vertical hexagon
               window                   by learned axis, reduced
                                        window
=============  =======================  ==========================

The learned state (dominant axis and a motion-vector predictor per
tile) is carried by :class:`GopMotionState`, reset at each GOP start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.motion_probe import MotionClass
from repro import native
from repro.motion.base import MotionSearch, MotionSearchResult, MotionVector, SearchContext
from repro.motion.cross import CrossSearch
from repro.motion.hexagon import HexagonOrientation, HexagonSearch
from repro.motion.one_at_a_time import OneAtATimeSearch


@dataclass(frozen=True)
class ProposedSearchConfig:
    """Window sizes of the proposed policy (paper values).

    The paper considers windows of 64, 32, 16 and 8: low-motion tiles
    use 16 on the GOP's first frame and 8 afterwards; high-motion tiles
    use the maximum allowable window (64) on the first frame and
    smaller values (32) afterwards.
    """

    low_first_window: int = 16
    low_rest_window: int = 8
    high_first_window: int = 64
    high_rest_window: int = 32


@dataclass
class GopMotionState:
    """Per-GOP learned motion: dominant axis and per-tile MV predictors."""

    dominant_axis: Optional[str] = None  # 'x' or 'y'
    tile_mv: Dict[int, MotionVector] = field(default_factory=dict)

    def learn(self, tile_id: int, mv: MotionVector) -> None:
        self.tile_mv[tile_id] = mv
        # Axis votes accumulate through the magnitudes of first-frame MVs.
        dx, dy = abs(mv[0]), abs(mv[1])
        if dx == dy == 0:
            return
        axis = "x" if dx >= dy else "y"
        if self.dominant_axis is None:
            self.dominant_axis = axis

    def predictor(self, tile_id: int) -> MotionVector:
        return self.tile_mv.get(tile_id, (0, 0))


class BioMedicalSearchPolicy:
    """Selects and runs the per-tile search of the proposed method.

    One policy instance serves one video stream; call
    :meth:`start_gop` at every GOP boundary.
    """

    def __init__(self, config: ProposedSearchConfig = ProposedSearchConfig()):
        self.config = config
        self.state = GopMotionState()
        # The algorithms are stateless value objects, so the (motion,
        # first, axis) -> (algorithm, window) mapping is memoized —
        # `select` sits on the per-block hot path.
        self._select_cache: Dict[Tuple[MotionClass, bool, str], Tuple[MotionSearch, int]] = {}

    def start_gop(self) -> None:
        """Reset learned motion at a GOP boundary."""
        self.state = GopMotionState()

    def select(
        self, motion: MotionClass, is_first_in_gop: bool
    ) -> Tuple[MotionSearch, int]:
        """Return (algorithm, window) for a tile."""
        axis = self.state.dominant_axis or "x"
        key = (motion, is_first_in_gop, axis)
        hit = self._select_cache.get(key)
        if hit is None:
            hit = self._select_cache[key] = self._select(motion, is_first_in_gop, axis)
        return hit

    def _select(
        self, motion: MotionClass, is_first_in_gop: bool, axis: str
    ) -> Tuple[MotionSearch, int]:
        cfg = self.config
        if motion is MotionClass.LOW:
            if is_first_in_gop:
                return CrossSearch(), cfg.low_first_window
            return OneAtATimeSearch(primary_axis=axis), cfg.low_rest_window
        if is_first_in_gop:
            return HexagonSearch(HexagonOrientation.ROTATING), cfg.high_first_window
        orientation = (
            HexagonOrientation.HORIZONTAL if axis == "x" else HexagonOrientation.VERTICAL
        )
        return HexagonSearch(orientation), cfg.high_rest_window

    def search_block(
        self,
        ctx_factory,
        motion: MotionClass,
        is_first_in_gop: bool,
        tile_id: int,
        left_mv: MotionVector = (0, 0),
    ) -> MotionSearchResult:
        """Run the selected search for one block.

        ``ctx_factory(window) -> SearchContext`` builds the context with
        the window chosen by the policy.  The search is seeded with the
        best of the zero vector, the spatial (left-neighbour) predictor
        and the temporal predictor learned on the GOP's first frame —
        an AMVP-style candidate list.
        """
        algorithm, window = self.select(motion, is_first_in_gop)
        nargs = getattr(ctx_factory, "native_args", None)
        if nargs is not None:
            spec = algorithm.native_spec()
        else:
            spec = None
        if spec is not None:
            # Native search driver: same seed list, same evaluation
            # order, same counters — SearchContext never materializes.
            # (Probing the seeds first and starting the pattern from
            # their argmin is exactly `_start` semantics: the argmin
            # re-read is a cache hit either way.)
            win = getattr(ctx_factory, "native_window", window)
            seeds = ((0, 0), left_mv, self.state.predictor(tile_id))
            raw = nargs[5] if len(nargs) > 5 else None
            if raw is not None:
                ns = native.motion_search_raw(
                    raw, win, nargs[4], spec[0], spec[1], seeds,
                )
                area = raw[6] * raw[7]
            else:
                reference, block, bx, by, lambda_mv = nargs[:5]
                ns = native.motion_search(
                    reference, block, bx, by, win, lambda_mv,
                    spec[0], spec[1], list(seeds),
                )
                area = block.shape[0] * block.shape[1]
            if ns is not None:
                mv, cost, evals, sad = ns
                if is_first_in_gop:
                    self.state.learn(tile_id, mv)
                return MotionSearchResult(
                    mv=mv, cost=cost, sad_evaluations=evals,
                    pixel_ops=evals * area,
                    sad=sad,
                )
        ctx: SearchContext = ctx_factory(window)
        start, _ = ctx.evaluate_many(
            [(0, 0), left_mv, self.state.predictor(tile_id)]
        )
        result = algorithm.search(ctx, start=start)
        if is_first_in_gop:
            self.state.learn(tile_id, result.mv)
        return result
