"""Cross search (Ghanbari, IEEE TCOM 1990) [13].

A logarithmic search over a ``x``-shaped (diagonal cross) pattern: at
each step the four diagonal neighbours at the current step size are
tested, the step is halved when the centre wins, and the final stage
uses a ``+``- or ``x``-shaped pattern at step 1.

The paper leverages cross search "for the low-motion tiles of the first
frame in a GOP" (§III-C2).
"""

from __future__ import annotations

from repro.motion.base import MotionSearch, MotionSearchResult, MotionVector, SearchContext

_DIAGONAL = [(-1, -1), (1, -1), (-1, 1), (1, 1)]
_PLUS = [(0, -1), (-1, 0), (1, 0), (0, 1)]


class CrossSearch(MotionSearch):
    name = "cross"

    def native_spec(self):
        return (0, 0)

    def search(
        self, ctx: SearchContext, start: MotionVector = (0, 0)
    ) -> MotionSearchResult:
        best_mv, best_cost = self._start(ctx, start)
        step = max(1, ctx.window // 2)
        while step > 1:
            candidates = [
                (best_mv[0] + dx * step, best_mv[1] + dy * step)
                for dx, dy in _DIAGONAL
            ]
            mv, cost = ctx.evaluate_many(candidates)
            if cost < best_cost:
                best_mv, best_cost = mv, cost
            else:
                step //= 2
        # Final refinement at unit step over both cross orientations.
        candidates = [
            (best_mv[0] + dx, best_mv[1] + dy) for dx, dy in _DIAGONAL + _PLUS
        ]
        mv, cost = ctx.evaluate_many(candidates)
        if cost < best_cost:
            best_mv, best_cost = mv, cost
        return ctx.result(best_mv, best_cost)
