"""Vectorized SAD kernels for block-matching motion search.

The motion-search hot loop evaluates the sum of absolute differences
between one current block and many displaced reference windows.  Doing
that one candidate at a time from Python costs a dozen interpreter and
NumPy dispatches per candidate; this module computes a whole candidate
batch in one strided pass:

* :func:`window_view` builds the ``(H-bh+1, W-bw+1, bh, bw)`` sliding
  view of the reference plane (zero-copy);
* :func:`sad_batch` gathers the candidate windows with one fancy index
  and reduces ``|window - block|`` over the pixel axes in one shot.

The arithmetic matches the scalar path bit-exactly: differences are
taken in ``int32`` (both paths promote ``uint8`` planes to ``int32``)
and summed in ``int64``, so the returned SADs are the same integers the
per-candidate loop produces.

Large candidate sets (an exhaustive full search gathers
``(2w+1)^2 * bh * bw`` pixels) are processed in chunks bounded by
:data:`CHUNK_PIXEL_BUDGET` gathered pixels so peak memory stays flat.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

#: Maximum number of pixels gathered per chunk (~16 MB of int32).
CHUNK_PIXEL_BUDGET = 4 * 1024 * 1024


def window_view(reference: np.ndarray, block_h: int, block_w: int) -> np.ndarray:
    """Sliding view of every ``(block_h, block_w)`` window of ``reference``.

    Shape ``(H - block_h + 1, W - block_w + 1, block_h, block_w)``;
    zero-copy (read-only strided view of the reference plane).
    ``as_strided`` is used directly because this sits on the per-block
    hot path, where ``sliding_window_view``'s argument normalisation
    costs more than the whole SAD of a small candidate batch.
    """
    h, w = reference.shape
    s0, s1 = reference.strides
    shape = (h - block_h + 1, w - block_w + 1, block_h, block_w)
    strides = (s0, s1, s0, s1)
    try:
        # Raw ndarray construction: same result as as_strided without
        # its per-call Python overhead (this runs once per block).
        view = np.ndarray(
            shape=shape, strides=strides, dtype=reference.dtype,
            buffer=reference,
        )
        view.flags.writeable = False
        return view
    except (TypeError, BufferError):
        # Non-contiguous reference planes lack a buffer interface.
        return as_strided(
            reference, shape=shape, strides=strides, writeable=False
        )


def sad_batch(
    windows: np.ndarray,
    block: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    dtype: np.dtype = np.dtype(np.int32),
) -> np.ndarray:
    """SAD of ``block`` against the windows anchored at ``(ys, xs)``.

    Parameters
    ----------
    windows:
        Sliding window view from :func:`window_view`.
    block:
        Current block as a signed integer array, shape ``(bh, bw)``.
    xs, ys:
        Top-left window coordinates, already validated in-bounds.
    dtype:
        Signed dtype wide enough for the window/block difference
        (``int32`` for 8-bit planes, matching the scalar path).

    Returns
    -------
    ``int64`` array of SAD values, one per candidate, identical to the
    scalar ``|block - window|`` sums.
    """
    n = int(xs.size)
    area = block.size
    if n * area <= CHUNK_PIXEL_BUDGET:
        # Single-chunk fast path: the common case for pattern batches.
        diff = np.subtract(windows[ys, xs], block, dtype=dtype)
        np.abs(diff, out=diff)
        return diff.sum(axis=(1, 2), dtype=np.int64)
    out = np.empty(n, dtype=np.int64)
    chunk = max(1, CHUNK_PIXEL_BUDGET // max(1, area))
    for s in range(0, n, chunk):
        e = min(n, s + chunk)
        gathered = windows[ys[s:e], xs[s:e]]  # (m, bh, bw) copy
        diff = np.subtract(gathered, block, dtype=dtype)
        np.abs(diff, out=diff)
        out[s:e] = diff.sum(axis=(1, 2), dtype=np.int64)
    return out
