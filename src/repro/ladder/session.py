"""Shared-analysis rendition-ladder session.

One ingest stream in, one :class:`~repro.transcode.pipeline.FrameOutput`
stream per surviving rung out.  The multi-resolution encoding thesis
(arxiv 2301.12191) motivates the sharing: work that depends only on the
*content* — not the output geometry — is computed once at full
resolution and reused by every rung:

* **feature extraction** runs once on the first full-resolution frame;
* **classification** consumes those features
  (:meth:`ContentClassifier.classify_features`) and the resolved class
  is pinned into every rung's ``PipelineConfig.content_class``, so no
  rung session ever classifies on its own;
* **rung planning** (Green-VCA pruning) consumes the same features;
* **LUT observations** from every rung flow into one shared
  :class:`WorkloadEstimator`, keyed per resolution via
  ``WorkloadKey.resolution``.

Each surviving rung then runs an ordinary
:class:`ProposedStreamSession` over the box-downscaled frames.  Because
a rung session with a pinned content class is exactly what an
independent single-rung run with the same pinned class would be, the
ladder's per-rung output is **bit-identical** to N independent
sessions — the property `tests/test_ladder.py` and the smoke drill
assert, and what makes the shared-analysis savings free.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.analysis.classes import FrameFeatures, extract_features
from repro.ladder.config import LadderConfig
from repro.ladder.planner import LadderPlan, LadderPlanner, PlannedRung
from repro.observability import get_registry
from repro.transcode.pipeline import (
    FrameOutput,
    PipelineConfig,
    ProposedStreamSession,
    StreamTranscoder,
    _shared_classifier,
)
from repro.video.frame import Frame
from repro.video.scale import downscale_frame
from repro.workload.estimator import WorkloadEstimator

__all__ = ["LadderSession", "RungSession"]


class RungSession:
    """One rung's pipeline session plus its ladder bookkeeping."""

    def __init__(self, planned: PlannedRung, transcoder: StreamTranscoder):
        self.rung_id = planned.rung_id
        self.rung = planned.rung
        self.transcoder = transcoder
        self.session = transcoder.open_session()

    def close(self) -> None:
        self.transcoder.close()


class LadderSession:
    """Encodes one ingest stream into a pruned rendition ladder.

    Construction is cheap; the expensive start (feature pass,
    classification, planning, per-rung session creation) happens on the
    first :meth:`push`, because planning needs the first frame.

    ``base_config`` describes the *primary* rung: its gop/fps/QP/etc.
    are inherited by every rung, only ``content_class`` (pinned to the
    shared classification) and ``rung_resolution`` (the LUT key tag;
    ``None`` on the primary so full-resolution statistics keep pooling
    with pre-ladder sessions) differ per rung.
    """

    def __init__(
        self,
        base_config: Optional[PipelineConfig] = None,
        ladder: Optional[LadderConfig] = None,
        estimator: Optional[WorkloadEstimator] = None,
    ):
        self.base_config = base_config or PipelineConfig()
        self.ladder = ladder or LadderConfig()
        #: Shared across rungs: every rung's tile observations land in
        #: one LUT, under per-resolution keys.
        self.estimator = estimator or WorkloadEstimator()
        self.planner = LadderPlanner(self.ladder)
        self.plan: Optional[LadderPlan] = None
        self.features: Optional[FrameFeatures] = None
        self.rung_sessions: List[RungSession] = []
        self._finished = False

    # -- lifecycle -----------------------------------------------------
    @property
    def started(self) -> bool:
        return self.plan is not None

    def _start(self, first: Frame) -> None:
        """The one shared analysis pass (first valid frame only)."""
        self.features = extract_features(first.luma)
        content = self.base_config.content_class
        if content is None:
            content = _shared_classifier().classify_features(self.features)
        self.plan = self.planner.plan(first.luma, features=self.features)
        registry = get_registry()
        registry.inc(
            "repro_ladder_sessions_total",
            help="Rendition-ladder sessions started",
        )
        registry.inc(
            "repro_ladder_rungs_pruned_total", len(self.plan.pruned),
            help="Ladder rungs pruned by the Green-VCA rule",
        )
        primary_id = self.plan.rungs[0].rung_id
        for planned in self.plan.rungs:
            cfg = replace(
                self.base_config,
                content_class=content,
                rung_resolution=(
                    None if planned.rung_id == primary_id
                    else planned.rung.height
                ),
            )
            self.rung_sessions.append(
                RungSession(planned, StreamTranscoder(
                    cfg, estimator=self.estimator,
                ))
            )

    def close(self) -> None:
        for rs in self.rung_sessions:
            rs.close()

    def __enter__(self) -> "LadderSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingest --------------------------------------------------------
    def push(self, frame: Frame) -> List[FrameOutput]:
        """Push one full-resolution ingest frame into every rung.

        Returns the rung-tagged outputs of every GOP that completed,
        primary rung first (``FrameOutput.rung`` names the rung).  The
        frame is box-downscaled once per rung; the primary receives a
        copy so no rung aliases the (possibly reused) ingest buffer.
        """
        if self._finished:
            raise ValueError("ladder session already finished")
        if not self.started:
            self._start(frame)
        outputs: List[FrameOutput] = []
        for rs in self.rung_sessions:
            scaled = downscale_frame(frame, rs.rung.width, rs.rung.height)
            for out in rs.session.push(scaled):
                out.rung = rs.rung_id
                outputs.append(out)
        return outputs

    def finish(self) -> List[FrameOutput]:
        """Flush every rung's partial tail GOP and close the ladder."""
        if self._finished:
            return []
        self._finished = True
        outputs: List[FrameOutput] = []
        for rs in self.rung_sessions:
            for out in rs.session.finish():
                out.rung = rs.rung_id
                outputs.append(out)
        return outputs
