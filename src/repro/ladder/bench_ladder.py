"""Rendition-ladder benchmark (``python -m repro.ladder.bench_ladder``).

Measures what the shared-analysis ladder saves over serving the same
rung set with N independent single-rung sessions, and records the
result in the ``BENCH_<n>.json`` schema used by ``repro bench``.

Two arms over the identical workload (one synthetic stream, the
3-rung ladder ``default_rungs_for`` derives for the ingest geometry):

* ``ladder_shared`` — one :class:`LadderSession`: a single
  full-resolution feature pass powers classification and rung
  planning, every rung reuses the pinned class and one shared LUT.
* ``independent_sessions`` — one :class:`StreamTranscoder` per rung
  over the same box-downscaled frames, each resolving its own content
  class and warming its own LUT, the way N unrelated sessions would.

Encode work is identical by construction (the ladder's per-rung
output is bit-identical to the independent sessions', as
``make ladder-smoke`` asserts), so the wall-clock delta isolates the
duplicated analysis.  A third record reports the duplication
directly: the ladder runs exactly one analysis pass where the
independent arm runs one per rung.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import statistics
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.classes import extract_features
from repro.bench import git_sha, repo_root
from repro.codec.config import GopConfig
from repro.ladder.config import LadderConfig, default_rungs_for
from repro.ladder.session import LadderSession
from repro.observability import scoped
from repro.transcode.pipeline import PipelineConfig, StreamTranscoder
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)
from repro.video.scale import downscale_frame

_WIDTH, _HEIGHT = 320, 240
_FRAMES = 8
_GOP = 4
_SEED = 11
_CONTENT = ContentClass.BRAIN


def _video():
    return BioMedicalVideoGenerator(GeneratorConfig(
        width=_WIDTH, height=_HEIGHT, num_frames=_FRAMES, seed=_SEED,
        content_class=_CONTENT, motion=MotionPreset.PAN_RIGHT,
    )).generate()


def _ladder_arm(video, rungs) -> float:
    base = PipelineConfig(fps=video.fps, gop=GopConfig(_GOP))
    start = time.perf_counter()
    with LadderSession(
        base_config=base,
        ladder=LadderConfig(rungs=rungs, prune=False),
    ) as session:
        for frame in video.frames:
            session.push(frame)
        session.finish()
    return time.perf_counter() - start


def _independent_arm(video, rungs) -> float:
    start = time.perf_counter()
    for rung in rungs:
        cfg = PipelineConfig(fps=video.fps, gop=GopConfig(_GOP))
        with StreamTranscoder(cfg) as transcoder:
            session = transcoder.open_session()
            for frame in video.frames:
                session.push(
                    downscale_frame(frame, rung.width, rung.height)
                )
            session.finish()
    return time.perf_counter() - start


def _analysis_pass_seconds(video, rungs) -> dict:
    """Direct cost of the duplicated work: one full-resolution feature
    pass (the ladder's single shared pass) vs one pass per rung at
    rung resolution (what N independent sessions each pay)."""
    repeats = 20
    start = time.perf_counter()
    for _ in range(repeats):
        extract_features(video.frames[0].luma)
    shared = (time.perf_counter() - start) / repeats
    start = time.perf_counter()
    for _ in range(repeats):
        for rung in rungs:
            scaled = downscale_frame(
                video.frames[0], rung.width, rung.height
            )
            extract_features(scaled.luma)
    independent = (time.perf_counter() - start) / repeats
    return {"shared_s": shared, "independent_s": independent}


def measure(rounds: int) -> dict:
    video = _video()
    rungs = default_rungs_for(_WIDTH, _HEIGHT)
    ladder: List[float] = []
    independent: List[float] = []
    # One warmup each (native kernel build, classifier fit), then
    # paired rounds alternating order to cancel drift.
    with scoped():
        _ladder_arm(video, rungs)
        _independent_arm(video, rungs)
    for i in range(rounds):
        arms = [(ladder, _ladder_arm), (independent, _independent_arm)]
        if i % 2:
            arms.reverse()
        for sink, arm in arms:
            with scoped():
                sink.append(arm(video, rungs))
    analysis = _analysis_pass_seconds(video, rungs)
    return {
        "ladder": ladder, "independent": independent,
        "analysis": analysis, "num_rungs": len(rungs),
        "rungs": [[r.width, r.height] for r in rungs],
    }


def _record(name: str, times: List[float], frames: int) -> dict:
    mean_s = statistics.fmean(times)
    return {
        "name": name,
        "group": "ladder",
        "mean_s": mean_s,
        "stddev_s": statistics.stdev(times) if len(times) > 1 else 0.0,
        "rounds": len(times),
        "frames_per_s": frames / mean_s,
        "median_s": statistics.median(times),
        "best_s": min(times),
    }


def summarize(results: dict) -> dict:
    # Frames of output across every rung.
    frames = _FRAMES * results["num_rungs"]
    med_ladder = statistics.median(results["ladder"])
    med_indep = statistics.median(results["independent"])
    analysis = results["analysis"]
    records = [
        _record("ladder_shared", results["ladder"], frames),
        _record("independent_sessions", results["independent"], frames),
        {
            "name": "shared_analysis_savings",
            "group": "ladder",
            "ingest": f"{_WIDTH}x{_HEIGHT}",
            "frames_per_session": _FRAMES,
            "gop": _GOP,
            "rungs": results["rungs"],
            "analysis_passes_ladder": 1,
            "analysis_passes_independent": results["num_rungs"],
            "analysis_pass_shared_s": analysis["shared_s"],
            "analysis_passes_independent_s": analysis["independent_s"],
            "speedup_median": med_indep / med_ladder,
            "claim": "one shared full-resolution analysis pass replaces "
                     "one per rung: the ladder serves the same "
                     "bit-identical rung outputs at or below the "
                     "wall-clock of N independent sessions",
        },
    ]
    return {
        "machine_info": {
            "node": platform.node(),
            "machine": platform.machine(),
            "system": platform.system(),
            "release": platform.release(),
            "python_implementation": platform.python_implementation(),
            "python_version": platform.python_version(),
        },
        "datetime": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "git_sha": git_sha(),
        "groups": ["ladder"],
        "benchmarks": records,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ladder.bench_ladder", description=__doc__,
    )
    parser.add_argument("--rounds", type=int, default=9,
                        help="paired measurement rounds (default 9)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: BENCH_7.json at the "
                             "repo root; refuses to overwrite)")
    args = parser.parse_args(argv)
    out = args.out or (repo_root() / "BENCH_7.json")
    if out.exists():
        parser.error(f"refusing to overwrite existing {out}")
    summary = summarize(measure(args.rounds))
    with open(out, "x") as fh:
        fh.write(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {out}")
    for rec in summary["benchmarks"]:
        if "median_s" in rec:
            print(f"  {rec['name']:<22} median {rec['median_s']*1e3:7.1f} ms"
                  f"  ({rec['frames_per_s']:.1f} rung-frames/s mean)")
        else:
            print(f"  {rec['name']:<22} "
                  f"speedup {rec['speedup_median']:.3f}x, "
                  f"analysis passes {rec['analysis_passes_ladder']} vs "
                  f"{rec['analysis_passes_independent']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
