"""Content-aware rung pruning (the Green-VCA rule).

Green video complexity analysis (arxiv 2304.12384) selects per-title
encoding ladders from cheap spatial/temporal complexity features: for
*low-complexity* content an upscaled low rung is nearly
indistinguishable from a natively-encoded higher rung, so encoding the
higher rung buys little quality for its energy.  Our content
classifier's feature vector already contains the needed spatial
complexity cues (edge density, coefficient of variation — the same
statistics VCA's spatial energy ``E_Y`` summarizes), so the planner
reuses the one full-resolution analysis pass the ladder session
performs anyway.

The rule: an intermediate rung ``i`` is kept only when its predicted
quality gain over the next lower surviving candidate ``j``,

    gain_db(i) = complexity * 10 * log10(area_i / area_j)

reaches ``LadderConfig.min_gain_db``.  The primary (clinical
deliverable) and the lowest rung (reach floor) always survive.  The
prediction is a monotone proxy, not a rate-distortion model: what
matters for the ladder is the *ordering* it induces — complex content
keeps every rung, flat content collapses to top + bottom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.classes import FrameFeatures, extract_features
from repro.ladder.config import LadderConfig, LadderRung

__all__ = ["PlannedRung", "LadderPlan", "LadderPlanner", "complexity_score"]


def complexity_score(features: FrameFeatures) -> float:
    """Spatial complexity in ``[0, 1]`` from the classifier features.

    Edge density dominates (fraction of strong gradients — the direct
    analogue of VCA's high-frequency energy); the coefficient of
    variation adds large-structure contrast.  Both are scale-free, so
    the score is comparable across ingest geometries.
    """
    return float(np.clip(1.5 * features.edge_density + 0.5 * features.cv,
                         0.0, 1.0))


@dataclass(frozen=True)
class PlannedRung:
    """One surviving rung with its stable ladder id."""

    rung_id: int
    rung: LadderRung


@dataclass(frozen=True)
class LadderPlan:
    """Outcome of planning one ladder against one ingest stream."""

    #: Surviving rungs, largest first.  ``rung_id`` indexes the
    #: *configured* ladder, so ids stay stable across pruning.
    rungs: Tuple[PlannedRung, ...]
    #: ``(rung_id, predicted_gain_db)`` of every pruned rung.
    pruned: Tuple[Tuple[int, float], ...]
    #: Measured content complexity the decisions were based on.
    complexity: float

    @property
    def rung_ids(self) -> List[int]:
        return [p.rung_id for p in self.rungs]


class LadderPlanner:
    """Plans which rungs of a :class:`LadderConfig` to encode."""

    def __init__(self, config: Optional[LadderConfig] = None):
        self.config = config or LadderConfig()

    def plan(
        self,
        first_luma: np.ndarray,
        features: Optional[FrameFeatures] = None,
    ) -> LadderPlan:
        """Prune the configured ladder for one stream.

        ``first_luma`` is the full-resolution first frame; pass
        ``features`` when the caller already extracted them (the
        ladder session shares one analysis pass between classification
        and planning — computing them twice would defeat the point).

        Never-upscale is enforced here: a configured rung larger than
        the ingest raises ``ValueError``.
        """
        h, w = first_luma.shape
        cfg = self.config
        for rung in cfg.rungs:
            if rung.width > w or rung.height > h:
                raise ValueError(
                    f"rung {rung.width}x{rung.height} exceeds the "
                    f"{w}x{h} ingest: ladders never upscale"
                )
        if features is None:
            features = extract_features(first_luma)
        c = complexity_score(features)
        if not cfg.prune or len(cfg.rungs) <= 2:
            kept = [PlannedRung(i, r) for i, r in enumerate(cfg.rungs)]
            return LadderPlan(rungs=tuple(kept), pruned=(), complexity=c)
        # Walk bottom-up: each intermediate rung must beat the next
        # lower *survivor* by min_gain_db.  Bottom and top always stay.
        n = len(cfg.rungs)
        keep = [n - 1]
        pruned: List[Tuple[int, float]] = []
        for i in range(n - 2, 0, -1):
            below = cfg.rungs[keep[-1]]
            gain = c * 10.0 * math.log10(cfg.rungs[i].area / below.area)
            if gain >= cfg.min_gain_db:
                keep.append(i)
            else:
                pruned.append((i, gain))
        keep.append(0)
        keep.sort()
        return LadderPlan(
            rungs=tuple(PlannedRung(i, cfg.rungs[i]) for i in keep),
            pruned=tuple(sorted(pruned)),
            complexity=c,
        )
