"""Fixed-seed rendition-ladder drill (``make ladder-smoke``).

Encodes one deterministic synthetic stream through a 3-rung ladder and
fails loudly unless every ladder invariant holds:

* the Green-VCA planner keeps all three rungs for this content (its
  complexity clears the default gain threshold);
* every segment boundary lands on a GOP boundary and every manifest
  reference resolves with both checksum layers intact;
* each rung's output is **bit-identical** to an independent
  single-rung session (same pinned content class) over the same
  box-downscaled frames;
* each rung's CRC-32 output digest matches the committed golden
  (``tests/golden/ladder_smoke.json``) — regenerate after an
  intentional encoder change with ``--update-golden``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import zlib
from pathlib import Path
from typing import Dict, List

from repro.codec.config import GopConfig
from repro.ladder.config import LadderConfig, default_rungs_for
from repro.ladder.segments import LadderSegmentReader, LadderSegmentWriter
from repro.ladder.session import LadderSession
from repro.transcode.pipeline import (
    FrameOutput,
    PipelineConfig,
    StreamTranscoder,
)
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)
from repro.video.scale import downscale_frame

#: Drill geometry: everything below is part of the golden contract.
WIDTH, HEIGHT = 256, 192
FRAMES = 16
GOP = 4
SEGMENT_GOPS = 2
SEED = 7
CONTENT = ContentClass.BRAIN

GOLDEN_PATH = (
    Path(__file__).resolve().parents[3] / "tests" / "golden"
    / "ladder_smoke.json"
)


def _rung_digest(outputs: List[FrameOutput]) -> str:
    """CRC-32 folded over one rung's outputs in frame order."""
    crc = 0
    for out in sorted(outputs, key=lambda o: o.frame_index):
        ftype = "" if out.frame_type is None else out.frame_type.value
        bits = out.record.bits if out.record else 0
        head = f"{out.frame_index}:{ftype}:{out.dropped or ''}:{bits}"
        crc = zlib.crc32(head.encode(), crc)
        if out.reconstruction is not None:
            crc = zlib.crc32(out.reconstruction.tobytes(), crc)
    return f"{crc & 0xFFFFFFFF:08x}"


def run(update_golden: bool = False) -> int:
    video = BioMedicalVideoGenerator(GeneratorConfig(
        width=WIDTH, height=HEIGHT, num_frames=FRAMES, seed=SEED,
        content_class=CONTENT, motion=MotionPreset.PAN_RIGHT,
    )).generate()
    base = PipelineConfig(fps=video.fps, gop=GopConfig(GOP))
    ladder_cfg = LadderConfig(
        rungs=default_rungs_for(WIDTH, HEIGHT), segment_gops=SEGMENT_GOPS,
    )
    failures: List[str] = []

    by_rung: Dict[int, List[FrameOutput]] = {}
    with LadderSession(base_config=base, ladder=ladder_cfg) as session:
        outputs: List[FrameOutput] = []
        for frame in video.frames:
            outputs.extend(session.push(frame))
        outputs.extend(session.finish())
        plan = session.plan
        pinned = {
            rs.rung_id: rs.transcoder.config.content_class
            for rs in session.rung_sessions
        }
    for out in outputs:
        by_rung.setdefault(out.rung, []).append(out)

    if len(plan.rungs) != 3:
        failures.append(
            f"expected the full 3-rung ladder, planner kept "
            f"{len(plan.rungs)} (pruned {plan.pruned})"
        )
    for rung_id, outs in by_rung.items():
        if len(outs) != FRAMES:
            failures.append(
                f"rung {rung_id} produced {len(outs)}/{FRAMES} outputs"
            )

    # -- segments: GOP alignment + manifest resolution ------------------
    with tempfile.TemporaryDirectory(prefix="ladder_smoke_") as tmp:
        writer = LadderSegmentWriter(
            Path(tmp), plan, WIDTH, HEIGHT, gop=GOP,
            segment_gops=SEGMENT_GOPS, fps=video.fps,
        )
        for out in outputs:
            writer.add(out)
        manifest = writer.finalize()
        reader = LadderSegmentReader(Path(tmp))
        for rung in manifest["rungs"]:
            refs = reader.segment_refs(rung["id"])
            for i, ref in enumerate(refs):
                if ref.first_frame % GOP != 0:
                    failures.append(
                        f"rung {rung['id']} segment {i} opens at frame "
                        f"{ref.first_frame}: not a GOP boundary"
                    )
                msgs = reader.read_segment(rung["id"], i)
                if msgs and msgs[0].frame_type not in ("I", ""):
                    failures.append(
                        f"rung {rung['id']} segment {i} opens on a "
                        f"{msgs[0].frame_type} frame, not I"
                    )
            total = sum(ref.frames for ref in refs)
            if total != FRAMES:
                failures.append(
                    f"rung {rung['id']} segments carry {total}/{FRAMES} "
                    "frames"
                )

    # -- bit-identity vs independent single-rung sessions ---------------
    for planned in plan.rungs:
        cfg = PipelineConfig(
            fps=video.fps, gop=GopConfig(GOP),
            content_class=pinned[planned.rung_id],
        )
        with StreamTranscoder(cfg) as transcoder:
            independent = transcoder.open_session()
            solo: List[FrameOutput] = []
            for frame in video.frames:
                scaled = downscale_frame(
                    frame, planned.rung.width, planned.rung.height
                )
                solo.extend(independent.push(scaled))
            solo.extend(independent.finish())
        ladder_outs = sorted(
            by_rung.get(planned.rung_id, []), key=lambda o: o.frame_index
        )
        solo.sort(key=lambda o: o.frame_index)
        if _rung_digest(ladder_outs) != _rung_digest(solo):
            failures.append(
                f"rung {planned.rung_id} diverges from an independent "
                "single-rung session: bit-identity broken"
            )

    # -- golden digests -------------------------------------------------
    digests = {
        str(planned.rung_id): _rung_digest(by_rung[planned.rung_id])
        for planned in plan.rungs
    }
    golden = {
        "geometry": f"{WIDTH}x{HEIGHT}",
        "frames": FRAMES, "gop": GOP, "segment_gops": SEGMENT_GOPS,
        "seed": SEED, "content": CONTENT.value,
        "complexity": round(plan.complexity, 6),
        "rung_digests": digests,
    }
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True)
                               + "\n")
        print(f"wrote {GOLDEN_PATH}")
    elif not GOLDEN_PATH.exists():
        failures.append(
            f"golden file missing: {GOLDEN_PATH} "
            "(run with --update-golden to create it)"
        )
    else:
        expected = json.loads(GOLDEN_PATH.read_text())
        if expected != golden:
            failures.append(
                f"golden mismatch:\n  expected {expected}\n  got      "
                f"{golden}\n  (an intentional encoder change needs "
                "--update-golden)"
            )

    for rung_id in sorted(digests):
        print(f"rung {rung_id}: crc32 {digests[rung_id]}")
    if failures:
        print("ladder-smoke FAILED:\n  - " + "\n  - ".join(failures),
              file=sys.stderr)
        return 1
    print(f"ladder-smoke OK ({len(plan.rungs)} rungs, {FRAMES} frames, "
          f"complexity {plan.complexity:.3f})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update-golden", action="store_true",
                        help="rewrite tests/golden/ladder_smoke.json")
    args = parser.parse_args(argv)
    return run(update_golden=args.update_golden)


if __name__ == "__main__":
    raise SystemExit(main())
