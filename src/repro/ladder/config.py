"""Rendition-ladder configuration.

A *ladder* is an ordered set of output resolutions ("rungs") derived
from one ingest stream, largest first.  Rung 0 is the **primary**: the
full-resolution clinical deliverable, encoded at ingest geometry and
never pruned or dropped — lower rungs are bandwidth conveniences for
remote viewers, which is why both the Green-VCA planner and the
admission controller shed from the bottom up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "LadderRung",
    "LadderConfig",
    "DEFAULT_RUNGS",
    "RUNG_MULTIPLE",
    "default_rungs_for",
]


#: Rung dimensions must be multiples of the codec's transform size:
#: block partitioning leaves border blocks of ``dim % 16`` samples, and
#: the 8x8 transform requires those remainders to stay divisible by 8.
RUNG_MULTIPLE = 8


@dataclass(frozen=True)
class LadderRung:
    """One output resolution of a rendition ladder."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"rung dimensions must be positive, got "
                f"{self.width}x{self.height}"
            )
        if self.width % RUNG_MULTIPLE or self.height % RUNG_MULTIPLE:
            raise ValueError(
                f"rung dimensions must be multiples of {RUNG_MULTIPLE} "
                f"(the transform size), got {self.width}x{self.height}"
            )

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def name(self) -> str:
        """Conventional rendition label (``480p``-style, by height)."""
        return f"{self.height}p"


#: The paper's VGA world and its two classic sub-rungs: 3/4 linear
#: scale (480x360) and 1/2 linear scale (320x240).  Integer box
#: geometry exists for each (no rung exceeds the ingest).
DEFAULT_RUNGS: Tuple[LadderRung, ...] = (
    LadderRung(640, 480),
    LadderRung(480, 360),
    LadderRung(320, 240),
)


def default_rungs_for(width: int, height: int) -> Tuple[LadderRung, ...]:
    """A 3-rung ladder scaled to an arbitrary ingest geometry.

    Full resolution, 3/4 linear scale and 1/2 linear scale — the same
    shape as :data:`DEFAULT_RUNGS` produces for 640x480.  Dimensions
    are floored; rungs below the 32-sample minimum tile geometry
    (``TilingConstraints``) are omitted so tiny test ingests still
    yield a valid (shorter) ladder.
    """
    candidates = [
        (width, height),
        (width * 3 // 4, height * 3 // 4),
        (width // 2, height // 2),
    ]
    rungs = []
    for w, h in candidates:
        # Floor to the transform-size multiple the encoder requires.
        w -= w % RUNG_MULTIPLE
        h -= h % RUNG_MULTIPLE
        if w >= 32 and h >= 32 and (w, h) not in [
            (r.width, r.height) for r in rungs
        ]:
            rungs.append(LadderRung(w, h))
    return tuple(rungs)


@dataclass(frozen=True)
class LadderConfig:
    """Configuration of one rendition-ladder session.

    ``rungs`` must be strictly decreasing in area (largest = primary
    first); rung ids are positions in this tuple and stay stable across
    pruning, so a manifest or wire consumer can always map id ->
    geometry.
    """

    rungs: Tuple[LadderRung, ...] = DEFAULT_RUNGS
    #: Apply the Green-VCA pruning rule (arxiv 2304.12384): drop
    #: intermediate rungs whose predicted quality gain over the next
    #: lower rung falls below :attr:`min_gain_db` for the measured
    #: content complexity.  The primary and the lowest rung survive
    #: regardless.
    prune: bool = True
    #: Minimum predicted quality gain (dB) an intermediate rung must
    #: buy to stay in the ladder.
    min_gain_db: float = 1.0
    #: Segment length in GOPs — every segment boundary is a GOP
    #: boundary by construction, which is what makes mid-stream rung
    #: switching decode cleanly (each segment opens on an I frame).
    segment_gops: int = 2

    def __post_init__(self) -> None:
        if not self.rungs:
            raise ValueError("ladder needs at least one rung")
        areas = [r.area for r in self.rungs]
        if any(a <= b for a, b in zip(areas, areas[1:])):
            raise ValueError(
                "ladder rungs must be strictly decreasing in area "
                f"(got {[f'{r.width}x{r.height}' for r in self.rungs]})"
            )
        if self.segment_gops < 1:
            raise ValueError("segment_gops must be >= 1")
        if self.min_gain_db < 0:
            raise ValueError("min_gain_db must be non-negative")

    @property
    def primary(self) -> LadderRung:
        return self.rungs[0]
