"""Rendition-ladder subsystem: one ingest, many GOP-aligned outputs.

``repro.ladder`` turns one full-resolution ingest session into a
*ladder* of renditions (e.g. 480/360/240 from the 640x480 world) the
way ABR streaming deployments do, while preserving the repo's two
invariants:

* **bit-identity** — every rung's output is bit-identical to an
  independent single-rung session over the same downscaled frames
  (shared analysis changes *where* work happens, never *what* is
  computed);
* **determinism** — the integer box downscaler, the Green-VCA rung
  pruning and the GOP-aligned segmenter are all pure functions of the
  ingest and the seed.

See DESIGN.md §14 for the architecture and dataflow.
"""

from repro.ladder.config import (
    DEFAULT_RUNGS,
    LadderConfig,
    LadderRung,
    default_rungs_for,
)
from repro.ladder.planner import (
    LadderPlan,
    LadderPlanner,
    PlannedRung,
    complexity_score,
)
from repro.ladder.segments import (
    MANIFEST_NAME,
    LadderSegmentReader,
    LadderSegmentWriter,
    SegmentRef,
    frame_psnr,
)
from repro.ladder.session import LadderSession, RungSession

__all__ = [
    "DEFAULT_RUNGS",
    "MANIFEST_NAME",
    "LadderConfig",
    "LadderPlan",
    "LadderPlanner",
    "LadderRung",
    "LadderSegmentReader",
    "LadderSegmentWriter",
    "LadderSession",
    "PlannedRung",
    "RungSession",
    "SegmentRef",
    "complexity_score",
    "default_rungs_for",
    "frame_psnr",
]
