"""GOP-aligned segmented output with a JSON playlist manifest.

Each rung's output is cut into *segments* of ``segment_gops`` GOPs.
Segment boundaries therefore land on GOP boundaries by construction,
and every segment opens on an I frame — the property that lets a
client switch rungs mid-stream: play rung A's segments up to boundary
``k``, then decode rung B from its segment ``k`` without any reference
to B's earlier segments.

The segment *format* is the serving wire protocol itself: a segment
file is the concatenation of ENCODED wire frames
(:func:`repro.serving.protocol.encode_encoded_into`, rung id in the
header flags), so any protocol consumer — including the zero-copy
:class:`MessageDecoder` — plays segments back without a second parser,
and segment bytes are checksummed twice (per-message CRC inside, whole
file CRC in the manifest).

The manifest (``manifest.json``) is an HLS-style playlist: ingest
geometry, GOP/segment cadence, the surviving rungs with their segment
lists, and the pruned rungs with the predicted gain that killed them.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.ladder.planner import LadderPlan
from repro.serving.protocol import (
    Encoded,
    MessageDecoder,
    ProtocolError,
    encode_encoded_into,
)
from repro.transcode.pipeline import FrameOutput

__all__ = [
    "MANIFEST_NAME",
    "SegmentRef",
    "LadderSegmentWriter",
    "LadderSegmentReader",
    "frame_psnr",
]

MANIFEST_NAME = "manifest.json"


def frame_psnr(output: FrameOutput) -> float:
    """The serving layer's per-frame PSNR convention (mean over tiles)."""
    if output.record is None or not output.record.tiles:
        return 0.0
    return float(np.mean([t.psnr for t in output.record.tiles]))


@dataclass(frozen=True)
class SegmentRef:
    """One manifest segment entry."""

    uri: str
    first_frame: int
    frames: int
    crc32: str  # hex crc of the whole segment file

    def to_dict(self) -> dict:
        return {
            "uri": self.uri, "first_frame": self.first_frame,
            "frames": self.frames, "crc32": self.crc32,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentRef":
        return cls(
            uri=str(data["uri"]), first_frame=int(data["first_frame"]),
            frames=int(data["frames"]), crc32=str(data["crc32"]),
        )


class _RungState:
    """Per-rung open segment accumulator."""

    def __init__(self, rung_id: int, width: int, height: int, name: str):
        self.rung_id = rung_id
        self.width = width
        self.height = height
        self.name = name
        self.buf = bytearray()
        self.frames_in_segment = 0
        self.first_frame: Optional[int] = None
        self.segments: List[SegmentRef] = []
        self.next_index = 0


class LadderSegmentWriter:
    """Writes rung-tagged :class:`FrameOutput`\\ s as GOP-aligned
    segments plus a playlist manifest.

    ``segment_frames`` (= ``gop * segment_gops``) frames are appended
    to each rung's open segment before it is cut; feed outputs in
    frame order per rung (the order :class:`LadderSession` emits).
    """

    def __init__(
        self,
        out_dir: Path,
        plan: LadderPlan,
        ingest_width: int,
        ingest_height: int,
        gop: int,
        segment_gops: int,
        fps: float = 24.0,
    ):
        if gop < 1 or segment_gops < 1:
            raise ValueError("gop and segment_gops must be >= 1")
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.plan = plan
        self.ingest_width = ingest_width
        self.ingest_height = ingest_height
        self.gop = gop
        self.segment_gops = segment_gops
        self.segment_frames = gop * segment_gops
        self.fps = fps
        self._rungs: Dict[int, _RungState] = {}
        for planned in plan.rungs:
            r = planned.rung
            self._rungs[planned.rung_id] = _RungState(
                planned.rung_id, r.width, r.height, r.name
            )
            (self.out_dir / f"rung{planned.rung_id}").mkdir(exist_ok=True)
        self._closed = False

    # -- writing -------------------------------------------------------
    def add(self, output: FrameOutput) -> None:
        """Append one rung-tagged output to its rung's open segment."""
        if self._closed:
            raise ValueError("writer already finalized")
        try:
            state = self._rungs[output.rung]
        except KeyError:
            raise ValueError(
                f"output tagged rung {output.rung}, which is not in the "
                f"plan ({sorted(self._rungs)})"
            ) from None
        if state.frames_in_segment >= self.segment_frames:
            self._cut(state)
        if state.first_frame is None:
            state.first_frame = output.frame_index
        dropped = output.dropped
        recon = output.reconstruction
        ftype = "" if output.frame_type is None else output.frame_type.value
        if dropped is not None or recon is None:
            encode_encoded_into(
                state.buf, output.frame_index, frame_type="",
                dropped=dropped or "deadline", width=state.width,
                height=state.height, flags=output.rung,
            )
        else:
            encode_encoded_into(
                state.buf, output.frame_index, frame_type=ftype,
                dropped=None, width=recon.shape[1], height=recon.shape[0],
                bits=output.record.bits if output.record else 0,
                psnr=frame_psnr(output), luma=recon, flags=output.rung,
            )
        state.frames_in_segment += 1

    def _cut(self, state: _RungState) -> None:
        if state.frames_in_segment == 0:
            return
        uri = f"rung{state.rung_id}/seg{state.next_index:05d}.seg"
        data = bytes(state.buf)
        (self.out_dir / uri).write_bytes(data)
        state.segments.append(SegmentRef(
            uri=uri,
            first_frame=state.first_frame or 0,
            frames=state.frames_in_segment,
            crc32=f"{zlib.crc32(data) & 0xFFFFFFFF:08x}",
        ))
        state.next_index += 1
        state.buf = bytearray()
        state.frames_in_segment = 0
        state.first_frame = None

    def finalize(self) -> dict:
        """Cut every open segment and write ``manifest.json``."""
        if self._closed:
            raise ValueError("writer already finalized")
        self._closed = True
        for state in self._rungs.values():
            self._cut(state)
        manifest = {
            "version": 1,
            "ingest": {
                "width": self.ingest_width, "height": self.ingest_height,
                "fps": self.fps, "gop": self.gop,
            },
            "segment_gops": self.segment_gops,
            "segment_frames": self.segment_frames,
            "complexity": self.plan.complexity,
            "rungs": [
                {
                    "id": s.rung_id, "width": s.width, "height": s.height,
                    "name": s.name,
                    "segments": [ref.to_dict() for ref in s.segments],
                }
                for s in self._rungs.values()
            ],
            "pruned": [
                {"id": rung_id, "predicted_gain_db": gain}
                for rung_id, gain in self.plan.pruned
            ],
        }
        path = self.out_dir / MANIFEST_NAME
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        return manifest


class LadderSegmentReader:
    """Plays back a segmented ladder directory through the protocol
    decoder, verifying both checksum layers."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        self.manifest = json.loads(manifest_path.read_text())
        self.rungs: Dict[int, dict] = {
            int(r["id"]): r for r in self.manifest["rungs"]
        }

    def segment_refs(self, rung_id: int) -> List[SegmentRef]:
        return [
            SegmentRef.from_dict(d)
            for d in self.rungs[rung_id]["segments"]
        ]

    def read_segment(self, rung_id: int, index: int) -> List[Encoded]:
        """Decode one segment file; every reference must resolve and
        both the file CRC and each message CRC must verify."""
        ref = self.segment_refs(rung_id)[index]
        path = self.directory / ref.uri
        data = path.read_bytes()
        crc = f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"
        if crc != ref.crc32:
            raise ProtocolError(
                f"segment {ref.uri} crc {crc} != manifest {ref.crc32}"
            )
        messages = MessageDecoder().feed(data)
        if len(messages) != ref.frames:
            raise ProtocolError(
                f"segment {ref.uri} holds {len(messages)} frames, "
                f"manifest says {ref.frames}"
            )
        for msg in messages:
            if not isinstance(msg, Encoded) or msg.rung != rung_id:
                raise ProtocolError(
                    f"segment {ref.uri} carries a foreign message {msg!r}"
                )
        return messages

    def iter_rung(self, rung_id: int):
        """Every ENCODED message of one rung, in frame order."""
        for i in range(len(self.segment_refs(rung_id))):
            yield from self.read_segment(rung_id, i)
