"""Observability: process-local metrics and span tracing.

One registry and one tracer per process, reachable from anywhere via
:func:`get_registry` / :func:`get_tracer`.  Metrics are always on
(counter updates are cheap dictionary arithmetic); the tracer is off by
default and every instrumentation site degrades to a single branch
while it stays off, so enabling observability is a run-time decision
(``repro serve --trace-out ...``) rather than a build-time one.

Tests and scoped runs swap in fresh instances with :func:`scoped`::

    with scoped() as (registry, tracer):
        tracer.enable()
        ...  # run instrumented code
        assert registry.value("repro_frames_encoded_total", mode="proposed")

Worker processes of the tile pool inherit the parent's globals on
fork; they report their own deltas through fresh local registries that
the parent merges on join (see :mod:`repro.parallel.executor`), so
nothing here needs cross-process locking.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.observability.metrics import (
    DEFAULT_TIME_BUCKETS,
    HistogramValue,
    MetricsRegistry,
    format_metrics,
)
from repro.observability.tracing import NULL_SPAN, SpanRecord, SpanTracer

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "HistogramValue",
    "MetricsRegistry",
    "NULL_SPAN",
    "SpanRecord",
    "SpanTracer",
    "disable_tracing",
    "enable_tracing",
    "format_metrics",
    "get_registry",
    "get_tracer",
    "reset",
    "scoped",
]

_registry = MetricsRegistry()
_tracer = SpanTracer()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def get_tracer() -> SpanTracer:
    """The process-wide span tracer (disabled until enabled)."""
    return _tracer


def enable_tracing(capacity: Optional[int] = None) -> SpanTracer:
    """Enable the global tracer, optionally resizing its ring buffer."""
    global _tracer
    if capacity is not None and capacity != _tracer.capacity:
        _tracer = SpanTracer(capacity=capacity, enabled=True)
    else:
        _tracer.enable()
    return _tracer


def disable_tracing() -> None:
    _tracer.disable()


def reset() -> None:
    """Fresh global registry and (disabled) tracer."""
    global _registry, _tracer
    _registry = MetricsRegistry()
    _tracer = SpanTracer()


@contextmanager
def scoped(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> Iterator[Tuple[MetricsRegistry, SpanTracer]]:
    """Temporarily replace the global registry/tracer (test isolation)."""
    global _registry, _tracer
    saved = (_registry, _tracer)
    _registry = registry if registry is not None else MetricsRegistry()
    _tracer = tracer if tracer is not None else SpanTracer()
    try:
        yield _registry, _tracer
    finally:
        _registry, _tracer = saved
