"""Low-overhead span tracer.

Spans are nestable timed regions recorded on a bounded ring buffer;
events are instantaneous records on the same buffer.  Clocks are
``time.perf_counter`` (monotonic), never wall time, so traces are
immune to clock steps and carry no absolute timestamps.

The tracer is built to be free when off: every instrumentation site
goes through :meth:`SpanTracer.span` / :meth:`SpanTracer.event`, which
when ``enabled`` is ``False`` return a shared no-op context manager /
return immediately — one attribute check, no allocation.  The bench
acceptance gate (codec/motion throughput within 3% of the previous
BENCH record with tracing disabled) holds the instrumented hot path to
that budget.

Records export to JSONL (one JSON object per line) via
:meth:`SpanTracer.to_jsonl`; each line carries ``seq`` (monotonic id,
assigned at span *entry* so it encodes program order), ``kind``
(``span``/``event``), ``name``, ``start_s``/``duration_s`` (relative
to the tracer epoch), ``depth``, ``parent`` (enclosing span's seq or
``None``) and free-form ``attrs``.  Spans append on *exit*, so a
parent span appears after its children; consumers that want entry
order sort by ``seq``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

__all__ = ["SpanRecord", "SpanTracer", "NULL_SPAN"]


@dataclass
class SpanRecord:
    """One completed span or point event."""

    seq: int
    kind: str  # "span" | "event"
    name: str
    start_s: float
    duration_s: float
    depth: int
    parent: Optional[int]
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


#: The singleton no-op span: returned by every ``span()`` call while
#: the tracer is disabled, so tracing costs one branch and zero
#: allocations when off.
NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager of one live span."""

    __slots__ = ("_tracer", "_name", "_attrs", "_seq", "_start", "_parent",
                 "_depth")

    def __init__(self, tracer: "SpanTracer", name: str,
                 attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self._seq = next(tracer._seq)
        self._parent = stack[-1][0] if stack else None
        self._depth = len(stack)
        stack.append((self._seq, self._name))
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1][0] == self._seq:
            stack.pop()
        tracer._append(SpanRecord(
            seq=self._seq,
            kind="span",
            name=self._name,
            start_s=self._start - tracer._epoch,
            duration_s=end - self._start,
            depth=self._depth,
            parent=self._parent,
            attrs=self._attrs,
        ))


class SpanTracer:
    """Ring-buffer span tracer; a no-op while ``enabled`` is False."""

    def __init__(self, capacity: int = 65536, enabled: bool = False):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self._records: Deque[SpanRecord] = deque(maxlen=capacity)
        self._seq = itertools.count()
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- internals -----------------------------------------------------
    def _stack(self) -> List[tuple]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _append(self, record: SpanRecord) -> None:
        self._records.append(record)

    # -- recording API -------------------------------------------------
    def span(self, name: str, **attrs: object):
        """Context manager timing a region; nested spans record their
        depth and enclosing span."""
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instantaneous event at the current nesting."""
        if not self.enabled:
            return
        stack = self._stack()
        self._append(SpanRecord(
            seq=next(self._seq),
            kind="event",
            name=name,
            start_s=time.perf_counter() - self._epoch,
            duration_s=0.0,
            depth=len(stack),
            parent=stack[-1][0] if stack else None,
            attrs=attrs,
        ))

    def record_span(self, name: str, duration_s: float,
                    **attrs: object) -> None:
        """Record an externally-measured duration as a child span of
        the current context (used when the measurement happened where
        no tracer was reachable, e.g. inside a pool worker)."""
        if not self.enabled:
            return
        stack = self._stack()
        now = time.perf_counter() - self._epoch
        self._append(SpanRecord(
            seq=next(self._seq),
            kind="span",
            name=name,
            start_s=max(0.0, now - duration_s),
            duration_s=duration_s,
            depth=len(stack),
            parent=stack[-1][0] if stack else None,
            attrs=attrs,
        ))

    # -- lifecycle / export --------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._records.clear()
        self._seq = itertools.count()
        self._local = threading.local()
        self._epoch = time.perf_counter()

    def records(self) -> List[SpanRecord]:
        """Buffered records, oldest first (completion order)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def iter_dicts(self) -> Iterator[dict]:
        for record in self.records():
            yield record.to_dict()

    def to_jsonl(self, path: str) -> int:
        """Write the buffer as JSONL; returns the line count."""
        n = 0
        with open(path, "w") as fh:
            for record in self.iter_dicts():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                n += 1
        return n
