"""Process-local metrics registry.

Three metric kinds, all keyed by a label tuple:

* **counter** — monotonically increasing float;
* **gauge** — last-write-wins float;
* **histogram** — fixed upper-bound buckets (cumulative on exposition,
  per-bucket internally) plus an exact running sum/count.

Registries are *mergeable*: :meth:`MetricsRegistry.merge` folds another
registry (or its :meth:`~MetricsRegistry.to_dict` snapshot) into this
one — counters and histogram bins add, gauges take the other side's
value when present.  That is how per-worker snapshots from the tile
process pool come back to the parent
(:mod:`repro.parallel.executor`), and the operation is commutative,
associative and count/sum-preserving (property-tested in
``tests/test_observability.py``).

Exposition formats: :meth:`~MetricsRegistry.to_dict` (JSON) and
:meth:`~MetricsRegistry.to_prometheus_text` (Prometheus text format
0.0.4).  The module is stdlib-only on purpose: importing it must never
cost anything in the hot path.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "HistogramValue",
    "MetricsRegistry",
    "format_metrics",
]

#: Default histogram buckets for span/CPU-time observations (seconds).
#: Geometric-ish ladder from 10 us to 10 s; values above the last bound
#: land in the implicit +Inf bucket.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    1e-1, 3e-1, 1.0, 3.0, 10.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class HistogramValue:
    """One fixed-bucket histogram sample (a single label tuple).

    ``bucket_counts`` has ``len(buckets) + 1`` entries: one per finite
    upper bound plus the overflow (+Inf) bucket.  An observation lands
    in the first bucket whose upper bound is ``>= value``.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS):
        b = tuple(float(x) for x in buckets)
        if not b:
            raise ValueError("need at least one bucket bound")
        if any(not math.isfinite(x) for x in b):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        if list(b) != sorted(set(b)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = b
        self.bucket_counts = [0] * (len(b) + 1)
        self.sum = 0.0
        self.count = 0

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)

    def observe(self, value: float) -> None:
        self.bucket_counts[self._bucket_index(value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "HistogramValue") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.sum += other.sum
        self.count += other.count

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (linear interpolation inside the
        containing bucket, Prometheus-style).  ``None`` when empty; an
        observation landing in the overflow bucket clamps to the last
        finite bound."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, n in zip(self.buckets, self.bucket_counts):
            if n > 0 and cumulative + n >= target:
                fraction = (target - cumulative) / n
                return lower + (bound - lower) * fraction
            cumulative += n
            lower = bound
        return self.buckets[-1]

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramValue":
        hist = cls(buckets=data["buckets"])
        counts = [int(c) for c in data["bucket_counts"]]
        if len(counts) != len(hist.bucket_counts):
            raise ValueError("bucket count length mismatch")
        if any(c < 0 for c in counts) or int(data["count"]) < 0:
            raise ValueError("negative histogram counts")
        hist.bucket_counts = counts
        hist.sum = float(data["sum"])
        hist.count = int(data["count"])
        return hist


class _Family:
    """All samples of one metric name (one kind, one bucket layout)."""

    __slots__ = ("name", "kind", "help", "buckets", "samples")

    def __init__(self, name: str, kind: str, help_text: str = "",
                 buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = tuple(buckets) if buckets is not None else None
        self.samples: Dict[LabelKey, Union[float, HistogramValue]] = {}


class MetricsRegistry:
    """Thread-safe, process-local registry of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}

    # -- family management ---------------------------------------------
    def _family(self, name: str, kind: str, help_text: str = "",
                buckets: Optional[Sequence[float]] = None) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name, kind, help_text, buckets)
            self._families[name] = fam
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, "
                f"not {kind}"
            )
        if help_text and not fam.help:
            fam.help = help_text
        return fam

    # -- writes --------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, help: str = "",
            **labels: object) -> None:
        """Add ``value`` to a counter (created on first use)."""
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key({k: v for k, v in labels.items()})
        with self._lock:
            fam = self._family(name, "counter", help)
            fam.samples[key] = float(fam.samples.get(key, 0.0)) + value

    def set_gauge(self, name: str, value: float, help: str = "",
                  **labels: object) -> None:
        """Set a gauge to ``value`` (last write wins)."""
        key = _label_key({k: v for k, v in labels.items()})
        with self._lock:
            fam = self._family(name, "gauge", help)
            fam.samples[key] = float(value)

    def observe(self, name: str, value: float, help: str = "",
                buckets: Optional[Sequence[float]] = None,
                **labels: object) -> None:
        """Record one observation into a fixed-bucket histogram."""
        key = _label_key({k: v for k, v in labels.items()})
        with self._lock:
            fam = self._family(name, "histogram", help,
                               buckets or DEFAULT_TIME_BUCKETS)
            hist = fam.samples.get(key)
            if hist is None:
                hist = HistogramValue(fam.buckets or DEFAULT_TIME_BUCKETS)
                fam.samples[key] = hist
            assert isinstance(hist, HistogramValue)
            hist.observe(value)

    # -- reads ---------------------------------------------------------
    def value(self, name: str, **labels: object) -> Optional[
            Union[float, HistogramValue]]:
        """The sample for ``name``/``labels``; ``None`` when absent."""
        key = _label_key({k: v for k, v in labels.items()})
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                return None
            return fam.samples.get(key)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

    # -- merge ---------------------------------------------------------
    def merge(self, other: Union["MetricsRegistry", dict]) -> None:
        """Fold another registry (or snapshot dict) into this one.

        Counters and histogram bins add; gauges take the incoming
        value.  Kind or bucket-layout conflicts raise ``ValueError``
        rather than silently corrupting a series.
        """
        if isinstance(other, MetricsRegistry):
            other = other.to_dict()
        for metric in other.get("metrics", []):
            name = metric["name"]
            kind = metric["kind"]
            with self._lock:
                fam = self._family(name, kind, metric.get("help", ""),
                                   metric.get("buckets"))
                for sample in metric["samples"]:
                    key = _label_key(sample.get("labels", {}))
                    if kind == "counter":
                        fam.samples[key] = (
                            float(fam.samples.get(key, 0.0))
                            + float(sample["value"])
                        )
                    elif kind == "gauge":
                        fam.samples[key] = float(sample["value"])
                    elif kind == "histogram":
                        incoming = HistogramValue.from_dict(sample["value"])
                        current = fam.samples.get(key)
                        if current is None:
                            fam.samples[key] = incoming
                        else:
                            assert isinstance(current, HistogramValue)
                            current.merge(incoming)
                    else:
                        raise ValueError(f"unknown metric kind {kind!r}")

    # -- exposition ----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot (schema version 1).

        Families and samples are deterministically ordered so two
        equal registries serialize byte-identically.
        """
        metrics = []
        with self._lock:
            for name in sorted(self._families):
                fam = self._families[name]
                samples = []
                for key in sorted(fam.samples):
                    raw = fam.samples[key]
                    value = (raw.to_dict()
                             if isinstance(raw, HistogramValue) else raw)
                    samples.append({"labels": dict(key), "value": value})
                entry = {
                    "name": fam.name,
                    "kind": fam.kind,
                    "help": fam.help,
                    "samples": samples,
                }
                if fam.buckets is not None:
                    entry["buckets"] = list(fam.buckets)
                metrics.append(entry)
        return {"version": 1, "metrics": metrics}

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        reg = cls()
        reg.merge(data)
        return reg

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition (format 0.0.4)."""
        lines: List[str] = []
        snapshot = self.to_dict()
        for fam in snapshot["metrics"]:
            name, kind = fam["name"], fam["kind"]
            if fam.get("help"):
                lines.append(f"# HELP {name} {fam['help']}")
            lines.append(f"# TYPE {name} {kind}")
            for sample in fam["samples"]:
                labels = sample["labels"]
                if kind in ("counter", "gauge"):
                    lines.append(
                        f"{name}{_prom_labels(labels)} "
                        f"{_prom_num(sample['value'])}"
                    )
                else:
                    hist = sample["value"]
                    cumulative = 0
                    bounds = list(hist["buckets"]) + [math.inf]
                    for bound, count in zip(bounds, hist["bucket_counts"]):
                        cumulative += count
                        le = "+Inf" if math.isinf(bound) else _prom_num(bound)
                        lines.append(
                            f"{name}_bucket"
                            f"{_prom_labels(labels, le=le)} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_prom_labels(labels)} "
                        f"{_prom_num(hist['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_prom_labels(labels)} {hist['count']}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_num(value: float) -> str:
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _prom_labels(labels: Dict[str, str], **extra: str) -> str:
    merged = dict(labels)
    merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_prom_escape(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _prom_escape(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _counter_sum(fams: Dict[str, dict], name: str, **match: str) -> float:
    """Sum a counter family's samples whose labels contain ``match``."""
    fam = fams.get(name)
    if fam is None:
        return 0.0
    total = 0.0
    for sample in fam["samples"]:
        labels = sample.get("labels", {})
        if all(labels.get(k) == v for k, v in match.items()):
            total += float(sample["value"])
    return total


def _counter_by_label(fams: Dict[str, dict], name: str,
                      label: str) -> Dict[str, float]:
    """Per-label-value sums of one counter family (empty if absent)."""
    fam = fams.get(name)
    if fam is None:
        return {}
    out: Dict[str, float] = {}
    for sample in fam["samples"]:
        key = sample.get("labels", {}).get(label)
        if key is not None:
            out[key] = out.get(key, 0.0) + float(sample["value"])
    return out


def _gauge_value(fams: Dict[str, dict], name: str,
                 default: float = 0.0) -> float:
    fam = fams.get(name)
    if fam is None or not fam["samples"]:
        return default
    return float(fam["samples"][-1]["value"])


def serving_summary(data: dict) -> Optional[Dict[str, object]]:
    """Digest of the ``repro_serving_*`` families of a snapshot.

    ``None`` when the snapshot contains no serving metrics (e.g. it was
    written by the offline ``repro serve`` simulation).
    """
    fams = {f["name"]: f for f in data.get("metrics", [])}
    if not any(n.startswith("repro_serving_") for n in fams):
        return None
    latency = HistogramValue()
    fam = fams.get("repro_serving_frame_latency_seconds")
    if fam is not None:
        for sample in fam["samples"]:
            latency.merge(HistogramValue.from_dict(sample["value"]))
    encoded = _counter_sum(fams, "repro_serving_frames_encoded_total")
    misses = _counter_sum(fams, "repro_serving_deadline_miss_total")
    adm = "repro_serving_admission_total"
    return {
        "sessions_accepted": _counter_sum(fams, adm, decision="accept"),
        "sessions_parked": _counter_sum(fams, adm, decision="park"),
        "sessions_rejected": _counter_sum(fams, adm, decision="reject"),
        "frames_encoded": encoded,
        "frames_dropped": _counter_sum(
            fams, "repro_serving_frames_dropped_total"
        ),
        "protocol_errors": _counter_sum(
            fams, "repro_serving_protocol_errors_total"
        ),
        "latency_p50_s": latency.quantile(0.50),
        "latency_p95_s": latency.quantile(0.95),
        "deadline_misses": misses,
        "deadline_miss_rate": (misses / encoded) if encoded else None,
        "resumes": _counter_sum(fams, "repro_serving_resumes_total"),
        "watchdog_fires": _counter_sum(
            fams, "repro_serving_watchdog_fires_total"
        ),
        "watchdog_replans": _counter_sum(
            fams, "repro_serving_watchdog_replans_total"
        ),
        "journal_gops": _counter_sum(
            fams, "repro_serving_journal_gops_total"
        ),
        "journal_corruptions": _counter_sum(
            fams, "repro_serving_journal_corruptions_total"
        ),
        "sessions_parked_for_resume": _counter_sum(
            fams, "repro_serving_sessions_parked_total"
        ),
        "drains": _counter_sum(fams, "repro_serving_drains_total"),
        # Fleet counters.  ``_counter_sum`` yields 0.0 for absent families,
        # so snapshots written before the multi-worker fleet existed still
        # summarise cleanly with stable zero defaults.
        "sessions_adopted": _counter_sum(
            fams, "repro_serving_sessions_adopted_total"
        ),
        "lease_conflicts": _counter_sum(
            fams, "repro_serving_lease_conflicts_total"
        ),
        "worker_deaths": _counter_sum(
            fams, "repro_serving_worker_deaths_total"
        ),
        "worker_restarts": _counter_sum(
            fams, "repro_serving_worker_restarts_total"
        ),
        "worker_breaker_trips": _counter_sum(
            fams, "repro_serving_worker_breaker_trips_total"
        ),
        "fleet_accepted": _counter_sum(
            fams, "repro_serving_fleet_admission_total", decision="accept"
        ),
        "fleet_parked": _counter_sum(
            fams, "repro_serving_fleet_admission_total", decision="park"
        ),
        "fleet_rejected": _counter_sum(
            fams, "repro_serving_fleet_admission_total", decision="reject"
        ),
        # Tenant-policy counters (PR 9): every key below defaults to
        # zero/empty, so a pre-policy snapshot summarises unchanged.
        "tenant_sessions": _counter_by_label(
            fams, "repro_serving_tenant_sessions_total", "tenant"
        ),
        "tenant_energy_joules": _counter_by_label(
            fams, "repro_policy_energy_joules_total", "tenant"
        ),
        "policy_rejects": _counter_sum(
            fams, "repro_serving_policy_rejects_total"
        ),
        "policy_drops": _counter_sum(
            fams, "repro_serving_frames_dropped_total", reason="policy"
        ),
        "entitlement_blocks": _counter_sum(
            fams, "repro_serving_tenant_entitlement_total"
        ),
        "brownout_sheds": _counter_sum(
            fams, "repro_policy_brownout_transitions_total", kind="shed"
        ),
        "brownout_readmits": _counter_sum(
            fams, "repro_policy_brownout_transitions_total", kind="readmit"
        ),
        "cap_violations": _counter_sum(
            fams, "repro_policy_cap_violations_total"
        ),
        "energy_window_watts": _gauge_value(
            fams, "repro_policy_energy_window_watts"
        ),
        "tenants_shed": _gauge_value(fams, "repro_policy_tenants_shed"),
        # Storage-durability counters (PR 10): absent families default
        # to zero and the gauge to healthy, so older snapshots (and a
        # journal-less server) summarise unchanged.
        "durability": _gauge_value(
            fams, "repro_serving_durability", default=1.0
        ),
        "durability_brownouts": _counter_sum(
            fams, "repro_serving_durability_brownouts_total"
        ),
        "durability_readmits": _counter_sum(
            fams, "repro_serving_durability_readmits_total"
        ),
        "tombstone_rejects": _counter_sum(
            fams, "repro_serving_tombstone_rejects_total"
        ),
        "journal_retries": _counter_sum(
            fams, "repro_serving_journal_retries_total"
        ),
    }


def _fmt_latency(value: Optional[float]) -> str:
    return f"{value * 1e3:.1f} ms" if value is not None else "n/a"


def format_metrics(data: dict) -> str:
    """Human-readable rendering of a :meth:`MetricsRegistry.to_dict`
    snapshot (the ``repro metrics`` pretty-printer)."""
    lines: List[str] = []
    for fam in data.get("metrics", []):
        lines.append(f"{fam['name']}  [{fam['kind']}]"
                     + (f"  — {fam['help']}" if fam.get("help") else ""))
        for sample in fam["samples"]:
            labels = sample.get("labels", {})
            tag = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            tag = f"{{{tag}}}" if tag else ""
            value = sample["value"]
            if isinstance(value, dict):  # histogram
                mean = value["sum"] / value["count"] if value["count"] else 0.0
                lines.append(
                    f"  {tag:<40} count={value['count']} "
                    f"sum={value['sum']:.6g} mean={mean:.6g}"
                )
            else:
                lines.append(f"  {tag:<40} {value:g}")
    serving = serving_summary(data)
    if serving is not None:
        miss_rate = serving["deadline_miss_rate"]
        lines += [
            "",
            "serving",
            f"  sessions     : accepted {serving['sessions_accepted']:g}, "
            f"parked {serving['sessions_parked']:g}, "
            f"rejected {serving['sessions_rejected']:g}",
            f"  frames       : encoded {serving['frames_encoded']:g}, "
            f"dropped {serving['frames_dropped']:g}",
            f"  latency      : p50 {_fmt_latency(serving['latency_p50_s'])}, "
            f"p95 {_fmt_latency(serving['latency_p95_s'])}",
            f"  deadline miss: {serving['deadline_misses']:g} "
            + (f"({miss_rate:.1%})" if miss_rate is not None else "(n/a)"),
            f"  protocol errs: {serving['protocol_errors']:g}",
            f"  recovery     : resumes {serving['resumes']:g}, "
            f"watchdog fires {serving['watchdog_fires']:g} "
            f"(replans {serving['watchdog_replans']:g}), "
            f"parked for resume {serving['sessions_parked_for_resume']:g}, "
            f"drains {serving['drains']:g}",
            f"  journal      : GOPs {serving['journal_gops']:g}, "
            f"corruptions {serving['journal_corruptions']:g}",
            f"  durability   : "
            + ("healthy" if serving["durability"] >= 1.0 else "BROWNOUT")
            + f", brownouts {serving['durability_brownouts']:g}, "
            f"readmits {serving['durability_readmits']:g}, "
            f"tombstone rejects {serving['tombstone_rejects']:g}, "
            f"write retries {serving['journal_retries']:g}",
            f"  fleet        : adopted {serving['sessions_adopted']:g}, "
            f"lease conflicts {serving['lease_conflicts']:g}, "
            f"worker deaths {serving['worker_deaths']:g}, "
            f"restarts {serving['worker_restarts']:g}, "
            f"breaker trips {serving['worker_breaker_trips']:g}",
            f"  policy       : rejects {serving['policy_rejects']:g}, "
            f"drops {serving['policy_drops']:g}, entitlement blocks "
            f"{serving['entitlement_blocks']:g}, sheds "
            f"{serving['brownout_sheds']:g}, readmits "
            f"{serving['brownout_readmits']:g}, cap violations "
            f"{serving['cap_violations']:g}",
            f"  energy       : window {serving['energy_window_watts']:g} W, "
            f"tenants shed {serving['tenants_shed']:g}",
        ]
        tenants = sorted(
            set(serving["tenant_sessions"])
            | set(serving["tenant_energy_joules"])
        )
        for name in tenants:
            lines.append(
                f"  tenant {name:>6s}: sessions "
                f"{serving['tenant_sessions'].get(name, 0.0):g}, energy "
                f"{serving['tenant_energy_joules'].get(name, 0.0):.3g} J"
            )
    return "\n".join(lines)
