"""Declarative per-tenant serving policy documents.

A policy document is plain YAML or JSON describing *intent* — who the
tenants are, how important they are, what quality they must not fall
below, and how much of the shared power envelope they may draw::

    version: 1
    power_cap_w: 140
    energy_window_s: 2.0
    default_tenant: general
    brownout:
      readmit_fraction: 0.8
      readmit_after_checks: 3
    dvfs:
      min_ghz: 2.9
      max_ghz: 3.6
    tenants:
      - name: emergency
        tier: emergency
        weight: 4
        min_psnr_db: 36.0
        max_deadline_miss_rate: 0.01
        max_rungs: 3
      - name: general
        tier: routine
        weight: 2
      - name: archive
        tier: archival
        weight: 1
        max_rungs: 1
        power_budget_w: 40

Nothing in here is executable — the document is *compiled* into
concrete knobs (admission weights, shed ordering, degradation-ladder
caps, DVFS bounds) by :mod:`repro.policy.compiler`.

Validation is strict and errors are actionable: every
:class:`PolicyError` names the offending key path
(``tenants[2].tier``), what was found, and what would have been
accepted — mirroring the style of the thread-backend executor errors.
Unknown keys are rejected (a typo must not silently disable a QoS
floor) with a did-you-mean suggestion.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "PRIORITY_TIERS",
    "BrownoutSpec",
    "DvfsSpec",
    "PolicyDocument",
    "PolicyError",
    "TenantSpec",
    "load_policy_file",
    "parse_policy",
]

#: Named priority tiers, most important first.  Lower rank = higher
#: priority; brownout sheds strictly from the highest rank downward
#: (archival first, emergency last — and the top occupied tier is never
#: shed while a lower tier remains).
PRIORITY_TIERS: Dict[str, int] = {
    "emergency": 0,   # live telemedicine, OR feeds
    "urgent": 1,      # same-day diagnostics
    "routine": 2,     # scheduled clinical review
    "batch": 3,       # research / bulk re-encodes
    "archival": 4,    # cold-storage transcodes, fully preemptible
}

#: Degradation-ladder rung names accepted by ``max_degradation``
#: (values of :class:`repro.resilience.degradation.DegradationLevel`).
DEGRADATION_NAMES = ("none", "qp_bump", "window_shrink", "tile_merge",
                    "frame_drop")


class PolicyError(ValueError):
    """A policy document failed validation.

    ``path`` names the offending key (``tenants[1].weight``); the
    message always states what was found and what is accepted.
    """

    def __init__(self, path: str, message: str,
                 source: Optional[str] = None):
        self.path = path
        self.source = source
        where = f"{source}: " if source else ""
        super().__init__(f"{where}{path}: {message}")


def _suggest(key: str, known: Sequence[str]) -> str:
    close = difflib.get_close_matches(key, known, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    return f"unknown key{hint}; accepted keys: {', '.join(sorted(known))}"


def _require_mapping(obj: object, path: str, source: Optional[str]) -> Mapping:
    if not isinstance(obj, Mapping):
        raise PolicyError(
            path, f"expected a mapping, got {type(obj).__name__}", source
        )
    return obj


def _check_keys(obj: Mapping, allowed: Sequence[str], path: str,
                source: Optional[str]) -> None:
    for key in obj:
        if key not in allowed:
            raise PolicyError(
                f"{path}.{key}" if path else str(key),
                _suggest(str(key), allowed), source,
            )


def _number(obj: Mapping, key: str, path: str, source: Optional[str],
            default: Optional[float] = None,
            minimum: Optional[float] = None,
            maximum: Optional[float] = None,
            allow_none: bool = False) -> Optional[float]:
    if key not in obj or obj[key] is None:
        if key in obj and obj[key] is None and allow_none:
            return None
        if key not in obj:
            return default
        raise PolicyError(f"{path}.{key}", "must not be null", source)
    value = obj[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise PolicyError(
            f"{path}.{key}",
            f"expected a number, got {value!r}", source,
        )
    value = float(value)
    if minimum is not None and value < minimum:
        raise PolicyError(
            f"{path}.{key}",
            f"must be >= {minimum:g}, got {value:g} "
            "(negative budgets cannot be enforced)", source,
        )
    if maximum is not None and value > maximum:
        raise PolicyError(
            f"{path}.{key}",
            f"must be <= {maximum:g}, got {value:g}", source,
        )
    return value


@dataclass(frozen=True)
class TenantSpec:
    """Declared intent for one tenant."""

    name: str
    #: Priority tier name (key of :data:`PRIORITY_TIERS`).
    tier: str = "routine"
    #: Relative admission weight — the tenant's share of the slot
    #: capacity is ``weight / sum(weights)``.
    weight: float = 1.0
    #: QoS floor: minimum acceptable PSNR.  Compiles into a cap on the
    #: degradation ladder (a stream this tenant owns is never lightened
    #: below its floor).  ``None`` = no floor.
    min_psnr_db: Optional[float] = None
    #: Deadline class: acceptable miss rate.  Compiles into the
    #: escalation aggressiveness of the per-stream ladder.
    max_deadline_miss_rate: float = 0.1
    #: Rendition-ladder entitlement: rungs beyond this are dropped at
    #: admission before any capacity math runs (0 = unlimited).
    max_rungs: int = 0
    #: Hard ceiling of the degradation ladder for this tenant's
    #: streams (name from :data:`DEGRADATION_NAMES`).
    max_degradation: str = "frame_drop"
    #: Per-tenant power budget (W) over the policy's energy window;
    #: ``None`` = bounded only by the shared envelope.
    power_budget_w: Optional[float] = None

    @property
    def rank(self) -> int:
        return PRIORITY_TIERS[self.tier]


@dataclass(frozen=True)
class BrownoutSpec:
    """Hysteresis of the brownout (energy-cap) response."""

    #: Windowed power must fall below ``cap * readmit_fraction`` before
    #: a shed tenant is readmitted.
    readmit_fraction: float = 0.8
    #: Consecutive clear observations required before readmission.
    readmit_after_checks: int = 3


@dataclass(frozen=True)
class DvfsSpec:
    """Frequency bounds the allocator may use (GHz; ``None`` = free)."""

    min_ghz: Optional[float] = None
    max_ghz: Optional[float] = None


@dataclass(frozen=True)
class PolicyDocument:
    """A validated policy document (pure data, pre-compilation)."""

    version: int = 1
    #: Shared power envelope (W) over ``energy_window_s``; ``None`` =
    #: uncapped (the energy ledger still runs for observability).
    power_cap_w: Optional[float] = None
    #: Sliding-window length of the energy ledger.
    energy_window_s: float = 2.0
    default_tenant: str = "default"
    brownout: BrownoutSpec = field(default_factory=BrownoutSpec)
    dvfs: DvfsSpec = field(default_factory=DvfsSpec)
    tenants: Tuple[TenantSpec, ...] = ()
    #: Where this document came from (diagnostics only).
    source: Optional[str] = None

    def tenant(self, name: str) -> TenantSpec:
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise KeyError(name)


_TOP_KEYS = ("version", "power_cap_w", "energy_window_s", "default_tenant",
             "brownout", "dvfs", "tenants")
_TENANT_KEYS = ("name", "tier", "weight", "min_psnr_db",
                "max_deadline_miss_rate", "max_rungs", "max_degradation",
                "power_budget_w")
_BROWNOUT_KEYS = ("readmit_fraction", "readmit_after_checks")
_DVFS_KEYS = ("min_ghz", "max_ghz")


def _parse_tenant(obj: object, path: str,
                  source: Optional[str]) -> TenantSpec:
    obj = _require_mapping(obj, path, source)
    _check_keys(obj, _TENANT_KEYS, path, source)
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        raise PolicyError(
            f"{path}.name",
            f"every tenant needs a non-empty string name, got {name!r}",
            source,
        )
    tier = obj.get("tier", "routine")
    if tier not in PRIORITY_TIERS:
        raise PolicyError(
            f"{path}.tier",
            f"unknown tier {tier!r}; accepted tiers (most important "
            f"first): {', '.join(PRIORITY_TIERS)}", source,
        )
    max_degradation = obj.get("max_degradation", "frame_drop")
    if max_degradation not in DEGRADATION_NAMES:
        raise PolicyError(
            f"{path}.max_degradation",
            f"unknown ladder rung {max_degradation!r}; accepted rungs "
            f"(mildest first): {', '.join(DEGRADATION_NAMES)}", source,
        )
    weight = _number(obj, "weight", path, source, default=1.0)
    if weight is not None and weight <= 0:
        raise PolicyError(
            f"{path}.weight",
            f"must be > 0, got {weight:g} (a zero-weight tenant could "
            "never be admitted; remove it instead)", source,
        )
    max_rungs = obj.get("max_rungs", 0)
    if isinstance(max_rungs, bool) or not isinstance(max_rungs, int):
        raise PolicyError(
            f"{path}.max_rungs",
            f"expected an integer, got {max_rungs!r}", source,
        )
    if max_rungs < 0:
        raise PolicyError(
            f"{path}.max_rungs",
            f"must be >= 0 (0 = unlimited), got {max_rungs}", source,
        )
    return TenantSpec(
        name=name,
        tier=tier,
        weight=float(weight),
        min_psnr_db=_number(obj, "min_psnr_db", path, source,
                            default=None, minimum=0.0, allow_none=True),
        max_deadline_miss_rate=_number(
            obj, "max_deadline_miss_rate", path, source,
            default=0.1, minimum=0.0, maximum=1.0,
        ),
        max_rungs=max_rungs,
        max_degradation=max_degradation,
        power_budget_w=_number(obj, "power_budget_w", path, source,
                               default=None, minimum=0.0, allow_none=True),
    )


def parse_policy(obj: object, source: Optional[str] = None) -> PolicyDocument:
    """Validate a decoded document into a :class:`PolicyDocument`.

    Raises :class:`PolicyError` with key-path context on any schema
    violation.
    """
    obj = _require_mapping(obj, "<document>", source)
    _check_keys(obj, _TOP_KEYS, "", source)
    version = obj.get("version", 1)
    if not isinstance(version, int) or isinstance(version, bool):
        raise PolicyError(
            "version", f"expected an integer, got {version!r}", source
        )
    if version != 1:
        raise PolicyError(
            "version",
            f"unsupported policy version {version}; this build "
            "understands version 1", source,
        )
    tenants_obj = obj.get("tenants")
    if not isinstance(tenants_obj, (list, tuple)) or not tenants_obj:
        raise PolicyError(
            "tenants",
            "expected a non-empty list of tenant mappings "
            f"(got {type(tenants_obj).__name__})", source,
        )
    tenants: List[TenantSpec] = []
    seen: Dict[str, int] = {}
    for i, entry in enumerate(tenants_obj):
        spec = _parse_tenant(entry, f"tenants[{i}]", source)
        if spec.name in seen:
            raise PolicyError(
                f"tenants[{i}].name",
                f"duplicate tenant {spec.name!r} "
                f"(first declared at tenants[{seen[spec.name]}])", source,
            )
        seen[spec.name] = i
        tenants.append(spec)

    default_tenant = obj.get("default_tenant", tenants[0].name)
    if not isinstance(default_tenant, str):
        raise PolicyError(
            "default_tenant",
            f"expected a tenant name, got {default_tenant!r}", source,
        )
    if default_tenant not in seen:
        raise PolicyError(
            "default_tenant",
            f"references unknown tenant {default_tenant!r}; declared "
            f"tenants: {', '.join(seen)}", source,
        )

    brownout_obj = obj.get("brownout", {})
    brownout_obj = _require_mapping(brownout_obj, "brownout", source)
    _check_keys(brownout_obj, _BROWNOUT_KEYS, "brownout", source)
    readmit_fraction = _number(
        brownout_obj, "readmit_fraction", "brownout", source,
        default=0.8, minimum=0.0, maximum=1.0,
    )
    readmit_after = brownout_obj.get("readmit_after_checks", 3)
    if (isinstance(readmit_after, bool)
            or not isinstance(readmit_after, int) or readmit_after < 1):
        raise PolicyError(
            "brownout.readmit_after_checks",
            f"expected an integer >= 1, got {readmit_after!r}", source,
        )

    dvfs_obj = obj.get("dvfs", {})
    dvfs_obj = _require_mapping(dvfs_obj, "dvfs", source)
    _check_keys(dvfs_obj, _DVFS_KEYS, "dvfs", source)
    dvfs = DvfsSpec(
        min_ghz=_number(dvfs_obj, "min_ghz", "dvfs", source,
                        default=None, minimum=0.0, allow_none=True),
        max_ghz=_number(dvfs_obj, "max_ghz", "dvfs", source,
                        default=None, minimum=0.0, allow_none=True),
    )
    if (dvfs.min_ghz is not None and dvfs.max_ghz is not None
            and dvfs.min_ghz > dvfs.max_ghz):
        raise PolicyError(
            "dvfs.min_ghz",
            f"min_ghz {dvfs.min_ghz:g} exceeds max_ghz "
            f"{dvfs.max_ghz:g}", source,
        )

    return PolicyDocument(
        version=version,
        power_cap_w=_number(obj, "power_cap_w", "", source,
                            default=None, minimum=0.0, allow_none=True),
        energy_window_s=_number(obj, "energy_window_s", "", source,
                                default=2.0, minimum=1e-3),
        default_tenant=default_tenant,
        brownout=BrownoutSpec(
            readmit_fraction=readmit_fraction,
            readmit_after_checks=readmit_after,
        ),
        dvfs=dvfs,
        tenants=tuple(tenants),
        source=source,
    )


def load_policy_file(path: str, fileops=None) -> PolicyDocument:
    """Load and validate a YAML or JSON policy file.

    Format is chosen by extension (``.json`` = JSON, anything else
    tries YAML first and falls back to JSON when PyYAML is absent —
    JSON is a YAML subset, so ``.yaml`` documents written as JSON still
    load on a bare toolchain).  Syntax errors surface with the parser's
    line/column context.

    ``fileops`` is the injectable filesystem seam of
    :mod:`repro.storage.faultfs` (``None`` = real filesystem); a torn
    or failing read surfaces as a typed ``OSError`` subclass which the
    hot-reload path (:meth:`repro.policy.manager.PolicyManager
    .maybe_reload`) turns into a counted, non-fatal reload error.
    """
    if fileops is not None:
        text = fileops.read_bytes(path, point="policy.read").decode("utf-8")
    else:
        with open(path) as fh:
            text = fh.read()
    if path.endswith(".json"):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PolicyError(
                f"line {exc.lineno}, column {exc.colno}",
                f"invalid JSON: {exc.msg}", path,
            ) from exc
    else:
        try:
            import yaml
        except ImportError:  # pragma: no cover - exercised on bare images
            try:
                obj = json.loads(text)
            except json.JSONDecodeError as exc:
                raise PolicyError(
                    f"line {exc.lineno}, column {exc.colno}",
                    "PyYAML is not installed and the document is not "
                    f"valid JSON either: {exc.msg}", path,
                ) from exc
        else:
            try:
                obj = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                mark = getattr(exc, "problem_mark", None)
                where = (f"line {mark.line + 1}, column {mark.column + 1}"
                         if mark else "<stream>")
                problem = getattr(exc, "problem", None) or str(exc)
                raise PolicyError(where, f"invalid YAML: {problem}",
                                  path) from exc
    return parse_policy(obj, source=path)
