"""Fixed-seed brownout drill (``make policy-smoke``).

Simulates a four-tenant hospital fleet (emergency telemetry, urgent
clinic streams, batch transcodes, archival sweeps) slot by slot through
Algorithm 2 on a policy-clamped platform, prices every slot with the
fig4 :class:`~repro.platform.power.PowerModel`, feeds the energy into
the :class:`~repro.policy.energy.EnergyBudgetScheduler`, and fails
loudly unless every brownout invariant holds:

* a mid-run load surge drives windowed power over the cap and tenants
  shed **strictly in reverse priority order** (archival first) — at
  every check the shed set is an exact prefix of the compiled
  ``shed_order``;
* the emergency tier is **never** shed while lower tiers remain (it is
  absent from ``shed_order`` by construction, and the drill checks it
  stayed served every slot);
* no budget check ever finds the cap exceeded with nothing left to
  shed (``cap_violations == 0``), and once the shed set settles the
  windowed power stays within the cap for the rest of the surge;
* when the surge passes, hysteretic readmission restores every tenant
  (reverse shed order), leaving no one shed at the end;
* the event sequence and windowed-power trace CRC match the committed
  golden (``tests/golden/policy_smoke.json``) — regenerate after an
  intentional policy/model change with ``--update-golden``.

Everything is derived from ``SEED``; the simulated clock is slot
arithmetic, so the drill is bit-stable across runs and machines.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import zlib
from pathlib import Path
from typing import Dict, List, Tuple

from repro.allocation.demand import UserDemand
from repro.allocation.proposed import ProposedAllocator
from repro.observability import scoped
from repro.platform.mpsoc import XEON_E5_2667
from repro.platform.power import GHZ, PowerModel
from repro.platform.schedule import ThreadTask
from repro.policy.compiler import compile_policy
from repro.policy.document import parse_policy
from repro.policy.energy import EnergyBudgetScheduler

#: Drill contract: everything below is part of the golden digest.
SEED = 11
FPS = 10.0
SLOTS = 80
SURGE_START, SURGE_END = 20, 50
THREADS_PER_STREAM = 4

POLICY = {
    "version": 1,
    "power_cap_w": 120.0,
    "energy_window_s": 0.2,
    "default_tenant": "clinic",
    "brownout": {"readmit_fraction": 0.7, "readmit_after_checks": 2},
    "dvfs": {"min_ghz": 2.8, "max_ghz": 3.3},
    "tenants": [
        {"name": "er", "tier": "emergency", "weight": 4.0,
         "min_psnr_db": 37.0, "max_deadline_miss_rate": 0.02},
        {"name": "clinic", "tier": "urgent", "weight": 3.0,
         "min_psnr_db": 32.0},
        {"name": "batch", "tier": "batch", "weight": 2.0, "max_rungs": 2},
        {"name": "archive", "tier": "archival", "weight": 1.0},
    ],
}

#: Active streams per tenant: calm baseline, then the surge window.
CALM = {"er": 2, "clinic": 3, "batch": 2, "archive": 2}
SURGE = {"er": 3, "clinic": 8, "batch": 10, "archive": 10}

GOLDEN_PATH = (
    Path(__file__).resolve().parents[3] / "tests" / "golden"
    / "policy_smoke.json"
)


def _stream_demands() -> Dict[str, List[UserDemand]]:
    """Per-tenant stream demands, drawn once from the fixed seed (the
    per-slot load is which *streams* are active, not new draws)."""
    rng = random.Random(SEED)
    demands: Dict[str, List[UserDemand]] = {}
    for tid, tenant in enumerate(sorted(set(CALM) | set(SURGE))):
        peak = max(CALM.get(tenant, 0), SURGE.get(tenant, 0))
        streams = []
        for si in range(peak):
            uid = (tid + 1) * 1000 + si
            threads = [
                ThreadTask(
                    thread_id=uid * 10 + j, user_id=uid,
                    cpu_time_fmax=rng.uniform(0.010, 0.020), tile_index=j,
                )
                for j in range(THREADS_PER_STREAM)
            ]
            streams.append(UserDemand(user_id=uid, threads=threads))
        demands[tenant] = streams
    return demands


def run(update_golden: bool = False) -> int:
    policy = compile_policy(parse_policy(POLICY, source="<policy-smoke>"))
    failures: List[str] = []

    platform = policy.clamp_platform(XEON_E5_2667)
    if platform.f_max != 3.2 * GHZ:
        failures.append(
            f"dvfs clamp: expected f_max 3.2 GHz on the clamped "
            f"platform, got {platform.f_max / GHZ:g} GHz"
        )
    if policy.shed_order != ("archive", "batch", "clinic"):
        failures.append(
            f"compiled shed order {policy.shed_order} != "
            "('archive', 'batch', 'clinic')"
        )

    streams = _stream_demands()
    power_model = PowerModel()
    event_log: List[Tuple[str, str, int]] = []
    powers: List[float] = []
    settle_check = None  # first surge check with a stable, in-cap window

    with scoped():
        allocator = ProposedAllocator(platform=platform)
        scheduler = EnergyBudgetScheduler(policy)
        for slot in range(SLOTS):
            counts = SURGE if SURGE_START <= slot < SURGE_END else CALM
            demands: List[UserDemand] = []
            owner: Dict[int, str] = {}
            for tenant in sorted(counts):
                if not scheduler.serves(tenant):
                    continue  # brownout: this tenant's frames drop
                for demand in streams[tenant][:counts[tenant]]:
                    demands.append(demand)
                    owner[demand.user_id] = tenant
            now = (slot + 1) / FPS

            result = allocator.allocate(demands, FPS)
            if result.rejected:
                failures.append(
                    f"slot {slot}: allocator rejected "
                    f"{len(result.rejected)} streams (drill load must "
                    "fit the platform)"
                )
            slot_energy = result.schedule.energy(power_model)
            total_cpu = sum(d.total_cpu_time_fmax for d in result.admitted)
            by_tenant: Dict[str, float] = {}
            for demand in result.admitted:
                name = owner[demand.user_id]
                by_tenant[name] = (by_tenant.get(name, 0.0)
                                   + demand.total_cpu_time_fmax)
            # Attribute the slot's energy (busy + idle baseline) to
            # tenants by CPU share — the same model-domain attribution
            # the server uses.
            for name, cpu in sorted(by_tenant.items()):
                scheduler.observe(now, slot_energy * cpu / total_cpu, name)

            for event in scheduler.check(now):
                event_log.append((event.kind, event.tenant, slot))
            power = scheduler.ledger.windowed_power(now)
            powers.append(round(power, 3))

            # Invariants checked at every slot, not just at the end.
            shed = scheduler.shed_tenants
            if shed != policy.shed_order[:len(shed)]:
                failures.append(
                    f"slot {slot}: shed set {shed} is not a prefix of "
                    f"shed order {policy.shed_order}"
                )
            if not scheduler.serves("er"):
                failures.append(f"slot {slot}: emergency tenant shed")
            in_surge = SURGE_START <= slot < SURGE_END
            if (settle_check is None and in_surge and shed
                    and power <= policy.power_cap_w):
                settle_check = slot
            if (settle_check is not None and in_surge
                    and power > policy.power_cap_w
                    and not any(e[2] == slot for e in event_log)):
                failures.append(
                    f"slot {slot}: windowed power {power:.1f} W over the "
                    f"{policy.power_cap_w:g} W cap after brownout "
                    f"settled at slot {settle_check} with no transition"
                )

        violations = scheduler.cap_violations
        final_shed = scheduler.shed_tenants
        total_j = scheduler.ledger.total_j

    sheds = [e for e in event_log if e[0] == "shed"]
    readmits = [e for e in event_log if e[0] == "readmit"]
    if not sheds:
        failures.append("surge never triggered a brownout shed")
    if not readmits:
        failures.append("no tenant was ever readmitted (hysteresis "
                        "path not exercised)")
    if any(e[1] == "er" for e in event_log):
        failures.append("emergency tenant appeared in a brownout event")
    if violations:
        failures.append(
            f"{violations} budget checks found the cap exceeded with "
            "nothing left to shed"
        )
    if settle_check is None:
        failures.append("brownout never settled inside the cap during "
                        "the surge")
    if final_shed:
        failures.append(
            f"tenants still shed at end of drill: {final_shed}"
        )

    power_crc = zlib.crc32(
        ",".join(f"{p:.3f}" for p in powers).encode()
    ) & 0xFFFFFFFF
    golden = {
        "seed": SEED,
        "fps": FPS,
        "slots": SLOTS,
        "cap_w": POLICY["power_cap_w"],
        "window_s": POLICY["energy_window_s"],
        "shed_order": list(policy.shed_order),
        "events": [list(e) for e in event_log],
        "power_crc": f"{power_crc:08x}",
        "total_joules": round(total_j, 3),
    }
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True)
                               + "\n")
        print(f"wrote {GOLDEN_PATH}")
    elif not GOLDEN_PATH.exists():
        failures.append(
            f"golden file missing: {GOLDEN_PATH} "
            "(run with --update-golden to create it)"
        )
    else:
        expected = json.loads(GOLDEN_PATH.read_text())
        if expected != golden:
            failures.append(
                f"golden mismatch:\n  expected {expected}\n  got      "
                f"{golden}\n  (an intentional policy/model change needs "
                "--update-golden)"
            )

    for kind, tenant, slot in event_log:
        print(f"slot {slot:3d}: {kind:10s} {tenant}")
    if failures:
        print("policy-smoke FAILED:\n  - " + "\n  - ".join(failures),
              file=sys.stderr)
        return 1
    print(
        f"policy-smoke OK ({len(sheds)} sheds, {len(readmits)} readmits, "
        f"{total_j:.1f} J over {SLOTS} slots, power crc {power_crc:08x})"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update-golden", action="store_true",
                        help="rewrite tests/golden/policy_smoke.json")
    args = parser.parse_args(argv)
    return run(update_golden=args.update_golden)


if __name__ == "__main__":
    raise SystemExit(main())
