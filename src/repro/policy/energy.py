"""Energy-budgeted scheduling: the sliding ledger and brownout mode.

The fig4 power model prices every core-second
(:class:`repro.platform.power.PowerModel`,
:meth:`repro.platform.schedule.SlotSchedule.energy`); this module adds
the *budget*: an :class:`EnergyLedger` integrates observed energy over
a sliding window, and the :class:`EnergyBudgetScheduler` compares the
windowed mean power against the policy's cap.

When the cap is exceeded the scheduler enters **brownout**: tenants are
shed one per check, in the compiled policy's strict reverse-priority
order (archival first; the most important tier is never shed — if it
alone still busts the cap, ``cap_violations`` counts it instead of
dropping emergency streams).  Shedding is sticky: a shed tenant's
admissions are refused and its active streams drop frames, so its draw
collapses to ~0 and the window drains.  Readmission is hysteretic —
windowed power must stay below ``cap * readmit_fraction`` for
``readmit_after_checks`` consecutive checks, and tenants return one at
a time in reverse shed order — so the fleet never oscillates across
the cap boundary.

Per-tenant ``power_budget_w`` caps work the same way, scoped to one
tenant: its own draw above its own budget throttles only that tenant
(with the same hysteresis), independent of the shared envelope.

Time is explicit everywhere (callers pass ``now``): the serving loop
feeds the event-loop clock, the brownout drill feeds simulated slot
time, and tests are deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.observability import get_registry, get_tracer
from repro.policy.compiler import CompiledPolicy

__all__ = ["BrownoutEvent", "EnergyBudgetScheduler", "EnergyLedger"]


class EnergyLedger:
    """Sliding-window integral of observed energy.

    ``record(now, energy_j)`` appends one observation; anything older
    than ``window_s`` before the most recent ``now`` passed to a query
    falls off.  Windowed power is the window's energy divided by the
    window length — a stable denominator, so a burst right after start
    does not read as infinite power.
    """

    def __init__(self, window_s: float):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self._entries: Deque[Tuple[float, float]] = deque()
        self._sum_j = 0.0
        self.total_j = 0.0

    def record(self, now: float, energy_j: float) -> None:
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        self._entries.append((now, energy_j))
        self._sum_j += energy_j
        self.total_j += energy_j
        self._expire(now)

    def _expire(self, now: float) -> None:
        # Tolerant boundary: an entry at exactly ``now - window_s``
        # is outside the window even when float subtraction lands a
        # hair below it (slot-grid timestamps hit this constantly).
        horizon = now - self.window_s + 1e-9
        entries = self._entries
        while entries and entries[0][0] <= horizon:
            _, energy = entries.popleft()
            self._sum_j -= energy
        if not entries:
            self._sum_j = 0.0

    def windowed_energy(self, now: float) -> float:
        self._expire(now)
        return max(0.0, self._sum_j)

    def windowed_power(self, now: float) -> float:
        return self.windowed_energy(now) / self.window_s


@dataclass(frozen=True)
class BrownoutEvent:
    """One shed/readmit transition, for drills and observability."""

    kind: str          # "shed" | "readmit" | "throttle" | "unthrottle"
    tenant: str
    windowed_w: float
    #: Check index at which the transition happened (drill-friendly).
    check: int


@dataclass
class _TenantDraw:
    ledger: EnergyLedger
    throttled: bool = False
    clear_checks: int = 0


class EnergyBudgetScheduler:
    """Tracks the ledger against the policy's caps and runs brownout.

    The serving loop calls :meth:`observe` after every encode (energy
    attributed to the session's tenant) and :meth:`check` periodically;
    admission calls :meth:`admits` per HELLO and servers consult
    :meth:`serves` per frame.
    """

    def __init__(self, policy: CompiledPolicy):
        self.policy = policy
        self.ledger = EnergyLedger(policy.energy_window_s)
        self._tenant_draw: Dict[str, _TenantDraw] = {
            name: _TenantDraw(EnergyLedger(policy.energy_window_s))
            for name, rt in policy.tenants.items()
            if rt.power_budget_w is not None
        }
        #: Currently shed tenants, in shed order (a prefix of
        #: ``policy.shed_order``).
        self._shed: List[str] = []
        self._clear_checks = 0
        self._checks = 0
        self.events: List[BrownoutEvent] = []
        #: Checks where the cap was exceeded with nothing left to shed.
        self.cap_violations = 0

    # -- observation ---------------------------------------------------
    def observe(self, now: float, energy_j: float, tenant: str = "") -> None:
        """Record one encode's energy, attributed to ``tenant``."""
        self.ledger.record(now, energy_j)
        name = self.policy.resolve_name(tenant)
        draw = self._tenant_draw.get(name)
        if draw is not None:
            draw.ledger.record(now, energy_j)
        registry = get_registry()
        registry.inc(
            "repro_policy_energy_joules_total", energy_j, tenant=name,
            help="Modelled encode energy attributed per tenant",
        )

    # -- state ---------------------------------------------------------
    @property
    def shed_tenants(self) -> Tuple[str, ...]:
        return tuple(self._shed)

    @property
    def brownout_active(self) -> bool:
        return bool(self._shed)

    def admits(self, tenant: str) -> Tuple[bool, str]:
        """May a new session of ``tenant`` be admitted right now?"""
        name = self.policy.resolve_name(tenant)
        if name in self._shed:
            return False, (
                f"brownout: tenant {name!r} is shed until windowed power "
                f"clears {self._readmit_threshold():.1f} W"
            )
        draw = self._tenant_draw.get(name)
        if draw is not None and draw.throttled:
            rt = self.policy.tenants[name]
            return False, (
                f"tenant {name!r} over its {rt.power_budget_w:g} W "
                "power budget"
            )
        return True, ""

    def serves(self, tenant: str) -> bool:
        """May an *active* session of ``tenant`` keep encoding?  Shed
        tenants' streams drop frames until readmission (the connection
        survives; delivery degrades to policy drops)."""
        return self.policy.resolve_name(tenant) not in self._shed

    def _readmit_threshold(self) -> float:
        cap = self.policy.power_cap_w or 0.0
        return cap * self.policy.brownout.readmit_fraction

    # -- the periodic check --------------------------------------------
    def check(self, now: float) -> List[BrownoutEvent]:
        """One budget check; returns the transitions it caused."""
        self._checks += 1
        events: List[BrownoutEvent] = []
        power = self.ledger.windowed_power(now)
        cap = self.policy.power_cap_w
        if cap is not None:
            if power > cap:
                self._clear_checks = 0
                nxt = next(
                    (t for t in self.policy.shed_order
                     if t not in self._shed),
                    None,
                )
                if nxt is not None:
                    self._shed.append(nxt)
                    events.append(BrownoutEvent(
                        "shed", nxt, power, self._checks,
                    ))
                else:
                    self.cap_violations += 1
                    get_registry().inc(
                        "repro_policy_cap_violations_total",
                        help="Budget checks over cap with nothing "
                             "sheddable left",
                    )
            elif self._shed and power <= self._readmit_threshold():
                self._clear_checks += 1
                if (self._clear_checks
                        >= self.policy.brownout.readmit_after_checks):
                    back = self._shed.pop()  # reverse shed order
                    self._clear_checks = 0
                    events.append(BrownoutEvent(
                        "readmit", back, power, self._checks,
                    ))
            else:
                self._clear_checks = 0
        # Per-tenant budgets (scoped throttling, same hysteresis shape).
        for name, draw in self._tenant_draw.items():
            budget = self.policy.tenants[name].power_budget_w
            tenant_power = draw.ledger.windowed_power(now)
            if not draw.throttled and tenant_power > budget:
                draw.throttled = True
                draw.clear_checks = 0
                events.append(BrownoutEvent(
                    "throttle", name, tenant_power, self._checks,
                ))
            elif draw.throttled:
                if tenant_power <= (budget
                                    * self.policy.brownout.readmit_fraction):
                    draw.clear_checks += 1
                    if (draw.clear_checks
                            >= self.policy.brownout.readmit_after_checks):
                        draw.throttled = False
                        draw.clear_checks = 0
                        events.append(BrownoutEvent(
                            "unthrottle", name, tenant_power, self._checks,
                        ))
                else:
                    draw.clear_checks = 0
        self.events.extend(events)
        self._export(now, power, events)
        return events

    def _export(self, now: float, power: float,
                events: List[BrownoutEvent]) -> None:
        registry = get_registry()
        registry.set_gauge(
            "repro_policy_energy_window_joules",
            self.ledger.windowed_energy(now),
            help="Energy observed inside the sliding policy window",
        )
        registry.set_gauge(
            "repro_policy_energy_window_watts", power,
            help="Windowed mean power vs the policy cap",
        )
        registry.set_gauge(
            "repro_policy_brownout_active",
            1 if self._shed else 0,
            help="1 while any tenant is brownout-shed",
        )
        registry.set_gauge(
            "repro_policy_tenants_shed", len(self._shed),
            help="Tenants currently shed by brownout",
        )
        tracer = get_tracer()
        for event in events:
            registry.inc(
                "repro_policy_brownout_transitions_total",
                kind=event.kind, tenant=event.tenant,
                help="Brownout shed/readmit/throttle transitions",
            )
            tracer.event(
                "policy.brownout", kind=event.kind, tenant=event.tenant,
                windowed_w=event.windowed_w,
            )
