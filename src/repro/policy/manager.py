"""Versioned plan/apply lifecycle for live policies.

A server never swaps its policy blind: a candidate file is parsed and
compiled off to the side, :func:`plan_change` diffs it against the
active plan into a human-readable :class:`PolicyPlan`, and only
:meth:`PolicyManager.apply` makes it live — atomically bumping the
manager's monotonic ``revision``.  A file that fails validation leaves
the active policy untouched and increments a reload-error counter, so
a fat-fingered edit degrades to "nothing happened" plus a metric, not
an outage.

Hot reload is mtime polling (:meth:`PolicyManager.maybe_reload`), which
the serving loop calls on its housekeeping tick; there is no watcher
thread to leak.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.observability import get_registry, get_tracer
from repro.policy.compiler import CompiledPolicy, compile_policy
from repro.policy.document import PolicyError, load_policy_file

__all__ = ["PolicyManager", "PolicyPlan", "plan_change"]


@dataclass(frozen=True)
class PolicyPlan:
    """Diff between the active policy and a compiled candidate."""

    added: Tuple[str, ...]
    removed: Tuple[str, ...]
    changed: Tuple[str, ...]
    #: Non-tenant knob changes, rendered ("power_cap_w: 90 -> 60").
    global_changes: Tuple[str, ...]

    @property
    def empty(self) -> bool:
        return not (self.added or self.removed or self.changed
                    or self.global_changes)

    def summary(self) -> str:
        if self.empty:
            return "no changes"
        parts: List[str] = []
        if self.added:
            parts.append("add " + ", ".join(self.added))
        if self.removed:
            parts.append("remove " + ", ".join(self.removed))
        if self.changed:
            parts.append("change " + ", ".join(self.changed))
        parts.extend(self.global_changes)
        return "; ".join(parts)


def _global_diffs(old: CompiledPolicy, new: CompiledPolicy) -> Tuple[str, ...]:
    diffs: List[str] = []
    for attr in ("power_cap_w", "energy_window_s", "default_tenant",
                 "dvfs_min_hz", "dvfs_max_hz"):
        before, after = getattr(old, attr), getattr(new, attr)
        if before != after:
            diffs.append(f"{attr}: {before} -> {after}")
    if old.brownout != new.brownout:
        diffs.append("brownout hysteresis changed")
    return tuple(diffs)


def plan_change(old: Optional[CompiledPolicy],
                new: CompiledPolicy) -> PolicyPlan:
    """Diff ``new`` against ``old`` (``old=None`` = first load)."""
    if old is None:
        return PolicyPlan(
            added=new.tenant_names(), removed=(), changed=(),
            global_changes=(),
        )
    added = tuple(sorted(set(new.tenants) - set(old.tenants)))
    removed = tuple(sorted(set(old.tenants) - set(new.tenants)))
    changed = tuple(sorted(
        name for name in set(old.tenants) & set(new.tenants)
        if old.tenants[name] != new.tenants[name]
    ))
    return PolicyPlan(added, removed, changed, _global_diffs(old, new))


class PolicyManager:
    """Owns the live :class:`CompiledPolicy` and its reload lifecycle.

    ``on_apply`` callbacks (``fn(policy, plan, revision)``) run after
    every apply; the server hangs its scheduler/admission rewiring off
    them.
    """

    def __init__(self, path: Optional[str] = None, fileops=None):
        self.path = path
        self._ops = fileops  # None = real filesystem (see load_policy_file)
        self.active: Optional[CompiledPolicy] = None
        self.revision = 0
        self.reload_errors = 0
        self.last_error: Optional[str] = None
        self._mtime: Optional[float] = None
        self._listeners: List[
            Callable[[CompiledPolicy, PolicyPlan, int], None]] = []
        if path is not None:
            # The initial load is NOT forgiving: a server must refuse
            # to start on a broken policy rather than silently run
            # unpoliced.
            self._mtime = self._getmtime(path)
            doc = load_policy_file(path, fileops=self._ops)
            self.apply(compile_policy(doc))

    def _getmtime(self, path: str) -> float:
        if self._ops is not None:
            return self._ops.getmtime(path, point="policy.stat")
        return os.path.getmtime(path)

    def on_apply(self, fn: Callable[[CompiledPolicy, PolicyPlan, int],
                                    None]) -> None:
        self._listeners.append(fn)

    # -- plan / apply --------------------------------------------------
    def plan(self, candidate: CompiledPolicy) -> PolicyPlan:
        return plan_change(self.active, candidate)

    def apply(self, candidate: CompiledPolicy) -> PolicyPlan:
        plan = self.plan(candidate)
        self.active = candidate
        self.revision += 1
        self.last_error = None
        registry = get_registry()
        registry.set_gauge(
            "repro_policy_revision", self.revision,
            help="Monotonic revision of the applied policy",
        )
        registry.set_gauge(
            "repro_policy_tenants", len(candidate.tenants),
            help="Tenants defined by the applied policy",
        )
        get_tracer().event(
            "policy.apply", revision=self.revision,
            summary=plan.summary(), source=candidate.source or "",
        )
        for fn in self._listeners:
            fn(candidate, plan, self.revision)
        return plan

    # -- hot reload ----------------------------------------------------
    def maybe_reload(self) -> Optional[PolicyPlan]:
        """Re-read the file if its mtime moved.

        Returns the applied plan, or ``None`` when nothing changed or
        the candidate failed validation (the active policy stays up and
        ``reload_errors`` / ``last_error`` record the failure).
        """
        if self.path is None:
            return None
        try:
            mtime = self._getmtime(self.path)
        except OSError:
            return None  # file briefly absent mid-rewrite; retry later
        if self._mtime is not None and mtime == self._mtime:
            return None
        self._mtime = mtime
        try:
            candidate = compile_policy(
                load_policy_file(self.path, fileops=self._ops))
        except (PolicyError, OSError) as exc:
            self.reload_errors += 1
            self.last_error = str(exc)
            get_registry().inc(
                "repro_policy_reload_errors_total",
                help="Policy reloads rejected by validation",
            )
            get_tracer().event("policy.reload_error", error=str(exc))
            return None
        plan = self.plan(candidate)
        if plan.empty and self.active is not None:
            return None  # touched but semantically identical
        return self.apply(candidate)
