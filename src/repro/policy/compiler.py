"""Lowering: a validated :class:`PolicyDocument` becomes concrete knobs.

The declarative layer talks about *intent* (tiers, PSNR floors,
deadline classes, budgets); the serving stack consumes *mechanism*
(admission weights, park/shed ordering, degradation-ladder caps, DVFS
bounds).  This module is the bridge, and the mapping rules are the
policy grammar's semantics — documented here and in DESIGN.md §15:

* ``weight``  → ``capacity_fraction`` (normalized share of the slot
  capacity; per-tenant occupancy is capped at its share so a batch
  flood can never starve the emergency entitlement).
* ``tier``    → ``shed_rank`` (strict brownout order: the
  highest-rank/lowest-priority tenant sheds first; the document's
  most important tier is never shed at all).
* ``min_psnr_db`` → degradation-ladder cap: a floor of 36 dB or more
  compiles to ``NONE`` (the stream is never lightened), 30 dB or more
  to ``QP_BUMP`` at most; below that the explicit ``max_degradation``
  rung applies unchanged.  The final cap is the minimum of both.
* ``max_deadline_miss_rate`` → ladder aggressiveness: a rate of 5% or
  less compiles to ``escalate_after=1`` (react to every miss), looser
  classes to ``escalate_after=2``.
* ``dvfs.min_ghz``/``max_ghz`` → a clamped platform whose frequency
  list :class:`~repro.allocation.proposed.ProposedAllocator` consumes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.platform.mpsoc import MpsocConfig
from repro.policy.document import (
    BrownoutSpec,
    PolicyDocument,
    PolicyError,
    TenantSpec,
)
from repro.resilience.degradation import DegradationLevel, ResilienceConfig

__all__ = ["CompiledPolicy", "TenantRuntime", "compile_policy"]

#: PSNR floor (dB) → hardest degradation rung still allowed.
_PSNR_LADDER_CAPS: Tuple[Tuple[float, DegradationLevel], ...] = (
    (36.0, DegradationLevel.NONE),
    (30.0, DegradationLevel.QP_BUMP),
)

_DEGRADATION_BY_NAME = {
    "none": DegradationLevel.NONE,
    "qp_bump": DegradationLevel.QP_BUMP,
    "window_shrink": DegradationLevel.WINDOW_SHRINK,
    "tile_merge": DegradationLevel.TILE_MERGE,
    "frame_drop": DegradationLevel.FRAME_DROP,
}


@dataclass(frozen=True)
class TenantRuntime:
    """One tenant's compiled, directly-consumable knobs."""

    name: str
    #: Priority rank (lower = more important), from the tier name.
    rank: int
    #: Normalized admission share of the slot capacity.
    capacity_fraction: float
    #: Brownout order: 0 sheds first; ``None`` = never shed (the
    #: document's most important tier).
    shed_rank: Optional[int]
    #: Hard ceiling of the per-stream degradation ladder.
    max_level: DegradationLevel
    #: Consecutive misses before the per-stream ladder escalates.
    escalate_after: int
    #: Ladder-rung entitlement (0 = unlimited).
    max_rungs: int
    #: Per-tenant windowed power budget (W); ``None`` = envelope only.
    power_budget_w: Optional[float]
    #: The declared QoS floors, kept for observability and reporting.
    min_psnr_db: Optional[float]
    max_deadline_miss_rate: float

    def capacity_cores(self, platform_cores: float) -> float:
        return self.capacity_fraction * platform_cores


def _lower_tenant(spec: TenantSpec, total_weight: float,
                  shed_rank: Optional[int]) -> TenantRuntime:
    cap = _DEGRADATION_BY_NAME[spec.max_degradation]
    if spec.min_psnr_db is not None:
        for floor, level in _PSNR_LADDER_CAPS:
            if spec.min_psnr_db >= floor:
                cap = min(cap, level)
                break
    return TenantRuntime(
        name=spec.name,
        rank=spec.rank,
        capacity_fraction=spec.weight / total_weight,
        shed_rank=shed_rank,
        max_level=cap,
        escalate_after=1 if spec.max_deadline_miss_rate <= 0.05 else 2,
        max_rungs=spec.max_rungs,
        power_budget_w=spec.power_budget_w,
        min_psnr_db=spec.min_psnr_db,
        max_deadline_miss_rate=spec.max_deadline_miss_rate,
    )


@dataclass(frozen=True)
class CompiledPolicy:
    """A lowered policy: everything the serving stack consumes."""

    version: int
    default_tenant: str
    tenants: Dict[str, TenantRuntime]
    #: Tenant names in strict shed order (first entry sheds first).
    #: Tenants of the document's most important tier are absent — they
    #: ride out the brownout.
    shed_order: Tuple[str, ...]
    power_cap_w: Optional[float]
    energy_window_s: float
    brownout: BrownoutSpec
    dvfs_min_hz: Optional[float]
    dvfs_max_hz: Optional[float]
    source: Optional[str] = None

    # -- resolution ----------------------------------------------------
    def resolve(self, tenant: str) -> TenantRuntime:
        """Tenant for a HELLO's declared name.

        Unknown or empty names fall through to the catch-all default
        tenant — old peers that never heard of tenancy keep working.
        """
        return self.tenants.get(tenant) or self.tenants[self.default_tenant]

    def resolve_name(self, tenant: str) -> str:
        return self.resolve(tenant).name

    # -- compilation targets -------------------------------------------
    def resilience_for(self, tenant: str,
                       base: Optional[ResilienceConfig]
                       ) -> Optional[ResilienceConfig]:
        """Per-stream degradation config bounded by the tenant's QoS
        floor (the ladder never climbs past the compiled cap)."""
        if base is None:
            return None
        rt = self.resolve(tenant)
        return dataclasses.replace(
            base,
            max_level=min(base.max_level, rt.max_level),
            escalate_after=rt.escalate_after,
        )

    def clamp_platform(self, platform: MpsocConfig) -> MpsocConfig:
        """Platform with its DVFS levels restricted to the policy's
        bounds — the frequency list Algorithm 2's DVFS stage picks
        from.  Raises :class:`PolicyError` when no platform level
        survives the bounds."""
        lo = self.dvfs_min_hz
        hi = self.dvfs_max_hz
        if lo is None and hi is None:
            return platform
        kept = tuple(
            f for f in platform.frequencies_hz
            if (lo is None or f >= lo) and (hi is None or f <= hi)
        )
        if not kept:
            ghz = [f / 1e9 for f in platform.frequencies_hz]
            raise PolicyError(
                "dvfs",
                f"no platform frequency level inside "
                f"[{(lo or 0) / 1e9:g}, "
                f"{(hi / 1e9) if hi is not None else 'inf'}] GHz; "
                f"platform levels: {ghz} GHz", self.source,
            )
        if kept == platform.frequencies_hz:
            return platform
        return dataclasses.replace(platform, frequencies_hz=kept)

    def max_rungs_for(self, tenant: str) -> int:
        return self.resolve(tenant).max_rungs

    def tenant_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.tenants))


def compile_policy(doc: PolicyDocument) -> CompiledPolicy:
    """Lower a validated document into a :class:`CompiledPolicy`."""
    total_weight = sum(t.weight for t in doc.tenants)
    top_rank = min(t.rank for t in doc.tenants)
    # Strict shed order: lowest-priority (highest rank) tenants first,
    # deterministic within a tier by name.  The top tier never sheds.
    sheddable = sorted(
        (t for t in doc.tenants if t.rank > top_rank),
        key=lambda t: (-t.rank, t.name),
    )
    shed_order = tuple(t.name for t in sheddable)
    tenants = {
        spec.name: _lower_tenant(
            spec, total_weight,
            shed_order.index(spec.name) if spec.name in shed_order else None,
        )
        for spec in doc.tenants
    }
    return CompiledPolicy(
        version=doc.version,
        default_tenant=doc.default_tenant,
        tenants=tenants,
        shed_order=shed_order,
        power_cap_w=doc.power_cap_w,
        energy_window_s=doc.energy_window_s,
        brownout=doc.brownout,
        dvfs_min_hz=(doc.dvfs.min_ghz * 1e9
                     if doc.dvfs.min_ghz is not None else None),
        dvfs_max_hz=(doc.dvfs.max_ghz * 1e9
                     if doc.dvfs.max_ghz is not None else None),
        source=doc.source,
    )
