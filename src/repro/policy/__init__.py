"""Declarative per-tenant policy: documents, compiler, energy budget.

The package splits cleanly into four layers:

* :mod:`repro.policy.document` — YAML/JSON grammar, schema validation
  with actionable line/key errors, the frozen :class:`PolicyDocument`.
* :mod:`repro.policy.compiler` — lowering into a
  :class:`CompiledPolicy` of concrete serving knobs (admission shares,
  shed order, ladder caps, DVFS bounds).
* :mod:`repro.policy.energy` — the sliding energy ledger and the
  brownout scheduler that enforces the power envelope.
* :mod:`repro.policy.manager` — versioned plan/apply lifecycle with
  mtime-polled hot reload.
"""

from repro.policy.compiler import CompiledPolicy, TenantRuntime, compile_policy
from repro.policy.document import (
    PRIORITY_TIERS,
    BrownoutSpec,
    DvfsSpec,
    PolicyDocument,
    PolicyError,
    TenantSpec,
    load_policy_file,
    parse_policy,
)
from repro.policy.energy import BrownoutEvent, EnergyBudgetScheduler, EnergyLedger
from repro.policy.manager import PolicyManager, PolicyPlan, plan_change

__all__ = [
    "PRIORITY_TIERS",
    "BrownoutEvent",
    "BrownoutSpec",
    "CompiledPolicy",
    "DvfsSpec",
    "EnergyBudgetScheduler",
    "EnergyLedger",
    "PolicyDocument",
    "PolicyError",
    "PolicyManager",
    "PolicyPlan",
    "TenantRuntime",
    "TenantSpec",
    "compile_policy",
    "load_policy_file",
    "parse_policy",
    "plan_change",
]
