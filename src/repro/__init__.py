"""repro — reproduction of "Online Efficient Bio-Medical Video
Transcoding on MPSoCs Through Content-Aware Workload Allocation"
(Iranfar, Pahlevan, Zapater, Zagar, Kovac, Atienza — DATE 2018).

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.video` — frames, synthetic bio-medical video generator,
  metrics;
* :mod:`repro.codec` — HEVC-like block codec substrate with exact
  operation accounting;
* :mod:`repro.motion` — motion search library incl. the proposed
  bio-medical combined search;
* :mod:`repro.analysis` — CV texture classifier and 6-point motion
  probe (paper §III-A);
* :mod:`repro.tiling` — content-aware re-tiling (§III-B);
* :mod:`repro.qp` — per-tile QP adaptation, Algorithm 1 (§III-C1);
* :mod:`repro.workload` — LUT-based workload estimation (§III-D1);
* :mod:`repro.platform` — MPSoC model: cost, power, DVFS, schedules;
* :mod:`repro.allocation` — Algorithm 2 and the Khan et al. baseline;
* :mod:`repro.transcode` — the end-to-end pipeline and the multi-user
  server simulation;
* :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation (Table I/II, Fig. 3/4).
"""

__version__ = "1.0.0"

from repro.video import BioMedicalVideoGenerator, ContentClass, Frame, GeneratorConfig, Video
from repro.codec import EncoderConfig, GopConfig, VideoEncoder
from repro.tiling import ContentAwareRetiler, TilingConstraints, uniform_tiling
from repro.transcode import PipelineConfig, StreamTranscoder, TranscodingServer
from repro.allocation import KhanAllocator, ProposedAllocator

__all__ = [
    "__version__",
    "BioMedicalVideoGenerator",
    "ContentClass",
    "Frame",
    "GeneratorConfig",
    "Video",
    "EncoderConfig",
    "GopConfig",
    "VideoEncoder",
    "ContentAwareRetiler",
    "TilingConstraints",
    "uniform_tiling",
    "PipelineConfig",
    "StreamTranscoder",
    "TranscodingServer",
    "KhanAllocator",
    "ProposedAllocator",
]
