"""Experiment harness: regenerates every table and figure of the
paper's evaluation (§IV).

* :mod:`repro.experiments.table1` — Table I: motion-estimation speedup,
  PSNR loss and compression loss vs TZ search across uniform tilings.
* :mod:`repro.experiments.fig3` — Fig. 3: tile structure and per-tile
  CPU time, proposed vs Khan et al. [19].
* :mod:`repro.experiments.table2` — Table II: PSNR, bitrate, number of
  users served under a saturated queue.
* :mod:`repro.experiments.fig4` — Fig. 4: power savings vs number of
  users.

Every module exposes ``run_*`` (programmatic) and ``main()`` (CLI)
entry points; ``python -m repro.experiments.<name>`` prints the
paper-format rows.  Benchmarks under ``benchmarks/`` call the same
``run_*`` functions.
"""

from repro.experiments.common import (
    medical_corpus,
    encode_cpu_seconds,
    EncodeOutcome,
    encode_with_search,
    encode_with_proposed_policy,
)

__all__ = [
    "medical_corpus",
    "encode_cpu_seconds",
    "EncodeOutcome",
    "encode_with_search",
    "encode_with_proposed_policy",
]
