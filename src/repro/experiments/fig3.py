"""Fig. 3: tile structure and per-tile CPU time of one frame — the
proposed content-aware approach vs Khan et al. [19] (paper §IV-B2).

The paper's figure shows [19] producing few equal-CPU-time tiles (one
per core, all cores at maximum frequency) while the proposed re-tiling
yields more tiles with an order of magnitude of diversity in CPU time,
fitting on fewer cores of which only a subset runs flat-out at f_max.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.allocation import KhanAllocator, ProposedAllocator, UserDemand
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.platform.schedule import CorePlan
from repro.tiling.tile import Tile
from repro.transcode.pipeline import PipelineConfig, PipelineMode, StreamTranscoder
from repro.video.frame import Video
from repro.video.generator import ContentClass, MotionPreset, generate_video


@dataclass
class ApproachSnapshot:
    """One approach's steady-state tiling + allocation snapshot."""

    name: str
    tiles: List[Tile]
    tile_cpu_times: List[float]
    cores_used: int
    cores_at_fmax_whole_slot: int
    core_plans: List[CorePlan]

    @property
    def frame_cpu_time(self) -> float:
        return sum(self.tile_cpu_times)


@dataclass
class Fig3Result:
    proposed: ApproachSnapshot
    baseline: ApproachSnapshot
    fps: float


def _snapshot(name: str, trace, allocator, fps: float) -> ApproachSnapshot:
    gop = trace.steady_state_gop()
    times = gop.mean_tile_cpu_times()
    demand = UserDemand(user_id=0, threads=gop.threads(user_id=0))
    result = allocator.allocate([demand], fps)
    schedule = result.schedule
    plans = [p for p in schedule.plans() if p.busy_seconds > 0]
    return ApproachSnapshot(
        name=name,
        tiles=list(gop.grid),
        tile_cpu_times=times,
        cores_used=schedule.active_cores,
        cores_at_fmax_whole_slot=schedule.cores_at_fmax_whole_slot,
        core_plans=plans,
    )


def run_fig3(
    width: int = 640,
    height: int = 480,
    num_frames: int = 16,
    seed: int = 0,
    fps: float = 24.0,
    platform: MpsocConfig = XEON_E5_2667,
    video: Optional[Video] = None,
) -> Fig3Result:
    """Regenerate Fig. 3 for one (synthetic) medical video.

    The default video is a high-texture bone sequence under a pan —
    a demanding frame like the one the paper's figure illustrates.
    """
    if video is None:
        video = generate_video(
            content_class=ContentClass.BONE,
            width=width, height=height, num_frames=num_frames,
            motion=MotionPreset.PAN_DOWN, seed=seed, motion_magnitude=4.0,
        )
    proposed_trace = StreamTranscoder(
        PipelineConfig(mode=PipelineMode.PROPOSED, fps=fps, platform=platform)
    ).run(video)
    baseline_trace = StreamTranscoder(
        PipelineConfig.khan(fps=fps, platform=platform)
    ).run(video)
    return Fig3Result(
        proposed=_snapshot("proposed", proposed_trace, ProposedAllocator(platform), fps),
        baseline=_snapshot("khan[19]", baseline_trace, KhanAllocator(platform), fps),
        fps=fps,
    )


def format_fig3(result: Fig3Result) -> str:
    lines = [
        "FIG. 3 — tile structure and per-tile CPU time (s)",
        f"(slot = 1/FPS = {1.0 / result.fps:.4f} s)",
    ]
    for snap in (result.baseline, result.proposed):
        lines.append(f"\n[{snap.name}] {len(snap.tiles)} tiles, "
                     f"frame CPU time {snap.frame_cpu_time:.4f} s")
        for tile, t in zip(snap.tiles, snap.tile_cpu_times):
            lines.append(
                f"  tile ({tile.x:>4},{tile.y:>4}) {tile.width:>4}x{tile.height:<4}"
                f"  cpu {t:.4f} s"
            )
        lines.append(
            f"  cores used: {snap.cores_used}, fully busy at f_max: "
            f"{snap.cores_at_fmax_whole_slot}"
        )
    lines.append(
        f"\nsummary: proposed uses {result.proposed.cores_used} cores "
        f"({result.proposed.cores_at_fmax_whole_slot} at f_max whole slot) vs "
        f"[19] {result.baseline.cores_used} cores "
        f"({result.baseline.cores_at_fmax_whole_slot} at f_max whole slot)"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=480)
    parser.add_argument("--frames", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run_fig3(
        width=args.width, height=args.height,
        num_frames=args.frames, seed=args.seed,
    )
    print(format_fig3(result))


if __name__ == "__main__":
    main()
