"""Shared experiment infrastructure: the synthetic corpus and encode
helpers used by the Table I/II and Fig. 3/4 harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.evaluator import ContentEvaluator
from repro.analysis.motion_probe import MotionClass
from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.encoder import FrameEncoder, SequenceStats, VideoEncoder
from repro.motion.proposed import BioMedicalSearchPolicy, ProposedSearchConfig
from repro.platform.cost_model import CostModel
from repro.platform.mpsoc import XEON_E5_2667
from repro.tiling.tile import TileGrid
from repro.video.frame import Video
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
    MotionPreset,
)


def medical_corpus(
    width: int = 640,
    height: int = 480,
    num_frames: int = 48,
    seed: int = 0,
    num_videos: int = 10,
) -> List[Video]:
    """The experiment corpus: "10 different anonymized bio-medical
    videos ... that represent a wide set of typical videos used in
    diagnostic procedures" (paper §IV-A) — here, one synthetic video
    per (content class, motion preset) pair."""
    pairings = [
        (ContentClass.BRAIN, MotionPreset.ROTATE),
        (ContentClass.BRAIN, MotionPreset.PAN_RIGHT),
        (ContentClass.BONE, MotionPreset.PAN_DOWN),
        (ContentClass.BONE, MotionPreset.STILL),
        (ContentClass.LUNG, MotionPreset.PAN_RIGHT),
        (ContentClass.LUNG, MotionPreset.ROTATE),
        (ContentClass.CARDIAC, MotionPreset.PULSATE),
        (ContentClass.CARDIAC, MotionPreset.PAN_DOWN),
        (ContentClass.ULTRASOUND, MotionPreset.PAN_RIGHT),
        (ContentClass.ULTRASOUND, MotionPreset.STILL),
    ]
    videos = []
    for i in range(num_videos):
        cls, motion = pairings[i % len(pairings)]
        cfg = GeneratorConfig(
            width=width,
            height=height,
            num_frames=num_frames,
            content_class=cls,
            motion=motion,
            seed=seed + i,
        )
        videos.append(BioMedicalVideoGenerator(cfg).generate())
    return videos


def encode_cpu_seconds(stats: SequenceStats, cost_model: Optional[CostModel] = None) -> float:
    """Total simulated CPU time (s at f_max) of an encoded sequence."""
    model = cost_model or CostModel()
    return model.seconds(stats.ops, XEON_E5_2667.f_max)


@dataclass
class EncodeOutcome:
    """Sequence statistics plus simulated CPU time."""

    stats: SequenceStats
    cpu_seconds: float

    @property
    def psnr(self) -> float:
        return self.stats.average_psnr

    @property
    def total_bits(self) -> int:
        return self.stats.total_bits


def encode_with_search(
    video: Video,
    grid: TileGrid,
    search: str,
    qp: int = 32,
    window: int = 64,
    gop: GopConfig = GopConfig(8),
    cost_model: Optional[CostModel] = None,
) -> EncodeOutcome:
    """Encode with one classical search algorithm everywhere."""
    config = EncoderConfig(qp=qp, search=search, search_window=window)
    stats = VideoEncoder(config, gop).encode(video, grid)
    return EncodeOutcome(stats, encode_cpu_seconds(stats, cost_model))


def encode_with_proposed_policy(
    video: Video,
    grid: TileGrid,
    qp: int = 32,
    gop: GopConfig = GopConfig(8),
    search_config: ProposedSearchConfig = ProposedSearchConfig(),
    cost_model: Optional[CostModel] = None,
) -> EncodeOutcome:
    """Encode with the paper's combined bio-medical search (§III-C2).

    Drives the per-tile policy over a *fixed* grid (the Table I
    setting: uniform tiling, only the motion search differs): each
    frame's tile motion classes come from the content evaluator, the
    policy learns the motion direction on the first P frame of each
    GOP, and window sizes shrink for the rest of the GOP.
    """
    if len(video) == 0:
        raise ValueError("cannot encode an empty video")
    config = EncoderConfig(qp=qp, search="hexagon", search_window=64)
    evaluator = ContentEvaluator()
    policy = BioMedicalSearchPolicy(search_config)
    frame_encoder = FrameEncoder()
    stats = SequenceStats()
    reference: Optional[np.ndarray] = None
    previous_original: Optional[np.ndarray] = None
    configs = [config] * len(grid)

    for frame in video:
        frame_type = gop.frame_type(frame.index)
        pos = gop.position_in_gop(frame.index)
        if pos == 0:
            policy.start_gop()
        hooks = None
        if frame_type is FrameType.P:
            contents = evaluator.evaluate(grid, frame.luma, previous_original)
            is_first = pos <= 1
            hooks = [
                _policy_hook(policy, contents[i].motion, is_first, i)
                for i in range(len(grid))
            ]
        frame_stats, reconstruction = frame_encoder.encode(
            frame.luma, grid, configs, frame_type,
            reference=reference, frame_index=frame.index, motion_hooks=hooks,
        )
        stats.frames.append(frame_stats)
        reference = reconstruction
        previous_original = frame.luma
    return EncodeOutcome(stats, encode_cpu_seconds(stats, cost_model))


def _policy_hook(
    policy: BioMedicalSearchPolicy,
    motion: MotionClass,
    is_first_in_gop: bool,
    tile_index: int,
):
    def hook(ctx_factory, left_mv):
        return policy.search_block(
            ctx_factory, motion, is_first_in_gop, tile_index, left_mv=left_mv
        )

    return hook
