"""Fig. 4: average power savings of the proposed approach vs Khan et
al. [19] for different numbers of users (paper §IV-B2).

The paper sweeps 1, 2, 3, 4, 5, 6, 8, 10 and 12 users at equal
throughput (both approaches sustain every user's 24 fps) and reports up
to 44% average power savings; savings persist (40% down to 7%) even
beyond 16 users, where [19] saturates.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.allocation import KhanAllocator, ProposedAllocator
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.transcode.pipeline import PipelineConfig, PipelineMode, StreamTranscoder
from repro.transcode.server import TranscodingServer
from repro.video.frame import Video
from repro.experiments.common import medical_corpus

#: User counts on the paper's Fig. 4 x-axis.
FIG4_USER_COUNTS = (1, 2, 3, 4, 5, 6, 8, 10, 12)


@dataclass
class Fig4Result:
    """Power savings (%) per user count."""

    savings_percent: Dict[int, float] = field(default_factory=dict)
    power_proposed_w: Dict[int, float] = field(default_factory=dict)
    power_baseline_w: Dict[int, float] = field(default_factory=dict)

    @property
    def average_savings(self) -> float:
        return float(np.mean(list(self.savings_percent.values())))

    @property
    def peak_savings(self) -> float:
        return float(np.max(list(self.savings_percent.values())))


def run_fig4(
    width: int = 640,
    height: int = 480,
    num_frames: int = 16,
    seed: int = 0,
    num_videos: int = 4,
    fps: float = 24.0,
    user_counts: Sequence[int] = FIG4_USER_COUNTS,
    platform: MpsocConfig = XEON_E5_2667,
    videos: Optional[Sequence[Video]] = None,
) -> Fig4Result:
    """Regenerate Fig. 4 on the synthetic corpus."""
    if videos is None:
        videos = medical_corpus(
            width=width, height=height, num_frames=num_frames,
            seed=seed, num_videos=num_videos,
        )
    server = TranscodingServer(platform=platform, fps=fps)
    traces_p = [
        StreamTranscoder(
            PipelineConfig(mode=PipelineMode.PROPOSED, fps=fps, platform=platform)
        ).run(v)
        for v in videos
    ]
    traces_b = [
        StreamTranscoder(PipelineConfig.khan(fps=fps, platform=platform)).run(v)
        for v in videos
    ]
    alloc_p, alloc_b = ProposedAllocator(platform), KhanAllocator(platform)
    result = Fig4Result()
    for n in user_counts:
        rep_p = server.serve(traces_p, alloc_p, num_users=n)
        rep_b = server.serve(traces_b, alloc_b, num_users=n)
        result.power_proposed_w[n] = rep_p.average_power_w
        result.power_baseline_w[n] = rep_b.average_power_w
        result.savings_percent[n] = (
            (1.0 - rep_p.average_power_w / rep_b.average_power_w) * 100.0
        )
    return result


def format_fig4(result: Fig4Result) -> str:
    lines = [
        "FIG. 4 — average power savings vs [19] per number of users",
        f"{'users':>8}{'baseline (W)':>14}{'proposed (W)':>14}{'savings (%)':>13}",
    ]
    for n in sorted(result.savings_percent):
        lines.append(
            f"{n:>8}{result.power_baseline_w[n]:>14.1f}"
            f"{result.power_proposed_w[n]:>14.1f}"
            f"{result.savings_percent[n]:>13.1f}"
        )
    lines.append(
        f"average savings: {result.average_savings:.1f}% "
        f"(paper: up to 44% on average), peak {result.peak_savings:.1f}%"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=480)
    parser.add_argument("--frames", type=int, default=16)
    parser.add_argument("--videos", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run_fig4(
        width=args.width, height=args.height, num_frames=args.frames,
        seed=args.seed, num_videos=args.videos,
    )
    print(format_fig4(result))


if __name__ == "__main__":
    main()
