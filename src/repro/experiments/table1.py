"""Table I: speedup, PSNR loss, and bitrate degradation of (a) the
proposed motion estimation and (b) hexagon search, both against TZ
search, for uniform tilings 1x1 ... 5x6 (paper §IV-B1).

The paper encodes a 400-frame 640x480 medical video; the defaults here
use a shorter sequence so the harness completes in minutes on a pure-
Python codec — the metrics are ratios, which stabilise after a few
GOPs.  Pass ``--frames 400 --width 640 --height 480`` for the full run.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.platform.cost_model import CostModel
from repro.tiling.uniform import TABLE1_TILINGS, uniform_tiling
from repro.video.frame import Video
from repro.video.generator import ContentClass, MotionPreset, generate_video
from repro.experiments.common import (
    EncodeOutcome,
    encode_with_proposed_policy,
    encode_with_search,
)


@dataclass
class Table1Row:
    """Results of one algorithm at one tiling, relative to TZ search."""

    tiling: Tuple[int, int]
    speedup: float
    psnr_loss_db: float
    compression_loss_pct: float


@dataclass
class Table1Result:
    """Full Table I: per-tiling rows for the proposed and hexagon ME."""

    proposed: List[Table1Row]
    hexagon: List[Table1Row]

    def average_speedup(self, which: str = "proposed") -> float:
        rows = self.proposed if which == "proposed" else self.hexagon
        return sum(r.speedup for r in rows) / len(rows)


def _relative(outcome: EncodeOutcome, reference: EncodeOutcome,
              tiling: Tuple[int, int]) -> Table1Row:
    return Table1Row(
        tiling=tiling,
        speedup=reference.cpu_seconds / outcome.cpu_seconds,
        psnr_loss_db=reference.psnr - outcome.psnr,
        compression_loss_pct=(
            (outcome.total_bits - reference.total_bits)
            / reference.total_bits * 100.0
        ),
    )


def run_table1(
    width: int = 640,
    height: int = 480,
    num_frames: int = 32,
    seed: int = 0,
    qp: int = 32,
    motion_magnitude: float = 6.0,
    tilings: Optional[Sequence[Tuple[int, int]]] = None,
    video: Optional[Video] = None,
) -> Table1Result:
    """Regenerate Table I.

    ``tilings`` are (cols, rows) pairs; the paper's set is used by
    default.  A custom ``video`` overrides the synthetic default (a
    brain MRI-like pan sequence, the closest match to the paper's
    "400-frame medical video").
    """
    if video is None:
        video = generate_video(
            content_class=ContentClass.BRAIN,
            width=width, height=height, num_frames=num_frames,
            motion=MotionPreset.PAN_RIGHT, seed=seed,
            motion_magnitude=motion_magnitude,
        )
    tilings = list(tilings) if tilings is not None else list(TABLE1_TILINGS)
    cost_model = CostModel()
    proposed_rows = []
    hexagon_rows = []
    for cols, rows in tilings:
        grid = uniform_tiling(video.width, video.height, cols, rows)
        reference = encode_with_search(
            video, grid, "tz", qp=qp, window=64, cost_model=cost_model
        )
        hexagon = encode_with_search(
            video, grid, "hexagon", qp=qp, window=64, cost_model=cost_model
        )
        proposed = encode_with_proposed_policy(
            video, grid, qp=qp, cost_model=cost_model
        )
        proposed_rows.append(_relative(proposed, reference, (cols, rows)))
        hexagon_rows.append(_relative(hexagon, reference, (cols, rows)))
    return Table1Result(proposed=proposed_rows, hexagon=hexagon_rows)


def format_table1(result: Table1Result) -> str:
    """Render the result in the paper's Table I layout."""
    headers = [f"{c}x{r}" for (c, r) in (row.tiling for row in result.proposed)]
    lines = [
        "TABLE I — speedup / PSNR loss / bitrate degradation vs TZ search",
        "            " + "".join(f"{h:>8}" for h in headers),
    ]
    for label, rows in (("Proposed", result.proposed), ("Hexagonal", result.hexagon)):
        lines.append(
            f"{label:<10}  "
            + "".join(f"{r.speedup:>8.1f}" for r in rows)
            + "   speedup (x)"
        )
        lines.append(
            "            "
            + "".join(f"{r.psnr_loss_db:>8.2f}" for r in rows)
            + "   PSNR loss (dB)"
        )
        lines.append(
            "            "
            + "".join(f"{r.compression_loss_pct:>8.1f}" for r in rows)
            + "   compression loss (%)"
        )
    lines.append(
        f"average speedup: proposed {result.average_speedup('proposed'):.1f}x, "
        f"hexagon {result.average_speedup('hexagon'):.1f}x"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=480)
    parser.add_argument("--frames", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--qp", type=int, default=32)
    args = parser.parse_args(argv)
    result = run_table1(
        width=args.width, height=args.height,
        num_frames=args.frames, seed=args.seed, qp=args.qp,
    )
    print(format_table1(result))


if __name__ == "__main__":
    main()
