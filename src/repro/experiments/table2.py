"""Table II: PSNR, bitrate, and number of users served under a
saturated request queue (paper §IV-B2).

Paper values: proposed {PSNR max/min/avg = 46.5/39.9/40.5 dB, bitrate
2.45/2.10/2.23 Mbps, users 26/20/23} vs [19] {46.5/39.7/40.6 dB,
2.46/2.11/2.23 Mbps, users 16/12/15} — i.e. ~1.6x more users served at
equal quality and compression.

Our harness transcodes the 10-video synthetic corpus once per approach,
then serves a saturated queue of users cycling over the measured
traces.  User-count max/min/avg come from serving each single-class
sub-population (max: all users request the lightest class; min: the
heaviest) plus the mixed queue (avg), mirroring how a saturated queue's
composition moves the served count between the paper's min and max.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.allocation import KhanAllocator, ProposedAllocator
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.transcode.pipeline import PipelineConfig, PipelineMode, StreamTranscoder
from repro.transcode.server import TranscodingServer
from repro.video.frame import Video
from repro.experiments.common import medical_corpus


@dataclass
class Table2Side:
    """One approach's Table II row block.

    The averaged quality fields mirror :class:`ServingReport`: they are
    ``None`` when the mixed queue admitted zero users (e.g. a faults-only
    run on a platform with no surviving capacity) — there is no mean
    PSNR of an empty admission set.
    """

    name: str
    psnr_max: float
    psnr_min: float
    psnr_avg: Optional[float]
    bitrate_max: float
    bitrate_min: float
    bitrate_avg: Optional[float]
    users_max: int
    users_min: int
    users_avg: float


@dataclass
class Table2Result:
    proposed: Table2Side
    baseline: Table2Side

    @property
    def user_ratio(self) -> Optional[float]:
        """The paper's headline 1.6x throughput factor (``None`` when
        the baseline served zero users — the ratio is undefined)."""
        if self.baseline.users_avg == 0:
            return None
        return self.proposed.users_avg / self.baseline.users_avg


def _measure_side(name, videos: Sequence[Video], config_factory, allocator,
                  server: TranscodingServer) -> Table2Side:
    traces = [StreamTranscoder(config_factory()).run(v) for v in videos]
    # Mixed saturated queue -> average served count and quality stats.
    mixed = server.serve(traces, allocator)
    # Per-trace saturated queues -> served-count spread across queue
    # compositions (lightest/heaviest content class).
    per_trace_users = [
        server.serve([t], allocator).num_users_served for t in traces
    ]
    psnrs = [t.average_psnr for t in traces]
    rates = [t.bitrate_mbps for t in traces]
    return Table2Side(
        name=name,
        psnr_max=float(np.max(psnrs)),
        psnr_min=float(np.min(psnrs)),
        psnr_avg=mixed.psnr_avg,
        bitrate_max=float(np.max(rates)),
        bitrate_min=float(np.min(rates)),
        bitrate_avg=mixed.bitrate_avg_mbps,
        users_max=int(np.max(per_trace_users)),
        users_min=int(np.min(per_trace_users)),
        users_avg=float(mixed.num_users_served),
    )


def run_table2(
    width: int = 640,
    height: int = 480,
    num_frames: int = 16,
    seed: int = 0,
    num_videos: int = 10,
    fps: float = 24.0,
    platform: MpsocConfig = XEON_E5_2667,
    videos: Optional[Sequence[Video]] = None,
) -> Table2Result:
    """Regenerate Table II on the synthetic corpus."""
    if videos is None:
        videos = medical_corpus(
            width=width, height=height, num_frames=num_frames,
            seed=seed, num_videos=num_videos,
        )
    server = TranscodingServer(platform=platform, fps=fps)
    proposed = _measure_side(
        "Proposed", videos,
        lambda: PipelineConfig(mode=PipelineMode.PROPOSED, fps=fps, platform=platform),
        ProposedAllocator(platform), server,
    )
    baseline = _measure_side(
        "Work [19]", videos,
        lambda: PipelineConfig.khan(fps=fps, platform=platform),
        KhanAllocator(platform), server,
    )
    return Table2Result(proposed=proposed, baseline=baseline)


def _fmt(value: Optional[float], spec: str, width: int) -> str:
    """Right-aligned formatted value, or ``n/a`` when undefined."""
    if value is None:
        return f"{'n/a':>{width}}"
    return f"{value:>{width}{spec}}"


def format_table2(result: Table2Result) -> str:
    lines = [
        "TABLE II — PSNR, bitrate, and number of served users",
        f"{'':<12}{'PSNR (dB)':>12}{'Bitrate (Mbps)':>16}{'# of Users':>12}",
    ]
    for side in (result.proposed, result.baseline):
        lines.append(f"{side.name:<12}{'Max':>6}{side.psnr_max:>6.1f}"
                     f"{side.bitrate_max:>16.2f}{side.users_max:>12d}")
        lines.append(f"{'':<12}{'Min':>6}{side.psnr_min:>6.1f}"
                     f"{side.bitrate_min:>16.2f}{side.users_min:>12d}")
        lines.append(f"{'':<12}{'Avg':>6}{_fmt(side.psnr_avg, '.1f', 6)}"
                     f"{_fmt(side.bitrate_avg, '.2f', 16)}{side.users_avg:>12.0f}")
    ratio = result.user_ratio
    if ratio is None:
        lines.append("throughput factor (proposed/baseline users): "
                     "n/a (baseline served zero users)")
    else:
        lines.append(f"throughput factor (proposed/baseline users): "
                     f"{ratio:.2f}x (paper: 1.6x)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=640)
    parser.add_argument("--height", type=int, default=480)
    parser.add_argument("--frames", type=int, default=16)
    parser.add_argument("--videos", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run_table2(
        width=args.width, height=args.height, num_frames=args.frames,
        seed=args.seed, num_videos=args.videos,
    )
    print(format_table2(result))


if __name__ == "__main__":
    main()
