"""Video substrate: frames, synthetic bio-medical video generation, metrics, I/O.

The paper evaluates on ten anonymized clinical videos (640x480 @ 24 fps)
that are not publicly available.  This package provides a synthetic
generator (:mod:`repro.video.generator`) that reproduces the statistical
properties the paper's mechanisms exploit: information concentrated in
the centre of the frame, globally consistent motion (rotation or
translation along one axis), low-texture borders, and per-body-part
content classes.
"""

from repro.video.frame import Frame, Video
from repro.video.generator import (
    BioMedicalVideoGenerator,
    ContentClass,
    GeneratorConfig,
)
from repro.video.metrics import mse, psnr, bitrate_mbps

__all__ = [
    "Frame",
    "Video",
    "BioMedicalVideoGenerator",
    "ContentClass",
    "GeneratorConfig",
    "mse",
    "psnr",
    "bitrate_mbps",
]
