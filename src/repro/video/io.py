"""Minimal video file I/O.

Two interchange formats are supported:

* ``.npz`` — all luma planes stacked in one compressed archive together
  with the frame rate and a name.  This is the native format used by the
  examples and benchmark harness to cache generated videos.
* ``.yuv`` — raw planar 8-bit luma-only (4:0:0) for interoperability
  with external tools; dimensions and fps must be supplied on load.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.video.frame import Frame, Video

PathLike = Union[str, "os.PathLike[str]"]


def save_npz(video: Video, path: PathLike) -> None:
    """Save a video's luma planes, fps and name to a compressed .npz."""
    if len(video) == 0:
        raise ValueError("refusing to save an empty video")
    stack = np.stack([f.luma for f in video.frames])
    np.savez_compressed(path, luma=stack, fps=video.fps, name=video.name)


def load_npz(path: PathLike) -> Video:
    """Load a video previously written by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        stack = data["luma"]
        fps = float(data["fps"])
        name = str(data["name"])
    frames = [Frame(stack[i], index=i) for i in range(stack.shape[0])]
    return Video(frames=frames, fps=fps, name=name)


def save_yuv400(video: Video, path: PathLike) -> None:
    """Write raw planar luma-only 8-bit frames."""
    if len(video) == 0:
        raise ValueError("refusing to save an empty video")
    with open(path, "wb") as fh:
        for frame in video:
            fh.write(frame.luma.tobytes())


def load_yuv400(path: PathLike, width: int, height: int, fps: float = 24.0,
                name: str = "video") -> Video:
    """Read raw planar luma-only 8-bit frames of known dimensions."""
    frame_bytes = width * height
    frames = []
    with open(path, "rb") as fh:
        index = 0
        while True:
            buf = fh.read(frame_bytes)
            if not buf:
                break
            if len(buf) != frame_bytes:
                raise ValueError(
                    f"truncated frame {index}: got {len(buf)} of {frame_bytes} bytes"
                )
            plane = np.frombuffer(buf, dtype=np.uint8).reshape(height, width)
            frames.append(Frame(plane.copy(), index=index))
            index += 1
    return Video(frames=frames, fps=fps, name=name)
