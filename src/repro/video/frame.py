"""Frame and video containers.

The codec operates on 8-bit luma (Y) planes, matching the paper's focus:
texture evaluation uses "the diversity in luma samples" and motion
estimation operates on luma only.  Chroma planes are carried along
(4:2:0) when present but all cost/quality accounting is luma-based,
which is the HEVC common-test-condition convention for PSNR-Y.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np


@dataclass
class Frame:
    """A single video frame.

    Parameters
    ----------
    luma:
        ``(height, width)`` array of ``uint8`` luma samples.
    index:
        Display index of the frame within its video (0-based).
    chroma_u, chroma_v:
        Optional 4:2:0 chroma planes of shape ``(height//2, width//2)``.
    """

    luma: np.ndarray
    index: int = 0
    chroma_u: Optional[np.ndarray] = None
    chroma_v: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.luma = np.asarray(self.luma)
        if self.luma.ndim != 2:
            raise ValueError(f"luma must be 2-D, got shape {self.luma.shape}")
        if self.luma.dtype != np.uint8:
            self.luma = np.clip(np.rint(self.luma), 0, 255).astype(np.uint8)

    @property
    def height(self) -> int:
        return int(self.luma.shape[0])

    @property
    def width(self) -> int:
        return int(self.luma.shape[1])

    @property
    def shape(self) -> tuple:
        return self.luma.shape

    @property
    def num_pixels(self) -> int:
        return self.height * self.width

    def crop(self, x: int, y: int, width: int, height: int) -> np.ndarray:
        """Return a view of the luma plane for the given rectangle."""
        if x < 0 or y < 0 or x + width > self.width or y + height > self.height:
            raise ValueError(
                f"crop ({x},{y},{width},{height}) outside frame "
                f"{self.width}x{self.height}"
            )
        return self.luma[y : y + height, x : x + width]

    def copy(self) -> "Frame":
        return Frame(
            luma=self.luma.copy(),
            index=self.index,
            chroma_u=None if self.chroma_u is None else self.chroma_u.copy(),
            chroma_v=None if self.chroma_v is None else self.chroma_v.copy(),
        )

    @classmethod
    def blank(cls, width: int, height: int, value: int = 0, index: int = 0) -> "Frame":
        """Create a uniform frame (useful in tests)."""
        return cls(np.full((height, width), value, dtype=np.uint8), index=index)


@dataclass
class Video:
    """An ordered sequence of frames with a frame rate.

    Videos are small enough in this reproduction (hundreds of frames at
    VGA or below) to keep in memory; streaming input is modelled by
    iterating over the frames.
    """

    frames: List[Frame] = field(default_factory=list)
    fps: float = 24.0
    name: str = "video"

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError(f"fps must be positive, got {self.fps}")
        for i, frame in enumerate(self.frames):
            frame.index = i

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __getitem__(self, idx: int) -> Frame:
        return self.frames[idx]

    @property
    def width(self) -> int:
        self._require_nonempty()
        return self.frames[0].width

    @property
    def height(self) -> int:
        self._require_nonempty()
        return self.frames[0].height

    @property
    def duration_seconds(self) -> float:
        return len(self.frames) / self.fps

    def append(self, frame: Frame) -> None:
        frame.index = len(self.frames)
        self.frames.append(frame)

    def _require_nonempty(self) -> None:
        if not self.frames:
            raise ValueError("video has no frames")

    @classmethod
    def from_arrays(
        cls, arrays: Sequence[np.ndarray], fps: float = 24.0, name: str = "video"
    ) -> "Video":
        return cls(frames=[Frame(a, index=i) for i, a in enumerate(arrays)], fps=fps, name=name)
