"""Video quality and rate metrics (PSNR, MSE, bitrate).

PSNR is computed on luma (PSNR-Y), the convention used by the paper's
Table I/II numbers and by the HEVC common test conditions.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

#: Peak sample value for 8-bit video.
PEAK_8BIT = 255.0

#: PSNR value reported for a bit-exact reconstruction (MSE == 0).
#: A finite cap keeps averages well-defined; 100 dB is far above any
#: lossy operating point.
LOSSLESS_PSNR_DB = 100.0


def mse(reference: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error between two planes of identical shape."""
    reference = np.asarray(reference, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if reference.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {reconstructed.shape}"
        )
    diff = reference - reconstructed
    return float(np.mean(diff * diff))


def psnr(reference: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB for 8-bit planes."""
    err = mse(reference, reconstructed)
    if err == 0:
        return LOSSLESS_PSNR_DB
    return 10.0 * math.log10(PEAK_8BIT * PEAK_8BIT / err)


def psnr_from_mse(err: float) -> float:
    """PSNR (dB) from a precomputed MSE."""
    if err < 0:
        raise ValueError(f"MSE must be non-negative, got {err}")
    if err == 0:
        return LOSSLESS_PSNR_DB
    return 10.0 * math.log10(PEAK_8BIT * PEAK_8BIT / err)


def average_psnr(psnrs: Iterable[float]) -> float:
    """Arithmetic mean of per-frame PSNR values (CTC convention)."""
    values = list(psnrs)
    if not values:
        raise ValueError("no PSNR values to average")
    return float(np.mean(values))


def bitrate_mbps(total_bits: int, num_frames: int, fps: float) -> float:
    """Average bitrate in Mbps given total coded bits of a sequence."""
    if num_frames <= 0:
        raise ValueError("num_frames must be positive")
    if fps <= 0:
        raise ValueError("fps must be positive")
    seconds = num_frames / fps
    return total_bits / seconds / 1e6


def bd_rate_proxy(bits_a: Sequence[int], bits_b: Sequence[int]) -> float:
    """Relative rate difference (%) of stream *a* vs stream *b*.

    A lightweight stand-in for BD-rate when both streams are encoded at
    the same quality operating point, as in the paper's Table I
    "compression loss (%)" rows: positive means *a* spends more bits.
    """
    total_a = float(sum(bits_a))
    total_b = float(sum(bits_b))
    if total_b <= 0:
        raise ValueError("reference stream has no bits")
    return (total_a - total_b) / total_b * 100.0
