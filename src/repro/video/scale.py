"""Bit-exact integer downscaling for the rendition ladder.

Rendition ladders (``repro.ladder``) derive every rung from the full
resolution ingest by *box averaging*: output pixel ``(i, j)`` is the
integer mean of the source rows ``[i*H // h_out, (i+1)*H // h_out)``
by columns ``[j*W // w_out, (j+1)*W // w_out)``, accumulated in int64
and floor-divided by the box population.  The scheme is chosen for
determinism, not visual polish:

* it is defined for *every* geometry — non-integer ratios and odd
  dimensions included — because the box edges are pure integer floor
  expressions and every box holds at least one pixel whenever the
  output is no larger than the input;
* the arithmetic is exact (integer sums commute), so the native C
  kernel (:func:`repro.native.downscale_box`) is bit-identical to the
  NumPy oracle here by construction, the property `tests/test_ladder.py`
  checks with hypothesis;
* it **never upscales**: a rung larger than the ingest has boxes with
  zero pixels, so the request is rejected up front (the ladder-wide
  rule of the same name descends from this check).

All quality accounting upstream stays luma-based (PSNR-Y); chroma
planes ride along through :func:`downscale_frame` using the same box
method at 4:2:0 geometry.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import native
from repro.video.frame import Frame

__all__ = [
    "box_edges",
    "downscale_box_reference",
    "downscale_plane",
    "downscale_frame",
]


def box_edges(n_in: int, n_out: int) -> np.ndarray:
    """The ``n_out + 1`` box boundaries ``edges[i] = i * n_in // n_out``.

    Strictly increasing whenever ``n_out <= n_in`` (each box spans at
    least ``floor(n_in / n_out) >= 1`` samples), which is what makes
    the reduceat segments below non-empty.
    """
    if n_out <= 0:
        raise ValueError(f"output extent must be positive, got {n_out}")
    if n_out > n_in:
        raise ValueError(
            f"box downscale never upscales: {n_in} -> {n_out}"
        )
    return (np.arange(n_out + 1, dtype=np.int64) * n_in) // n_out


def downscale_box_reference(
    plane: np.ndarray, out_h: int, out_w: int
) -> np.ndarray:
    """NumPy oracle: exact integer box downscale of a 2-D plane.

    Accepts any integer dtype (sums are taken in int64); returns uint8,
    matching the codec's sample type.  This is the semantic ground
    truth the native kernel is tested against.
    """
    if plane.ndim != 2:
        raise ValueError(f"plane must be 2-D, got shape {plane.shape}")
    h, w = plane.shape
    redges = box_edges(h, out_h)
    cedges = box_edges(w, out_w)
    if (out_h, out_w) == (h, w):
        return plane.astype(np.uint8, copy=True)
    rows = np.add.reduceat(plane.astype(np.int64), redges[:-1], axis=0)
    sums = np.add.reduceat(rows, cedges[:-1], axis=1)
    counts = np.outer(np.diff(redges), np.diff(cedges))
    return (sums // counts).astype(np.uint8)


def downscale_plane(plane: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Box-downscale a uint8 plane, using the native kernel when loaded.

    Native and NumPy paths are bit-identical, so callers (and the
    ladder's bit-identity guarantees) never depend on which one ran.
    """
    if plane.ndim != 2:
        raise ValueError(f"plane must be 2-D, got shape {plane.shape}")
    h, w = plane.shape
    if not (1 <= out_h <= h) or not (1 <= out_w <= w):
        raise ValueError(
            f"box downscale never upscales: {w}x{h} -> {out_w}x{out_h}"
        )
    if plane.dtype == np.uint8 and plane.flags.c_contiguous:
        out = native.downscale_box(plane, out_h, out_w)
        if out is not None:
            return out
    return downscale_box_reference(plane, out_h, out_w)


def chroma_dims(out_w: int, out_h: int) -> Tuple[int, int]:
    """4:2:0 chroma geometry for a ``out_w x out_h`` luma plane."""
    return out_w // 2, out_h // 2


def downscale_frame(frame: Frame, out_w: int, out_h: int) -> Frame:
    """Downscale a frame (luma + any 4:2:0 chroma) to ``out_w x out_h``.

    A same-size request returns a copy, so ladder rungs at ingest
    resolution never alias the shared ingest buffer.
    """
    if (out_h, out_w) == frame.luma.shape:
        return frame.copy()
    luma = downscale_plane(frame.luma, out_h, out_w)
    cw, ch = chroma_dims(out_w, out_h)
    u = v = None
    if frame.chroma_u is not None and cw >= 1 and ch >= 1:
        u = downscale_plane(np.ascontiguousarray(frame.chroma_u), ch, cw)
        if frame.chroma_v is not None:
            v = downscale_plane(np.ascontiguousarray(frame.chroma_v), ch, cw)
    return Frame(luma=luma, index=frame.index, chroma_u=u, chroma_v=v)
