"""Synthetic bio-medical video generator.

The paper's evaluation uses ten anonymized clinical videos provided by
medical partners (640x480 @ 24 fps).  Those are not available, so this
module synthesizes videos that reproduce the *properties the paper's
mechanisms key on* (cf. DESIGN.md, substitution table):

1. Useful information concentrates on the centre of the frame (Fig. 1 of
   the paper): an elliptical anatomy phantom sits at the centre over a
   near-black border region.
2. The whole frame moves in the same direction: specialists rotate or
   pan the volume along one axis, so motion is a global affine map whose
   direction is piecewise-constant over seconds.
3. Borders and corners have low texture and low motion; the centre has
   high texture.
4. Videos are classifiable in few categories by body part (bones, lung
   and chest, brain, etc.) with similar workload statistics per class —
   this is what makes the paper's LUT reuse across videos of one class
   work.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.video.frame import Frame, Video


class ContentClass(enum.Enum):
    """Body-part content classes (paper §III-D1).

    The paper notes medical images "are classifiable in very limited
    categories based on part of the body that is under the study (such
    as bones, lung and chest, brain, spinal cord, ligament and tendon)".
    """

    BRAIN = "brain"
    BONE = "bone"
    LUNG = "lung"
    CARDIAC = "cardiac"
    ULTRASOUND = "ultrasound"


class MotionPreset(enum.Enum):
    """Global motion patterns observed in diagnostic viewing sessions."""

    PAN_RIGHT = "pan_right"
    PAN_DOWN = "pan_down"
    ROTATE = "rotate"
    PULSATE = "pulsate"
    STILL = "still"


@dataclass
class GeneratorConfig:
    """Configuration for :class:`BioMedicalVideoGenerator`.

    Defaults mirror the paper's setup: VGA resolution at 24 fps.
    ``motion_magnitude`` is expressed in pixels/frame for pans and
    degrees/frame for rotation.
    """

    width: int = 640
    height: int = 480
    num_frames: int = 48
    fps: float = 24.0
    content_class: ContentClass = ContentClass.BRAIN
    motion: MotionPreset = MotionPreset.PAN_RIGHT
    motion_magnitude: float = 1.5
    noise_sigma: float = 2.0
    seed: int = 0
    # Direction of panning/rotation is re-drawn every `redirect_seconds`
    # (specialists change the viewing axis only occasionally).
    redirect_seconds: float = 4.0
    #: Also synthesize 4:2:0 chroma planes.  Medical imagery is mostly
    #: grayscale with a modality-specific tint (e.g. doppler overlays,
    #: stained endoscopy); chroma is a smooth function of luma here.
    with_chroma: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("frame dimensions must be positive")
        if self.num_frames < 0:
            raise ValueError("num_frames must be non-negative")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")


def _elliptical_mask(height: int, width: int, rx: float, ry: float) -> np.ndarray:
    """Soft elliptical mask centred in an ``(height, width)`` grid.

    ``rx``/``ry`` are radii in pixels; callers size them relative to
    the *frame*, not the oversized world, so the anatomy keeps the dark
    border region that characterises medical frames (paper Fig. 1).
    """
    yy, xx = np.mgrid[0:height, 0:width]
    cy, cx = (height - 1) / 2.0, (width - 1) / 2.0
    dist = ((xx - cx) / rx) ** 2 + ((yy - cy) / ry) ** 2
    # Smooth roll-off near the boundary keeps gradients realistic.
    return np.clip(1.2 - dist, 0.0, 1.0)


def _smooth_noise(rng: np.random.Generator, shape: Tuple[int, int], sigma: float) -> np.ndarray:
    """Zero-mean spatially-correlated noise in [-1, 1]."""
    raw = rng.standard_normal(shape)
    smooth = ndimage.gaussian_filter(raw, sigma=sigma)
    peak = np.max(np.abs(smooth))
    return smooth / peak if peak > 0 else smooth


class BioMedicalVideoGenerator:
    """Generate synthetic bio-medical videos.

    Example
    -------
    >>> gen = BioMedicalVideoGenerator(GeneratorConfig(width=320, height=240,
    ...                                                num_frames=8))
    >>> video = gen.generate()
    >>> len(video), video.width, video.height
    (8, 320, 240)
    """

    #: Oversize factor of the static "anatomy world" relative to the
    #: frame, so pans/rotations never sample outside the texture.
    WORLD_MARGIN = 0.35

    def __init__(self, config: Optional[GeneratorConfig] = None):
        self.config = config or GeneratorConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._world: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Anatomy phantom synthesis
    # ------------------------------------------------------------------
    def _build_world(self) -> np.ndarray:
        """Build the static anatomy texture sampled by every frame."""
        cfg = self.config
        wh = int(cfg.height * (1 + 2 * self.WORLD_MARGIN))
        ww = int(cfg.width * (1 + 2 * self.WORLD_MARGIN))
        builder = {
            ContentClass.BRAIN: self._brain_world,
            ContentClass.BONE: self._bone_world,
            ContentClass.LUNG: self._lung_world,
            ContentClass.CARDIAC: self._cardiac_world,
            ContentClass.ULTRASOUND: self._ultrasound_world,
        }[cfg.content_class]
        world = builder(wh, ww)
        return np.clip(world, 0, 255)

    def _anatomy_base(self, h: int, w: int, rx_scale: float, ry_scale: float) -> np.ndarray:
        """Dark background + soft elliptical body outline.

        Radii scale with the *frame* dimensions so the anatomy keeps
        the dark, low-texture borders of real medical frames even
        though the world texture is oversized for motion headroom.
        """
        fw, fh = self.config.width, self.config.height
        base = np.full((h, w), 14.0)
        body = _elliptical_mask(h, w, rx=fw * rx_scale, ry=fh * ry_scale)
        base += body * 50.0
        return base

    def _brain_world(self, h: int, w: int) -> np.ndarray:
        fw, fh = self.config.width, self.config.height
        world = self._anatomy_base(h, w, 0.30, 0.33)
        inner = _elliptical_mask(h, w, rx=fw * 0.26, ry=fh * 0.29)
        # Gyri/sulci: medium-contrast correlated blobs.
        folds = _smooth_noise(self._rng, (h, w), sigma=4.0)
        world += inner * (90.0 + 70.0 * folds)
        # Skull rim: bright ring.
        outer = _elliptical_mask(h, w, rx=fw * 0.30, ry=fh * 0.33)
        ring = np.clip(outer - inner * 1.05, 0, 1)
        world += ring * 140.0
        return world

    def _bone_world(self, h: int, w: int) -> np.ndarray:
        fw, fh = self.config.width, self.config.height
        world = self._anatomy_base(h, w, 0.28, 0.38)
        inner = _elliptical_mask(h, w, rx=fw * 0.24, ry=fh * 0.36)
        # Long bright shafts with sharp edges (high contrast).
        yy, xx = np.mgrid[0:h, 0:w]
        shafts = np.zeros((h, w))
        for k in range(3):
            cx = w / 2.0 + fw * 0.12 * (k - 1)
            width_px = fw * 0.035
            shaft = np.exp(-(((xx - cx) / width_px) ** 4))
            shafts = np.maximum(shafts, shaft)
        trabecular = _smooth_noise(self._rng, (h, w), sigma=1.5)
        world += inner * (shafts * 190.0 + 35.0 + 45.0 * np.abs(trabecular))
        return world

    def _lung_world(self, h: int, w: int) -> np.ndarray:
        fw, fh = self.config.width, self.config.height
        world = self._anatomy_base(h, w, 0.32, 0.36)
        inner = _elliptical_mask(h, w, rx=fw * 0.28, ry=fh * 0.32)
        # Air-filled lungs: dark fields with faint vessels.
        vessels = np.abs(_smooth_noise(self._rng, (h, w), sigma=2.0))
        vessels = np.where(vessels > 0.55, vessels, 0.0)
        world += inner * (25.0 + vessels * 110.0)
        # Mediastinum: bright central column.
        yy, xx = np.mgrid[0:h, 0:w]
        column = np.exp(-(((xx - w / 2) / (fw * 0.06)) ** 2))
        world += inner * column * 120.0
        return world

    def _cardiac_world(self, h: int, w: int) -> np.ndarray:
        fw, fh = self.config.width, self.config.height
        world = self._anatomy_base(h, w, 0.30, 0.32)
        inner = _elliptical_mask(h, w, rx=fw * 0.22, ry=fh * 0.24)
        chambers = _smooth_noise(self._rng, (h, w), sigma=6.0)
        world += inner * (100.0 + 80.0 * chambers)
        # Myocardial wall.
        wall = np.clip(
            _elliptical_mask(h, w, rx=fw * 0.24, ry=fh * 0.26) - inner * 1.1, 0, 1
        )
        world += wall * 110.0
        return world

    def _ultrasound_world(self, h: int, w: int) -> np.ndarray:
        fw, fh = self.config.width, self.config.height
        world = np.full((h, w), 8.0)
        # Fan-shaped insonified sector, apex near the top of the frame
        # window (the world is oversized; the frame samples its centre).
        yy, xx = np.mgrid[0:h, 0:w]
        cy, cx = h / 2.0 - fh * 0.45, w / 2.0
        angle = np.arctan2(xx - cx, yy - cy)
        radius = np.hypot(xx - cx, yy - cy)
        sector = (np.abs(angle) < math.radians(38)) & (radius < fh * 0.85)
        speckle = np.abs(self._rng.standard_normal((h, w)))
        tissue = 60.0 + 55.0 * _smooth_noise(self._rng, (h, w), sigma=5.0)
        world += sector * tissue * (0.55 + 0.45 * speckle)
        return world

    # ------------------------------------------------------------------
    # Motion model
    # ------------------------------------------------------------------
    def _motion_direction(self, frame_index: int) -> Tuple[float, float, float]:
        """Per-frame (dx, dy, dtheta) increments.

        Direction is piecewise constant over ``redirect_seconds`` so
        that, as in the paper, "even after 24 frames the initial tiling
        is still valid" and the whole frame moves in one direction.
        """
        cfg = self.config
        seg = int(frame_index / (cfg.fps * cfg.redirect_seconds))
        seg_rng = np.random.default_rng((cfg.seed, seg, 0xB10))
        mag = cfg.motion_magnitude
        if cfg.motion is MotionPreset.STILL:
            return 0.0, 0.0, 0.0
        if cfg.motion is MotionPreset.PAN_RIGHT:
            return mag, 0.0, 0.0
        if cfg.motion is MotionPreset.PAN_DOWN:
            return 0.0, mag, 0.0
        if cfg.motion is MotionPreset.ROTATE:
            sign = 1.0 if seg_rng.random() < 0.5 else -1.0
            return 0.0, 0.0, sign * mag
        if cfg.motion is MotionPreset.PULSATE:
            # Radial scale handled in _render; here only slight drift.
            return 0.25 * mag, 0.0, 0.0
        raise ValueError(f"unknown motion preset {cfg.motion}")

    def _render(self, offset_x: float, offset_y: float, theta_deg: float,
                scale: float) -> np.ndarray:
        """Sample the frame window from the world under the current pose."""
        cfg = self.config
        world = self._world
        assert world is not None
        wh, ww = world.shape
        cy, cx = (wh - 1) / 2.0, (ww - 1) / 2.0
        theta = math.radians(theta_deg)
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        # Inverse map: output pixel -> world coordinate.
        inv_scale = 1.0 / scale
        matrix = np.array(
            [[cos_t * inv_scale, -sin_t * inv_scale],
             [sin_t * inv_scale, cos_t * inv_scale]]
        )
        out_c = np.array([(cfg.height - 1) / 2.0, (cfg.width - 1) / 2.0])
        world_c = np.array([cy + offset_y, cx + offset_x])
        offset = world_c - matrix @ out_c
        sampled = ndimage.affine_transform(
            world, matrix, offset=offset,
            output_shape=(cfg.height, cfg.width), order=1, mode="nearest",
        )
        return sampled

    #: Per-class chroma tint (dU, dV per unit of normalised luma).
    _TINTS = {
        ContentClass.BRAIN: (-6.0, 4.0),
        ContentClass.BONE: (-3.0, 8.0),
        ContentClass.LUNG: (5.0, -4.0),
        ContentClass.CARDIAC: (-8.0, 12.0),
        ContentClass.ULTRASOUND: (10.0, -6.0),
    }

    def _synthesize_chroma(self, luma: np.ndarray):
        """4:2:0 chroma planes: a smooth modality tint over the luma."""
        du, dv = self._TINTS[self.config.content_class]
        h, w = luma.shape
        sub = luma[: h - h % 2, : w - w % 2].astype(np.float64)
        sub = (sub[0::2, 0::2] + sub[1::2, 0::2]
               + sub[0::2, 1::2] + sub[1::2, 1::2]) / 4.0
        norm = (sub - 128.0) / 128.0
        u = np.clip(128.0 + du * norm * 8.0, 0, 255).astype(np.uint8)
        v = np.clip(128.0 + dv * norm * 8.0, 0, 255).astype(np.uint8)
        return u, v

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> Video:
        """Generate the full configured video."""
        cfg = self.config
        if self._world is None:
            self._world = self._build_world()
        frames = []
        off_x, off_y, theta = 0.0, 0.0, 0.0
        for i in range(cfg.num_frames):
            dx, dy, dth = self._motion_direction(i)
            off_x += dx
            off_y += dy
            theta += dth
            scale = 1.0
            if cfg.motion is MotionPreset.PULSATE:
                # Heartbeat at ~1.2 Hz.
                scale = 1.0 + 0.03 * math.sin(2 * math.pi * 1.2 * i / cfg.fps)
            pixels = self._render(off_x, off_y, theta, scale)
            if cfg.noise_sigma > 0:
                pixels = pixels + self._rng.normal(0.0, cfg.noise_sigma, pixels.shape)
            luma = np.clip(pixels, 0, 255).astype(np.uint8)
            frame = Frame(luma, index=i)
            if cfg.with_chroma:
                frame.chroma_u, frame.chroma_v = self._synthesize_chroma(luma)
            frames.append(frame)
        return Video(frames=frames, fps=cfg.fps,
                     name=f"{cfg.content_class.value}_{cfg.motion.value}_{cfg.seed}")


def generate_video(
    content_class: ContentClass = ContentClass.BRAIN,
    width: int = 640,
    height: int = 480,
    num_frames: int = 48,
    motion: MotionPreset = MotionPreset.PAN_RIGHT,
    seed: int = 0,
    **kwargs,
) -> Video:
    """Convenience wrapper around :class:`BioMedicalVideoGenerator`."""
    cfg = GeneratorConfig(
        width=width, height=height, num_frames=num_frames,
        content_class=content_class, motion=motion, seed=seed, **kwargs,
    )
    return BioMedicalVideoGenerator(cfg).generate()
