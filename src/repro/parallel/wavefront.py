"""Wavefront Parallel Processing (WPP) schedule simulation [17].

In WPP each CTU row is a thread, but CTU ``(r, c)`` may start only
after its left neighbour ``(r, c-1)`` and the top-right neighbour of
the previous row ``(r-1, c+1)`` finish (the CABAC-context and
intra-prediction dependencies).  This module list-schedules a frame's
CTU cost matrix onto ``num_cores`` workers under those dependencies
and reports the makespan — the quantitative form of the paper's
"wavefront dependencies prevent all partitions from being processed
concurrently".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class WavefrontSchedule:
    """Outcome of a WPP simulation."""

    makespan: float
    num_cores: int
    total_work: float
    start_times: np.ndarray  # (rows, cols) start time of each CTU
    finish_times: np.ndarray

    @property
    def serial_time(self) -> float:
        return self.total_work

    @property
    def speedup(self) -> float:
        """Speedup over single-core encoding."""
        if self.makespan <= 0:
            return 1.0
        return self.total_work / self.makespan

    @property
    def efficiency(self) -> float:
        """Fraction of the core-seconds actually used."""
        if self.makespan <= 0:
            return 1.0
        return self.total_work / (self.makespan * self.num_cores)

    @property
    def critical_path(self) -> float:
        """Lower bound on the makespan from the dependency chain."""
        return float(self.finish_times.max())


def _dependencies(r: int, c: int, cols: int) -> List[Tuple[int, int]]:
    deps = []
    if c > 0:
        deps.append((r, c - 1))
    if r > 0:
        deps.append((r - 1, min(c + 1, cols - 1)))
    return deps


def simulate_wavefront(costs: np.ndarray, num_cores: int) -> WavefrontSchedule:
    """List-schedule a CTU cost matrix under WPP dependencies.

    ``costs[r, c]`` is the CPU time of CTU ``(row r, column c)``.
    Rows are bound to workers in round-robin order when more rows than
    cores exist (the standard WPP thread pool behaviour); within its
    assigned rows a worker processes CTUs left to right, waiting for
    the top-right dependency.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 2:
        raise ValueError("costs must be a 2-D (rows x cols) matrix")
    if num_cores < 1:
        raise ValueError("need at least one core")
    rows, cols = costs.shape

    start = np.zeros((rows, cols))
    finish = np.zeros((rows, cols))
    # Event-driven list scheduling: a CTU becomes *pending* when all
    # its dependencies completed; the earliest-ready pending CTU is
    # dispatched to the earliest-free worker.
    scheduled = set()
    free_heap = [(0.0, w) for w in range(num_cores)]
    heapq.heapify(free_heap)

    pending: List[Tuple[float, int, int]] = [(0.0, 0, 0)]
    heapq.heapify(pending)
    completed = 0
    total = rows * cols
    while completed < total:
        if not pending:
            raise RuntimeError("wavefront deadlock: no ready CTU")
        ready_time, r, c = heapq.heappop(pending)
        if (r, c) in scheduled:
            continue
        scheduled.add((r, c))
        free_time, worker = heapq.heappop(free_heap)
        begin = max(ready_time, free_time)
        end = begin + costs[r, c]
        start[r, c] = begin
        finish[r, c] = end
        heapq.heappush(free_heap, (end, worker))
        completed += 1
        # Determine newly ready CTUs among the possible dependents.
        dependents = []
        if c + 1 < cols:
            dependents.append((r, c + 1))
        if r + 1 < rows:
            # (r+1, c') depends on (r, c'+1): our completion enables
            # (r+1, c-1).
            if 0 <= c - 1 < cols:
                dependents.append((r + 1, c - 1))
            elif c == cols - 1:
                # Last CTU of a row also gates (r+1, cols-1) whose
                # top-right dependency clamps to (r, cols-1).
                dependents.append((r + 1, cols - 1))
        for nr, nc in dependents:
            if (nr, nc) in scheduled:
                continue
            deps = _dependencies(nr, nc, cols)
            if all(d in scheduled for d in deps):
                ready = max(finish[d] for d in deps)
                heapq.heappush(pending, (float(ready), nr, nc))

    return WavefrontSchedule(
        makespan=float(finish.max()),
        num_cores=num_cores,
        total_work=float(costs.sum()),
        start_times=start,
        finish_times=finish,
    )
