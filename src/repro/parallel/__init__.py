"""Alternative frame/stream parallelization schemes (paper §II-C).

HEVC offers two frame-level parallelization schemes besides tiles:

* **Wavefront Parallel Processing (WPP)** [17] — CTU rows run in
  parallel, but each CTU waits for its left neighbour and the
  top-right neighbour of the row above; "wavefront dependencies
  prevent all partitions from being processed concurrently"
  (:mod:`repro.parallel.wavefront`).
* **GOP-level parallelism** [16] — whole GOPs encode independently,
  which scales throughput but adds a full GOP of latency — unusable
  for the paper's *online* requirement
  (:mod:`repro.parallel.gop_level`).

These models quantify the paper's argument for tiles: the comparison
example (``examples/parallelization_comparison.py``) and tests measure
achievable speedup and latency of each scheme.

Tile parallelism itself is not just modelled but *implemented*:
:mod:`repro.parallel.executor` encodes a frame's tiles concurrently on
a process pool, bit-exact with the serial encoder.
"""

from repro.parallel.wavefront import WavefrontSchedule, simulate_wavefront
from repro.parallel.gop_level import GopParallelModel, GopParallelPlan
from repro.parallel.executor import (
    TileHookSpec,
    TileLearned,
    TileParallelExecutor,
    default_workers,
    merge_learned,
    recommended_parallel,
)

__all__ = [
    "WavefrontSchedule",
    "simulate_wavefront",
    "GopParallelModel",
    "GopParallelPlan",
    "TileHookSpec",
    "TileLearned",
    "TileParallelExecutor",
    "default_workers",
    "merge_learned",
    "recommended_parallel",
]
