"""Tile-parallel frame encoding on a process or thread pool.

HEVC tiles are independently decodable: intra prediction breaks at
tile boundaries, motion search only *reads* the (immutable) reference
plane, and each tile writes a disjoint region of the reconstruction.
The per-tile encode loop is therefore embarrassingly parallel within a
frame — the property the paper's per-tile workload allocation relies
on (§II-C) — and this module exploits it for real wall-clock speedup
with a :class:`concurrent.futures.ProcessPoolExecutor` or, when the
GIL-releasing native kernels are active, a
:class:`concurrent.futures.ThreadPoolExecutor` whose workers share
the frame planes directly (no fork, no pickle, no patch shipping).

The parallel path is **bit-exact** with the serial
:class:`~repro.codec.encoder.FrameEncoder`:

* every worker encodes its tile into a private :class:`BitWriter`;
  the parent splices the flushed payloads back in tile order with
  :meth:`BitWriter.append_bits`, producing a byte-identical stream;
* reconstruction patches are stitched into the frame plane — identical
  because no tile ever writes outside its own region;
* the proposed search policy's per-GOP learned state is snapshotted
  into picklable :class:`TileHookSpec` objects before the fan-out and
  merged back with :func:`merge_learned` afterwards.  This is sound
  because within one frame the policy state is *per-tile*: the
  dominant axis is only read on non-first GOP frames (when no learning
  happens) and the MV predictor chain is keyed by tile id, so tile
  workers never observe each other's in-frame updates even serially.

Everything is opt-in (``PipelineConfig.parallel_tiles``,
``VideoEncoder(parallel_workers=...)``, ``--parallel-workers`` on the
CLI); the default remains the serial encoder.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import native
from repro.analysis.motion_probe import MotionClass
from repro.codec.bitstream import BitWriter
from repro.codec.chroma import BlockInfo
from repro.codec.config import EncoderConfig, FrameType
from repro.codec.encoder import (
    FrameEncoder,
    FrameStats,
    TileEncoder,
    TileStats,
    normalize_references,
)
from repro.motion.base import MotionVector
from repro.observability import get_registry, get_tracer
from repro.observability.metrics import MetricsRegistry
from repro.motion.proposed import (
    BioMedicalSearchPolicy,
    GopMotionState,
    ProposedSearchConfig,
)
from repro.tiling.tile import TileGrid

__all__ = [
    "TileHookSpec",
    "TileLearned",
    "TileParallelExecutor",
    "default_workers",
    "merge_learned",
    "recommended_parallel",
]


def default_workers() -> int:
    """Pool size when none is configured: one worker per core."""
    return max(1, os.cpu_count() or 1)


def recommended_parallel(
    num_tiles: int,
    workers: Optional[int] = None,
    backend: str = "process",
) -> bool:
    """Whether the pool can pay for its dispatch overhead.

    The answer is backend-specific.  The process pool's fork/pickle
    costs are fixed per frame and amortize only when more than one
    tile can actually run concurrently.  The thread pool's dispatch is
    microseconds and its workers share memory, but real concurrency
    exists only while the native kernels hold the hot loops (ctypes
    releases the GIL for the call's duration) — pure-NumPy encoding
    from multiple threads just interleaves under the GIL.
    """
    effective = workers if workers is not None else default_workers()
    if backend == "thread":
        return native.lib is not None and effective > 1 and num_tiles > 1
    return effective > 1 and num_tiles > 1


@dataclass(frozen=True)
class TileHookSpec:
    """Picklable snapshot of one tile's proposed-search decision.

    Captures everything
    :meth:`~repro.motion.proposed.BioMedicalSearchPolicy.search_block`
    reads for this tile — motion class, GOP position, the
    feedback-adjusted window, the GOP's learned dominant axis and this
    tile's MV predictor — so a worker process can rebuild an
    equivalent policy without sharing the parent's mutable state.
    """

    motion: MotionClass
    is_first: bool
    tile_id: int
    window: int
    axis: Optional[str]
    predictor: MotionVector
    search: ProposedSearchConfig = ProposedSearchConfig()


@dataclass(frozen=True)
class TileLearned:
    """What one first-P-frame tile learned, reported back for merging.

    ``first_axis`` is the tile's first non-zero-MV axis vote (the
    quantity the serial dominant-axis election consumes) and
    ``final_mv`` the tile's last block MV (the value that survives in
    ``GopMotionState.tile_mv`` after a serial pass).
    """

    tile_id: int
    first_axis: Optional[str]
    final_mv: Optional[MotionVector]


def merge_learned(
    state: GopMotionState, learned: Sequence[TileLearned]
) -> None:
    """Fold per-tile learning back into the shared GOP state.

    Replays the serial election order: tiles are visited by index, and
    the first axis vote wins — exactly the outcome of the serial
    encoder, where the first non-zero MV in tile-then-block order sets
    the dominant axis.
    """
    for rec in sorted(learned, key=lambda r: r.tile_id):
        if rec.final_mv is not None:
            state.tile_mv[rec.tile_id] = rec.final_mv
        if state.dominant_axis is None and rec.first_axis is not None:
            state.dominant_axis = rec.first_axis


def _spec_policy(spec: TileHookSpec) -> BioMedicalSearchPolicy:
    """A worker-local policy seeded from the spec snapshot.

    On first-P frames the local dominant axis starts ``None`` so the
    tile's own first vote is captured (the axis is never *read* on
    first frames); on later frames it carries the learned axis, which
    ``select`` consumes and nothing mutates.
    """
    policy = BioMedicalSearchPolicy(spec.search)
    policy.state = GopMotionState(
        dominant_axis=None if spec.is_first else spec.axis,
        tile_mv={spec.tile_id: spec.predictor},
    )
    return policy


def _encode_tile_worker(task: tuple):
    """Encode one tile in a worker process (module-level: picklable).

    Returns ``(stats, recon_patch, payload, nbits, infos, learned,
    metrics)`` where ``metrics`` is a fresh worker-local
    :class:`MetricsRegistry` snapshot — global registries do not cross
    the process boundary, so workers report their counters as data and
    the parent merges them on join.
    """
    (original, references, tile, config, frame_type, spec, want_infos,
     want_stages) = task
    hook = None
    policy = None
    if spec is not None:
        policy = _spec_policy(spec)

        def hook(ctx_factory, left_mv):
            def wrapped(_w):
                return ctx_factory(spec.window)

            nargs = getattr(ctx_factory, "native_args", None)
            if nargs is not None:
                # Keep the native search driver reachable through the
                # wrapper and pin the spec's window, exactly like the
                # serial pipeline's hook wrapper does.
                wrapped.native_args = nargs
                wrapped.native_window = spec.window
            return policy.search_block(
                wrapped,
                spec.motion,
                spec.is_first,
                spec.tile_id,
                left_mv=left_mv,
            )

    reconstruction = np.zeros_like(original)
    writer = BitWriter()
    infos: Optional[List[BlockInfo]] = [] if want_infos else None
    local_metrics = MetricsRegistry()
    t0 = time.perf_counter()
    stats = TileEncoder(config).encode(
        original,
        references,
        reconstruction,
        tile,
        frame_type,
        writer=writer,
        motion_hook=hook,
        block_info_out=infos,
        measure_stages=want_stages,
    )
    elapsed = time.perf_counter() - t0
    if want_stages and stats.stage_seconds is not None:
        stats.stage_seconds["encode"] = elapsed
    local_metrics.inc(
        "repro_parallel_tiles_encoded_total",
        help="Tiles encoded by pool workers",
    )
    local_metrics.observe(
        "repro_parallel_tile_encode_seconds", elapsed,
        help="Wall time of one worker tile encode",
    )
    learned = None
    if policy is not None and spec.is_first:
        learned = TileLearned(
            tile_id=spec.tile_id,
            first_axis=policy.state.dominant_axis,
            final_mv=policy.state.tile_mv.get(spec.tile_id),
        )
    patch = np.ascontiguousarray(
        reconstruction[tile.y : tile.y_end, tile.x : tile.x_end]
    )
    # bits_written must be captured before flush(), which zero-pads the
    # stream to a byte boundary; the parent splices exactly nbits so
    # the padding never reaches the merged stream.
    nbits = writer.bits_written
    return (stats, patch, writer.flush(), nbits, infos, learned,
            local_metrics.to_dict())


class TileParallelExecutor:
    """Encodes a frame's tiles concurrently, bit-exact with the serial
    :class:`~repro.codec.encoder.FrameEncoder`.

    The pool is created lazily on the first parallel frame and reused
    across frames.  ``backend="process"`` forks workers (fork context
    where available, so they inherit the compiled native kernels
    without re-importing); ``backend="thread"`` runs the same worker
    function on a thread pool — tasks hand workers *views* of the
    shared frame planes, nothing is pickled, and concurrency comes
    from the native kernels dropping the GIL.  With ``workers == 1``
    every tile is encoded inline through the same worker function —
    useful as a deterministic reference and on single-core machines,
    where a pool would only add overhead.
    """

    def __init__(self, workers: Optional[int] = None,
                 backend: str = "process"):
        if backend not in ("process", "thread"):
            raise ValueError(f"unknown tile-pool backend {backend!r}")
        self.workers = workers if workers else default_workers()
        self.backend = backend
        if backend == "thread" and self.workers > 1 and native.lib is None:
            # Refuse to build a pool that cannot deliver concurrency:
            # without the GIL-releasing native kernels, N encode
            # threads just interleave under the GIL — strictly slower
            # than inline encoding, and silently so.
            if os.environ.get("REPRO_NATIVE") == "0":
                detail = (
                    "native kernels are disabled by REPRO_NATIVE=0 in "
                    "the environment; unset it to use the thread backend"
                )
            else:
                detail = (
                    "the native kernels failed to build (no C compiler "
                    "or compilation error; re-run with REPRO_NATIVE "
                    "unset and check stderr for the build failure)"
                )
            raise ValueError(
                f"backend='thread' with workers={self.workers} needs the "
                f"native kernels to release the GIL, but {detail}. "
                "Use backend='process' for GIL-free parallelism without "
                "native kernels, or workers=1 for inline encoding."
            )
        self._pool: Optional[Executor] = None
        #: Per-tile learning reported by the most recent
        #: :meth:`encode_frame` fan-out (first P frames only).
        self.last_learned: List[TileLearned] = []

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-tile",
                )
            else:
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # platforms without fork
                    ctx = multiprocessing.get_context()
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "TileParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- encoding -------------------------------------------------------
    def encode_frame(
        self,
        original: np.ndarray,
        grid: TileGrid,
        configs: Sequence[EncoderConfig],
        frame_type: FrameType,
        reference=None,
        frame_index: int = 0,
        writer: Optional[BitWriter] = None,
        hook_specs: Optional[Sequence[Optional[TileHookSpec]]] = None,
        block_infos_out: Optional[List[List[BlockInfo]]] = None,
    ) -> Tuple[FrameStats, np.ndarray]:
        """Drop-in parallel replacement for ``FrameEncoder.encode``.

        ``hook_specs`` replaces the serial API's ``motion_hooks``:
        closures cannot cross a process boundary, so the proposed
        policy's per-tile decisions travel as :class:`TileHookSpec`
        snapshots instead.  After a first-P-frame call, fold
        :attr:`last_learned` into the policy with
        :func:`merge_learned`.
        """
        if len(configs) != len(grid):
            raise ValueError(f"{len(configs)} configs for {len(grid)} tiles")
        if hook_specs is not None and len(hook_specs) != len(grid):
            raise ValueError("hook_specs length must match tile count")
        if original.shape != (grid.frame_height, grid.frame_width):
            raise ValueError(
                f"frame {original.shape} does not match grid "
                f"{grid.frame_height}x{grid.frame_width}"
            )
        references = normalize_references(reference, frame_type)
        if writer is not None:
            writer.write_bits(FrameEncoder.FRAME_TYPE_CODES[frame_type], 2)
        want_infos = block_infos_out is not None
        tracer = get_tracer()
        want_stages = tracer.enabled
        tasks = [
            (
                original,
                references,
                tile,
                configs[i],
                frame_type,
                hook_specs[i] if hook_specs is not None else None,
                want_infos,
                want_stages,
            )
            for i, tile in enumerate(grid)
        ]
        if self.workers == 1 or len(grid) == 1:
            results = [_encode_tile_worker(t) for t in tasks]
        else:
            results = list(self._ensure_pool().map(_encode_tile_worker, tasks))

        reconstruction = np.zeros_like(original)
        tile_stats: List[TileStats] = []
        self.last_learned = []
        registry = get_registry()
        for i, (tile, (stats, patch, payload, nbits, infos, learned,
                       worker_metrics)) in enumerate(zip(grid, results)):
            reconstruction[tile.y : tile.y_end, tile.x : tile.x_end] = patch
            tile_stats.append(stats)
            if writer is not None:
                writer.append_bits(payload, nbits)
            if want_infos:
                block_infos_out.append(infos or [])
            if learned is not None:
                self.last_learned.append(learned)
            registry.merge(worker_metrics)
            if want_stages and stats.stage_seconds:
                tracer.record_span(
                    "stage.encode", stats.stage_seconds.get("encode", 0.0),
                    tile=i, frame=frame_index, type=frame_type.value,
                )
                for stage in ("motion", "entropy"):
                    if stage in stats.stage_seconds:
                        tracer.record_span(
                            f"stage.{stage}", stats.stage_seconds[stage],
                            tile=i, frame=frame_index,
                        )
        return (
            FrameStats(
                frame_index=frame_index,
                frame_type=frame_type,
                tiles=tile_stats,
            ),
            reconstruction,
        )
