"""GOP-level parallelism model [16].

Video frames "can be clustered as groups of pictures (GOPs) and can be
independently processed providing workload parallelization" (paper
§II-C).  GOP parallelism scales *throughput* linearly — but each GOP
must be fully buffered before its encode starts, so the scheme adds at
least one GOP of latency plus the GOP's encode time, which breaks the
paper's online (per-frame deadline) requirement.  This model makes
that argument quantitative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class GopParallelPlan:
    """Resource/latency plan for GOP-parallel encoding of one stream."""

    num_workers: int
    sustained_fps: float
    latency_seconds: float
    utilization: float

    def meets_online_latency(self, max_latency_seconds: float) -> bool:
        return self.latency_seconds <= max_latency_seconds


class GopParallelModel:
    """Plans GOP-parallel encoding for one stream.

    Parameters
    ----------
    gop_size:
        Frames per GOP (paper: 8).
    frame_encode_seconds:
        Single-core CPU time to encode one frame.
    fps:
        Target (and capture) frame rate.
    """

    def __init__(self, gop_size: int, frame_encode_seconds: float, fps: float):
        if gop_size < 1:
            raise ValueError("gop_size must be >= 1")
        if frame_encode_seconds <= 0:
            raise ValueError("frame_encode_seconds must be positive")
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.gop_size = gop_size
        self.frame_encode_seconds = frame_encode_seconds
        self.fps = fps

    @property
    def gop_arrival_period(self) -> float:
        """Wall time between consecutive GOPs arriving from capture."""
        return self.gop_size / self.fps

    @property
    def gop_encode_seconds(self) -> float:
        """Single-worker encode time of one whole GOP."""
        return self.gop_size * self.frame_encode_seconds

    def workers_for_realtime(self) -> int:
        """Minimum workers to keep up with the arrival rate."""
        return max(1, math.ceil(self.gop_encode_seconds / self.gop_arrival_period))

    def plan(self, num_workers: int) -> GopParallelPlan:
        """Latency/throughput of running ``num_workers`` GOP encoders.

        Sustained fps is capped at capture rate once real-time is met.
        Latency counts GOP accumulation (the whole GOP must arrive
        before encoding starts) plus the GOP's encode time.
        """
        if num_workers < 1:
            raise ValueError("need at least one worker")
        throughput_gops = num_workers / self.gop_encode_seconds
        sustained = min(self.fps, throughput_gops * self.gop_size)
        latency = self.gop_arrival_period + self.gop_encode_seconds
        needed = self.workers_for_realtime()
        utilization = min(1.0, needed / num_workers)
        return GopParallelPlan(
            num_workers=num_workers,
            sustained_fps=sustained,
            latency_seconds=latency,
            utilization=utilization,
        )
