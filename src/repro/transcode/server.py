"""Multi-user serving simulation (paper §IV-B2, Table II and Fig. 4).

The paper serves a saturated queue of users, each requesting the online
transcoding of one video, on a 32-core server.  Encoding every user's
video in full is redundant — users of the same body-part class have the
same workload statistics (the property behind the paper's LUT reuse) —
so the simulation measures a small set of representative streams once
(:class:`~repro.transcode.pipeline.StreamTranscoder`) and instantiates
users by cycling over the measured traces, exactly as a trace-driven
datacentre simulator would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.allocation.demand import UserDemand
from repro.allocation.proposed import AllocationResult
from repro.observability import get_registry, get_tracer
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.platform.power import PowerModel
from repro.resilience.errors import AllocationError
from repro.resilience.faults import FaultInjector
from repro.transcode.pipeline import StreamTrace


def _deadline_margin(result: AllocationResult, slot_duration: float) -> float:
    """Worst-core slack against the ``1/FPS`` deadline, in seconds.

    Computed at f_max (the paper's feasibility measure): a negative
    margin means at least one core must carry work into the next slot
    even at the maximum frequency.
    """
    slots = result.schedule.slots
    if not slots:
        return slot_duration
    return slot_duration - max(s.load_fmax for s in slots)


@dataclass
class ServingReport:
    """Outcome of one serving experiment.

    Quality fields are ``None`` when no user was admitted (an empty
    sample has no min/max/mean — the previous NaN sentinel leaked
    RuntimeWarnings into every downstream aggregation).
    """

    num_users_served: int
    num_users_requested: int
    average_power_w: float
    psnr_avg: Optional[float]
    psnr_min: Optional[float]
    psnr_max: Optional[float]
    bitrate_avg_mbps: Optional[float]
    bitrate_min_mbps: Optional[float]
    bitrate_max_mbps: Optional[float]
    allocation: Optional[AllocationResult] = None


def _sample_stats(values: Sequence[float]) -> Tuple[
        Optional[float], Optional[float], Optional[float]]:
    """(mean, min, max) of a sample, or all-``None`` when empty."""
    if not values:
        return None, None, None
    return float(np.mean(values)), float(np.min(values)), float(np.max(values))


@dataclass
class SlotOutcome:
    """What happened during one served ``1/FPS`` slot of a fault run."""

    slot_index: int
    users_served: int
    power_w: float
    failed_cores: List[int] = field(default_factory=list)
    shed_users: List[int] = field(default_factory=list)
    retried_users: List[int] = field(default_factory=list)
    readmitted_users: List[int] = field(default_factory=list)


@dataclass
class ResilientServingReport:
    """Outcome of a multi-slot serving run under injected core
    failures (see :meth:`TranscodingServer.serve_with_faults`)."""

    num_users_requested: int
    num_slots: int
    slots: List[SlotOutcome] = field(default_factory=list)

    @property
    def cores_failed(self) -> int:
        return sum(len(s.failed_cores) for s in self.slots)

    @property
    def users_shed(self) -> int:
        return sum(len(s.shed_users) for s in self.slots)

    @property
    def users_readmitted(self) -> int:
        return sum(len(s.readmitted_users) for s in self.slots)

    @property
    def retry_attempts(self) -> int:
        return sum(len(s.retried_users) for s in self.slots)

    @property
    def final_users_served(self) -> int:
        return self.slots[-1].users_served if self.slots else 0

    @property
    def average_power_w(self) -> float:
        if not self.slots:
            return 0.0
        return float(np.mean([s.power_w for s in self.slots]))


class TranscodingServer:
    """Serves users from measured stream traces."""

    def __init__(
        self,
        platform: MpsocConfig = XEON_E5_2667,
        power_model: Optional[PowerModel] = None,
        fps: float = 24.0,
    ):
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.platform = platform
        self.power_model = power_model or PowerModel()
        self.fps = fps

    # ------------------------------------------------------------------
    def demands(
        self, traces: Sequence[StreamTrace], num_users: int
    ) -> List[UserDemand]:
        """Instantiate ``num_users`` demands by cycling the traces."""
        if not traces:
            raise ValueError("need at least one measured trace")
        out = []
        for uid in range(num_users):
            trace = traces[uid % len(traces)]
            gop = trace.steady_state_gop()
            out.append(UserDemand(user_id=uid, threads=gop.threads(user_id=uid)))
        return out

    # ------------------------------------------------------------------
    def serve(
        self,
        traces: Sequence[StreamTrace],
        allocator,
        num_users: Optional[int] = None,
    ) -> ServingReport:
        """Serve users with the given allocator.

        ``num_users=None`` models the saturated queue of the paper's
        Table II (more requests than resources): enough candidates are
        offered that admission is resource-bound.  A concrete
        ``num_users`` models Fig. 4's fixed-population comparison.
        """
        if num_users is None:
            requested = 4 * self.platform.num_cores
        else:
            requested = num_users
        user_demands = self.demands(traces, requested)
        with get_tracer().span("server.serve", requested=requested):
            result = allocator.allocate(user_demands, self.fps)
        margin = _deadline_margin(result, 1.0 / self.fps)
        registry = get_registry()
        registry.set_gauge(
            "repro_slot_deadline_margin_seconds", margin, context="serve",
            help="Worst-core slack against the 1/FPS deadline at f_max",
        )
        registry.set_gauge(
            "repro_server_users_served", result.num_users_served,
            context="serve", help="Users admitted by the last serve pass",
        )

        power = result.schedule.average_power(self.power_model)
        psnrs = []
        rates = []
        for demand in result.admitted:
            trace = traces[demand.user_id % len(traces)]
            psnrs.append(trace.average_psnr)
            rates.append(trace.bitrate_mbps)
        psnr_stats = _sample_stats(psnrs)
        rate_stats = _sample_stats(rates)
        return ServingReport(
            num_users_served=result.num_users_served,
            num_users_requested=requested,
            average_power_w=power,
            psnr_avg=psnr_stats[0],
            psnr_min=psnr_stats[1],
            psnr_max=psnr_stats[2],
            bitrate_avg_mbps=rate_stats[0],
            bitrate_min_mbps=rate_stats[1],
            bitrate_max_mbps=rate_stats[2],
            allocation=result,
        )

    # ------------------------------------------------------------------
    def serve_with_faults(
        self,
        traces: Sequence[StreamTrace],
        allocator,
        injector: FaultInjector,
        num_slots: int = 6,
        num_users: Optional[int] = None,
        max_backoff_slots: int = 8,
    ) -> ResilientServingReport:
        """Serve users across several slots while cores fail.

        The injector assigns each failing core a failure slot.  When a
        core dies, the allocator evicts its :class:`CoreSlot`, re-packs
        the orphaned threads onto the survivors and sheds the
        lowest-priority users if the remaining capacity no longer
        covers the admitted demand.  Rejected and shed users retry
        admission with exponential backoff (1, 2, 4, ... slots, capped
        at ``max_backoff_slots``).

        ``allocator`` must support the re-allocation API
        (:meth:`~repro.allocation.proposed.ProposedAllocator.reallocate`
        and the ``failed_cores`` parameter of ``allocate``).
        """
        if num_slots < 1:
            raise AllocationError("need at least one slot")
        requested = (
            4 * self.platform.num_cores if num_users is None else num_users
        )
        demands = self.demands(traces, requested)
        by_id = {d.user_id: d for d in demands}
        failure_schedule = injector.failure_schedule(
            list(range(self.platform.num_cores)), num_slots
        )
        failed: Set[int] = set()
        # user_id -> [next attempt slot, next backoff]
        waiting: Dict[int, List[int]] = {}

        def schedule_retry(user_id: int, now: int, backoff: int) -> None:
            waiting[user_id] = [now + backoff,
                                min(backoff * 2, max_backoff_slots)]

        result = allocator.allocate(demands, self.fps)
        for demand in result.rejected:
            schedule_retry(demand.user_id, 0, 1)

        report = ResilientServingReport(
            num_users_requested=requested, num_slots=num_slots
        )
        tracer = get_tracer()
        registry = get_registry()
        for slot_index in range(num_slots):
            slot_span = tracer.span("server.slot", slot=slot_index)
            slot_span.__enter__()
            outcome = SlotOutcome(slot_index=slot_index, users_served=0,
                                  power_w=0.0)
            if slot_index > 0:
                newly_failed = failure_schedule.get(slot_index, [])
                if newly_failed:
                    failed.update(newly_failed)
                    outcome.failed_cores = list(newly_failed)
                    result = allocator.reallocate(
                        result, newly_failed, self.fps
                    )
                    for demand in result.shed:
                        outcome.shed_users.append(demand.user_id)
                        schedule_retry(demand.user_id, slot_index, 1)
                due = [uid for uid, (when, _) in waiting.items()
                       if when <= slot_index]
                if due and len(failed) < self.platform.num_cores:
                    outcome.retried_users = sorted(due)
                    candidates = list(result.admitted) + [
                        by_id[uid] for uid in sorted(due)
                    ]
                    result = allocator.allocate(
                        candidates, self.fps, failed_cores=failed
                    )
                    admitted_ids = {d.user_id for d in result.admitted}
                    for uid in sorted(due):
                        if uid in admitted_ids:
                            outcome.readmitted_users.append(uid)
                            del waiting[uid]
                        else:
                            backoff = waiting[uid][1]
                            schedule_retry(uid, slot_index, backoff)
                    # A previously-active user squeezed out by the
                    # re-admission counts as shed and retries too.
                    for demand in candidates:
                        uid = demand.user_id
                        if uid not in admitted_ids and uid not in waiting:
                            outcome.shed_users.append(uid)
                            schedule_retry(uid, slot_index, 1)
            outcome.users_served = result.num_users_served
            outcome.power_w = result.schedule.average_power(self.power_model)
            report.slots.append(outcome)
            registry.set_gauge(
                "repro_slot_deadline_margin_seconds",
                _deadline_margin(result, 1.0 / self.fps),
                slot=slot_index,
                help="Worst-core slack against the 1/FPS deadline at f_max",
            )
            registry.set_gauge(
                "repro_server_users_served", outcome.users_served,
                slot=slot_index,
                help="Users admitted by the last serve pass",
            )
            tracer.event(
                "server.slot_outcome",
                slot=slot_index,
                users_served=outcome.users_served,
                failed_cores=list(outcome.failed_cores),
                shed=sorted(outcome.shed_users),
                readmitted=sorted(outcome.readmitted_users),
            )
            slot_span.__exit__(None, None, None)
        return report

    # ------------------------------------------------------------------
    def power_savings_percent(
        self,
        traces_proposed: Sequence[StreamTrace],
        traces_baseline: Sequence[StreamTrace],
        allocator_proposed,
        allocator_baseline,
        num_users: int,
    ) -> float:
        """Average power savings of proposed vs baseline at equal users
        (the paper's Fig. 4 metric)."""
        rep_p = self.serve(traces_proposed, allocator_proposed, num_users)
        rep_b = self.serve(traces_baseline, allocator_baseline, num_users)
        if rep_p.num_users_served == 0 or rep_b.num_users_served == 0:
            raise AllocationError(
                "power savings undefined: a side admitted zero users"
            )
        if rep_b.average_power_w <= 0:
            raise ValueError("baseline power must be positive")
        return (1.0 - rep_p.average_power_w / rep_b.average_power_w) * 100.0
