"""Multi-user serving simulation (paper §IV-B2, Table II and Fig. 4).

The paper serves a saturated queue of users, each requesting the online
transcoding of one video, on a 32-core server.  Encoding every user's
video in full is redundant — users of the same body-part class have the
same workload statistics (the property behind the paper's LUT reuse) —
so the simulation measures a small set of representative streams once
(:class:`~repro.transcode.pipeline.StreamTranscoder`) and instantiates
users by cycling over the measured traces, exactly as a trace-driven
datacentre simulator would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.allocation.demand import UserDemand
from repro.allocation.proposed import AllocationResult
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.platform.power import PowerModel
from repro.transcode.pipeline import StreamTrace


@dataclass
class ServingReport:
    """Outcome of one serving experiment."""

    num_users_served: int
    num_users_requested: int
    average_power_w: float
    psnr_avg: float
    psnr_min: float
    psnr_max: float
    bitrate_avg_mbps: float
    bitrate_min_mbps: float
    bitrate_max_mbps: float
    allocation: Optional[AllocationResult] = None


class TranscodingServer:
    """Serves users from measured stream traces."""

    def __init__(
        self,
        platform: MpsocConfig = XEON_E5_2667,
        power_model: Optional[PowerModel] = None,
        fps: float = 24.0,
    ):
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.platform = platform
        self.power_model = power_model or PowerModel()
        self.fps = fps

    # ------------------------------------------------------------------
    def demands(
        self, traces: Sequence[StreamTrace], num_users: int
    ) -> List[UserDemand]:
        """Instantiate ``num_users`` demands by cycling the traces."""
        if not traces:
            raise ValueError("need at least one measured trace")
        out = []
        for uid in range(num_users):
            trace = traces[uid % len(traces)]
            gop = trace.steady_state_gop()
            out.append(UserDemand(user_id=uid, threads=gop.threads(user_id=uid)))
        return out

    # ------------------------------------------------------------------
    def serve(
        self,
        traces: Sequence[StreamTrace],
        allocator,
        num_users: Optional[int] = None,
    ) -> ServingReport:
        """Serve users with the given allocator.

        ``num_users=None`` models the saturated queue of the paper's
        Table II (more requests than resources): enough candidates are
        offered that admission is resource-bound.  A concrete
        ``num_users`` models Fig. 4's fixed-population comparison.
        """
        if num_users is None:
            requested = 4 * self.platform.num_cores
        else:
            requested = num_users
        user_demands = self.demands(traces, requested)
        result = allocator.allocate(user_demands, self.fps)

        power = result.schedule.average_power(self.power_model)
        psnrs = []
        rates = []
        for demand in result.admitted:
            trace = traces[demand.user_id % len(traces)]
            psnrs.append(trace.average_psnr)
            rates.append(trace.bitrate_mbps)
        if not psnrs:
            psnrs = [float("nan")]
            rates = [float("nan")]
        return ServingReport(
            num_users_served=result.num_users_served,
            num_users_requested=requested,
            average_power_w=power,
            psnr_avg=float(np.mean(psnrs)),
            psnr_min=float(np.min(psnrs)),
            psnr_max=float(np.max(psnrs)),
            bitrate_avg_mbps=float(np.mean(rates)),
            bitrate_min_mbps=float(np.min(rates)),
            bitrate_max_mbps=float(np.max(rates)),
            allocation=result,
        )

    # ------------------------------------------------------------------
    def power_savings_percent(
        self,
        traces_proposed: Sequence[StreamTrace],
        traces_baseline: Sequence[StreamTrace],
        allocator_proposed,
        allocator_baseline,
        num_users: int,
    ) -> float:
        """Average power savings of proposed vs baseline at equal users
        (the paper's Fig. 4 metric)."""
        rep_p = self.serve(traces_proposed, allocator_proposed, num_users)
        rep_b = self.serve(traces_baseline, allocator_baseline, num_users)
        if rep_b.average_power_w <= 0:
            raise ValueError("baseline power must be positive")
        return (1.0 - rep_p.average_power_w / rep_b.average_power_w) * 100.0
