"""Framerate feedback (paper §III-D2).

"The resulted encoding time of the performed allocation is readout once
a frame is released and, if it does not equal 1/FPS seconds, an
alternative (and less) complex encoding configuration is applied to the
next frame (only if the operating frequency is maximum).  This
alternative encoding configuration includes using a smaller search
window and higher QP for the tiles recognized as the bottleneck."

The feedback controller watches per-tile CPU times against the slot
budget and marks bottleneck tiles; the pipeline applies the lighter
configuration (QP bump + halved search window) to those tiles on the
next frame.  Over-utilisation is compensated by under-utilisation of
later frames: the controller also tracks the rolling one-second budget
the paper checks ("the required framerate (checked every second)").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set


@dataclass
class FramerateFeedback:
    """Per-stream framerate feedback state."""

    fps: float
    #: Relative headroom: a tile is a bottleneck when its CPU time
    #: exceeds ``slot_share * (1 + tolerance)``.
    tolerance: float = 0.05

    _debt_seconds: float = field(default=0.0, init=False)
    _bottlenecks: Set[int] = field(default_factory=set, init=False)

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    @property
    def slot_duration(self) -> float:
        return 1.0 / self.fps

    @property
    def bottleneck_tiles(self) -> Set[int]:
        """Tiles to encode with the lighter configuration next frame."""
        return set(self._bottlenecks)

    @property
    def debt_seconds(self) -> float:
        """Accumulated overrun against the rolling framerate budget."""
        return self._debt_seconds

    def observe_frame(self, tile_cpu_times: Sequence[float],
                      frame_index: int = -1) -> None:
        """Record one frame's per-tile CPU times (seconds at the
        running frequency).

        The bottleneck set is recomputed: the tiles whose CPU time
        exceeds their proportional share of the slot.  The rolling debt
        tracks whether the stream keeps up with 1/FPS per frame.
        ``frame_index`` is accepted for interface parity with
        :class:`repro.resilience.degradation.DegradationController`
        (which logs it) and is otherwise unused here.
        """
        if not tile_cpu_times:
            raise ValueError("no tile times supplied")
        total = sum(tile_cpu_times)
        slot = self.slot_duration
        # Per-frame budget bookkeeping (work is parallel across cores,
        # so the frame's critical path is the max tile time).
        critical = max(tile_cpu_times)
        self._debt_seconds = max(0.0, self._debt_seconds + critical - slot)

        self._bottlenecks.clear()
        if critical > slot * (1 + self.tolerance):
            threshold = slot * (1 + self.tolerance)
            for i, t in enumerate(tile_cpu_times):
                if t > threshold:
                    self._bottlenecks.add(i)

    def adjust_tile(self, qp: int, window: int, is_bottleneck: bool,
                    qp_max: int, delta_qp: int) -> tuple:
        """The paper's single "alternative lighter configuration"
        (§III-D2): bottleneck tiles get a QP bump and a halved search
        window.  :class:`~repro.resilience.degradation.DegradationController`
        overrides this with the full graded ladder."""
        if is_bottleneck:
            qp = min(qp_max, qp + delta_qp)
            window = max(8, window // 2)
        return qp, window

    def framerate_satisfied(self) -> bool:
        """True when the rolling budget has no outstanding debt."""
        return self._debt_seconds <= 0.0

    def reset(self) -> None:
        self._debt_seconds = 0.0
        self._bottlenecks.clear()
