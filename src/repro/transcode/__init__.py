"""End-to-end transcoding: the paper's Fig. 2 pipeline for one stream
and the multi-user serving simulation."""

from repro.transcode.pipeline import (
    PipelineConfig,
    StreamTranscoder,
    StreamTrace,
    GopRecord,
    FrameRecord,
    TileRecord,
)
from repro.transcode.feedback import FramerateFeedback
from repro.transcode.server import TranscodingServer, ServingReport
from repro.transcode.dynamic import (
    DynamicServerSimulator,
    DynamicReport,
    SessionRequest,
    poisson_workload,
)

__all__ = [
    "DynamicServerSimulator",
    "DynamicReport",
    "SessionRequest",
    "poisson_workload",
    "PipelineConfig",
    "StreamTranscoder",
    "StreamTrace",
    "GopRecord",
    "FrameRecord",
    "TileRecord",
    "FramerateFeedback",
    "TranscodingServer",
    "ServingReport",
]
