"""Dynamic serving simulation: sessions arriving and departing over
time.

The paper's Table II evaluates the *saturated* regime ("the queue of
users is always full").  Real telemedicine load fluctuates: doctors
open and close studies continuously.  This module extends the serving
model with an event simulation — Poisson arrivals, finite session
durations, a FIFO admission queue — and reports the timeline of served
sessions, queue depth, waiting times, and power.

Allocation runs once per GOP period (the paper performs thread
allocation "once at the beginning of each GOP").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.allocation.demand import UserDemand
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.platform.power import PowerModel
from repro.transcode.pipeline import StreamTrace


@dataclass(frozen=True)
class SessionRequest:
    """One viewing session: a doctor opening a study."""

    session_id: int
    arrival_time: float
    duration_seconds: float
    trace_index: int = 0

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")


def poisson_workload(
    rate_per_minute: float,
    mean_duration_seconds: float,
    sim_seconds: float,
    num_traces: int = 1,
    seed: int = 0,
) -> List[SessionRequest]:
    """Generate a Poisson arrival process of viewing sessions."""
    if rate_per_minute <= 0 or mean_duration_seconds <= 0 or sim_seconds <= 0:
        raise ValueError("rates and durations must be positive")
    rng = np.random.default_rng(seed)
    requests = []
    t = 0.0
    session_id = 0
    while True:
        t += rng.exponential(60.0 / rate_per_minute)
        if t >= sim_seconds:
            break
        requests.append(SessionRequest(
            session_id=session_id,
            arrival_time=t,
            duration_seconds=float(rng.exponential(mean_duration_seconds)) + 1.0,
            trace_index=int(rng.integers(num_traces)),
        ))
        session_id += 1
    return requests


@dataclass
class EpochSample:
    """Simulation state at one allocation epoch."""

    time: float
    active_sessions: int
    served_sessions: int
    queued_sessions: int
    average_power_w: float


@dataclass
class DynamicReport:
    """Outcome of a dynamic serving simulation."""

    timeline: List[EpochSample] = field(default_factory=list)
    completed_sessions: int = 0
    total_sessions: int = 0
    wait_times: Dict[int, float] = field(default_factory=dict)

    @property
    def average_power_w(self) -> float:
        if not self.timeline:
            raise ValueError("empty simulation")
        return float(np.mean([s.average_power_w for s in self.timeline]))

    @property
    def average_served(self) -> float:
        if not self.timeline:
            raise ValueError("empty simulation")
        return float(np.mean([s.served_sessions for s in self.timeline]))

    @property
    def peak_served(self) -> int:
        return max((s.served_sessions for s in self.timeline), default=0)

    @property
    def mean_wait_seconds(self) -> float:
        if not self.wait_times:
            return 0.0
        return float(np.mean(list(self.wait_times.values())))


class DynamicServerSimulator:
    """Simulates serving a time-varying session population."""

    def __init__(
        self,
        platform: MpsocConfig = XEON_E5_2667,
        power_model: Optional[PowerModel] = None,
        fps: float = 24.0,
        gop_size: int = 8,
    ):
        if fps <= 0:
            raise ValueError("fps must be positive")
        if gop_size < 1:
            raise ValueError("gop_size must be >= 1")
        self.platform = platform
        self.power_model = power_model or PowerModel()
        self.fps = fps
        self.gop_size = gop_size

    @property
    def epoch_seconds(self) -> float:
        """Allocation period: one GOP (paper §III-D2)."""
        return self.gop_size / self.fps

    def simulate(
        self,
        traces: Sequence[StreamTrace],
        requests: Sequence[SessionRequest],
        sim_seconds: float,
        allocator,
    ) -> DynamicReport:
        """Run the event simulation.

        At each GOP epoch the queue of waiting + active sessions is
        offered to the allocator; admitted sessions transcode this
        epoch, the rest wait (FIFO by arrival).  A session completes
        after being *served* for its full duration — being queued does
        not consume its viewing time (the video is paused until
        capacity frees up).
        """
        if not traces:
            raise ValueError("need at least one measured trace")
        if sim_seconds <= 0:
            raise ValueError("sim_seconds must be positive")
        pending = sorted(requests, key=lambda r: r.arrival_time)
        remaining: Dict[int, float] = {}   # session -> seconds left
        first_served: Dict[int, float] = {}
        arrived: List[SessionRequest] = []
        report = DynamicReport(total_sessions=len(pending))

        num_epochs = math.ceil(sim_seconds / self.epoch_seconds)
        next_request = 0
        for epoch in range(num_epochs):
            now = epoch * self.epoch_seconds
            # Admit newly arrived sessions into the queue.
            while (next_request < len(pending)
                   and pending[next_request].arrival_time <= now):
                req = pending[next_request]
                arrived.append(req)
                remaining[req.session_id] = req.duration_seconds
                next_request += 1
            active = [r for r in arrived if remaining.get(r.session_id, 0) > 0]

            demands = [
                UserDemand(
                    user_id=r.session_id,
                    threads=traces[r.trace_index % len(traces)]
                    .steady_state_gop()
                    .threads(user_id=r.session_id),
                )
                for r in active
            ]
            if demands:
                result = allocator.allocate(demands, self.fps)
                served_ids = {d.user_id for d in result.admitted}
                power = result.schedule.average_power(self.power_model)
            else:
                served_ids = set()
                power = self.platform.num_cores * self.power_model.p_idle

            for r in active:
                if r.session_id in served_ids:
                    if r.session_id not in first_served:
                        first_served[r.session_id] = now
                        report.wait_times[r.session_id] = now - r.arrival_time
                    remaining[r.session_id] -= self.epoch_seconds
                    if remaining[r.session_id] <= 0:
                        report.completed_sessions += 1

            report.timeline.append(EpochSample(
                time=now,
                active_sessions=len(active),
                served_sessions=len(served_ids),
                queued_sessions=len(active) - len(served_ids),
                average_power_w=power,
            ))
        return report
