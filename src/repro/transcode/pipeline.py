"""The per-stream transcoding pipeline (paper Fig. 2).

For each GOP of an input video:

1. evaluate motion & texture of the initial tiling (§III-A),
2. content-aware re-tiling (§III-B),
3. per-tile quality-aware configuration: QP by texture with Algorithm 1
   adaptation, and the proposed fast motion search policy (§III-C),
4. estimate per-tile workloads via the LUT (§III-D1) and expose them as
   :class:`~repro.platform.schedule.ThreadTask` demands for the
   allocator (§III-D2),
5. apply framerate feedback: bottleneck tiles get a smaller search
   window and a higher QP on the next frame.

The same class also runs the Khan et al. [19] baseline mode (uniform
workload-balanced tiling, one global QP, default hexagon search) so
both approaches are measured by exactly the same machinery.
"""

from __future__ import annotations

import enum
import math
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.analysis.evaluator import ContentEvaluator, TileContent
from repro.analysis.motion_probe import MotionClass
from repro.analysis.texture import TextureClass
from repro.codec.config import EncoderConfig, FrameType, GopConfig
from repro.codec.encoder import FrameEncoder, FrameStats
from repro.motion.proposed import BioMedicalSearchPolicy, ProposedSearchConfig
from repro.observability import get_registry, get_tracer
from repro.parallel.executor import (
    TileHookSpec,
    TileParallelExecutor,
    merge_learned,
)
from repro.platform.cost_model import CostModel
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.platform.schedule import ThreadTask
from repro.qp.adaptation import QpAdapter, TileQualityFeedback
from repro.qp.defaults import DELTA_QP, QP_MAX, QualityConstraints
from repro.resilience.degradation import (
    DegradationController,
    DegradationReport,
    ResilienceConfig,
)
from repro.resilience.errors import CorruptFrameError
from repro.resilience.faults import FaultInjector
from repro.tiling.constraints import TilingConstraints
from repro.tiling.content_aware import ContentAwareRetiler
from repro.tiling.tile import TileGrid
from repro.transcode.feedback import FramerateFeedback
from repro.video.frame import Video
from repro.video.generator import ContentClass
from repro.workload.estimator import WorkloadEstimator
from repro.workload.keys import WorkloadKey, area_bucket


class PipelineMode(enum.Enum):
    PROPOSED = "proposed"
    KHAN = "khan"


_CLASSIFIER = None
_CLASSIFIER_LOCK = threading.Lock()


def _shared_classifier():
    """Process-wide body-part classifier (built once, lazily).

    Double-checked locking: concurrent ``StreamTranscoder.run`` calls
    must not each fit their own classifier (the build is expensive and
    the unsynchronized check-then-assign was a race)."""
    global _CLASSIFIER
    if _CLASSIFIER is None:
        with _CLASSIFIER_LOCK:
            if _CLASSIFIER is None:
                from repro.analysis.classes import default_classifier
                _CLASSIFIER = default_classifier()
    return _CLASSIFIER


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of one stream's transcoding pipeline."""

    mode: PipelineMode = PipelineMode.PROPOSED
    fps: float = 24.0
    gop: GopConfig = GopConfig(8)
    base_config: EncoderConfig = EncoderConfig(qp=32, search="hexagon", search_window=64)
    quality: QualityConstraints = QualityConstraints()
    tiling: TilingConstraints = TilingConstraints()
    search: ProposedSearchConfig = ProposedSearchConfig()
    platform: MpsocConfig = XEON_E5_2667
    content_class: Optional[ContentClass] = None
    #: Re-tile once per GOP (the paper's choice, §III-D2).  ``False``
    #: re-tiles on every frame — the ablation knob quantifying what the
    #: per-GOP amortisation buys (bio-medical tilings stay valid for
    #: ~1 s, paper Fig. 1).
    retile_per_gop: bool = True
    #: [19]: tile/core count per user; ``None`` derives it from the
    #: first GOP's measured workload (capacity rule).
    khan_cores: Optional[int] = None
    #: Enables the resilience layer (proposed mode only): corrupt
    #: frames are dropped instead of raising, and deadline pressure is
    #: answered by the graded degradation ladder instead of the single
    #: lighter configuration.
    resilience: Optional[ResilienceConfig] = None
    #: Encode each frame's tiles concurrently on a process pool
    #: (:mod:`repro.parallel.executor`).  Bit-exact with the serial
    #: path; off by default because the pool only pays off with
    #: several cores and tiles.
    parallel_tiles: bool = False
    #: Worker count for the tile pool; ``None`` uses one per core.
    parallel_workers: Optional[int] = None
    #: Tile pool backend: ``"process"`` (fork + pickle, works without
    #: native kernels) or ``"thread"`` (shared-memory frame views, no
    #: pickle; real parallelism only while the GIL-releasing native
    #: kernels are active).
    parallel_backend: str = "process"
    #: Output luma height when this pipeline encodes one rung of a
    #: rendition ladder (``repro.ladder``).  Stamped into every
    #: :class:`WorkloadKey` the session records so the LUT learns
    #: per-resolution statistics; ``None`` (full-resolution /
    #: pre-ladder sessions) keeps the legacy key space.
    rung_resolution: Optional[int] = None

    @classmethod
    def khan(cls, **overrides) -> "PipelineConfig":
        """Baseline [19] configuration.

        The paper implements both frameworks "on top of the Kvazaar"
        encoder (§IV-A), so the baseline keeps Kvazaar's default motion
        search (hexagon) at the full window with one frame-wide QP —
        i.e. it lacks the proposed content-aware window shrinking,
        per-tile QPs and GOP direction inheritance.
        """
        defaults = dict(
            mode=PipelineMode.KHAN,
            base_config=EncoderConfig(qp=32, search="hexagon", search_window=64),
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class TileRecord:
    """Per-tile, per-frame outcome."""

    tile_index: int
    texture: TextureClass
    motion: MotionClass
    qp: int
    search_window: int
    bits: int
    psnr: float
    cpu_time_fmax: float


@dataclass
class FrameRecord:
    frame_index: int
    frame_type: FrameType
    tiles: List[TileRecord]

    @property
    def bits(self) -> int:
        return sum(t.bits for t in self.tiles)

    @property
    def cpu_time_fmax(self) -> float:
        return sum(t.cpu_time_fmax for t in self.tiles)


@dataclass
class GopRecord:
    """Per-GOP outcome: tiling plus per-frame records."""

    gop_index: int
    grid: TileGrid
    contents: List[TileContent]
    frames: List[FrameRecord] = field(default_factory=list)

    def mean_tile_cpu_times(self) -> List[float]:
        """Per-tile CPU time (at f_max) averaged over the GOP's frames.

        Averages over the frames that actually contain each tile index
        (counts can differ across frames in the per-frame re-tiling
        ablation mode)."""
        if not self.frames:
            raise ValueError("GOP has no frames")
        num_tiles = max(len(f.tiles) for f in self.frames)
        totals = [0.0] * num_tiles
        counts = [0] * num_tiles
        for frame in self.frames:
            for t in frame.tiles:
                totals[t.tile_index] += t.cpu_time_fmax
                counts[t.tile_index] += 1
        return [x / c for x, c in zip(totals, counts) if c > 0]

    def threads(self, user_id: int = 0) -> List[ThreadTask]:
        """Per-slot thread demands for the allocator."""
        return [
            ThreadTask(
                thread_id=i,
                user_id=user_id,
                cpu_time_fmax=t,
                tile_index=i,
            )
            for i, t in enumerate(self.mean_tile_cpu_times())
        ]


@dataclass
class FrameOutput:
    """One frame's outcome as emitted by :class:`ProposedStreamSession`.

    ``dropped`` is ``None`` for an encoded frame, otherwise the reason
    (``"corrupt"`` or ``"deadline"``).  ``reconstruction`` is the
    decoded luma plane — what a receiver's decoder would display — and
    is byte-identical between the offline :meth:`StreamTranscoder.run`
    path and an online push-fed session.
    """

    frame_index: int
    dropped: Optional[str] = None
    frame_type: Optional[FrameType] = None
    record: Optional[FrameRecord] = None
    reconstruction: Optional[np.ndarray] = None
    #: Rendition-ladder rung that produced this output (0 = the
    #: primary/full-resolution rung; plain sessions never change it).
    rung: int = 0


@dataclass
class StreamTrace:
    """Full outcome of transcoding one stream."""

    gops: List[GopRecord] = field(default_factory=list)
    fps: float = 24.0
    #: Display indices of frames that were not encoded: corrupt inputs
    #: dropped by validation plus deliberate degradation-ladder drops.
    dropped_frames: List[int] = field(default_factory=list)
    #: Degradation-ladder summary (``None`` without a resilience
    #: config).
    resilience: Optional[DegradationReport] = None

    @property
    def frame_records(self) -> List[FrameRecord]:
        return [f for g in self.gops for f in g.frames]

    @property
    def frame_psnrs(self) -> List[float]:
        """Per-frame PSNR (bit-weighted over tiles is not needed: tile
        PSNRs are aggregated from SSD, so the frame value is exact)."""
        psnrs = []
        for frame in self.frame_records:
            # Recombine tile MSEs exactly via areas encoded in records.
            psnrs.append(float(np.mean([t.psnr for t in frame.tiles])))
        return psnrs

    @property
    def average_psnr(self) -> float:
        return float(np.mean(self.frame_psnrs))

    @property
    def min_psnr(self) -> float:
        return float(np.min(self.frame_psnrs))

    @property
    def max_psnr(self) -> float:
        return float(np.max(self.frame_psnrs))

    @property
    def total_bits(self) -> int:
        return sum(f.bits for f in self.frame_records)

    @property
    def bitrate_mbps(self) -> float:
        n = len(self.frame_records)
        if n == 0:
            raise ValueError("empty trace")
        return self.total_bits / (n / self.fps) / 1e6

    def steady_state_gop(self) -> GopRecord:
        """The last GOP with encoded frames — LUT warmed up, QPs
        settled (a resilient run may end on a fully-dropped GOP)."""
        for gop in reversed(self.gops):
            if gop.frames:
                return gop
        raise ValueError("empty trace")


class StreamTranscoder:
    """Transcodes one video stream according to a
    :class:`PipelineConfig`."""

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        cost_model: Optional[CostModel] = None,
        estimator: Optional[WorkloadEstimator] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        self.config = config
        self.cost_model = cost_model or CostModel()
        self.estimator = estimator or WorkloadEstimator()
        self.evaluator = ContentEvaluator()
        self.retiler = ContentAwareRetiler(config.tiling, self.evaluator)
        self._merged_retiler: Optional[ContentAwareRetiler] = None
        self._frame_encoder = FrameEncoder()
        self._parallel: Optional[TileParallelExecutor] = None
        if config.parallel_tiles:
            self._parallel = TileParallelExecutor(
                config.parallel_workers, backend=config.parallel_backend
            )
        self.fault_injector = fault_injector

    def close(self) -> None:
        """Shut down the tile worker pool (no-op when serial)."""
        if self._parallel is not None:
            self._parallel.close()

    def __enter__(self) -> "StreamTranscoder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, video: Video) -> StreamTrace:
        """Transcode the whole video; returns the stream trace.

        Input validation happens here: an empty video, a video whose
        frames are all corrupt, or a frame smaller than the minimum
        tile size raise :class:`CorruptFrameError`; individual corrupt
        frames (mismatched geometry, non-finite luma) raise too unless
        a resilience config is set, in which case they are dropped and
        logged.
        """
        if len(video) == 0:
            raise CorruptFrameError("cannot transcode an empty video")
        corrupt = self._validate_video(video)
        self._resolved_class = self.config.content_class
        if self._resolved_class is None:
            # Recognise the body-part class so LUT entries are shared
            # with previously-seen videos of the same class (§III-D1).
            first_valid = next(
                f for f in video.frames if f.index not in corrupt
            )
            self._resolved_class = _shared_classifier().classify_frame(first_valid)
        if self.config.mode is PipelineMode.PROPOSED:
            return self._run_proposed(video, corrupt)
        return self._run_khan(video)

    # ------------------------------------------------------------------
    def _validate_video(self, video: Video) -> Set[int]:
        """Find corrupt frames; raise unless resilience absorbs them.

        A frame is corrupt when its luma plane is not a 2-D ``uint8``
        array (NaN poisoning converts the dtype), contains non-finite
        values, or disagrees with the video's reference geometry.
        """
        reference_shape = None
        corrupt: Set[int] = set()
        for frame in video.frames:
            luma = frame.luma
            ok = (
                isinstance(luma, np.ndarray)
                and luma.ndim == 2
                and luma.dtype == np.uint8
            )
            if ok and reference_shape is None:
                reference_shape = luma.shape
            elif ok and luma.shape != reference_shape:
                ok = False
            if not ok:
                corrupt.add(frame.index)
        if reference_shape is None:
            raise CorruptFrameError("every frame of the video is corrupt")
        height, width = reference_shape
        tiling = self.config.tiling
        if width < tiling.min_tile_width or height < tiling.min_tile_height:
            raise CorruptFrameError(
                f"frame {width}x{height} smaller than the minimum tile "
                f"size {tiling.min_tile_width}x{tiling.min_tile_height}"
            )
        resilient = (
            self.config.resilience is not None
            and self.config.resilience.drop_corrupt_frames
            and self.config.mode is PipelineMode.PROPOSED
        )
        if corrupt and not resilient:
            raise CorruptFrameError(
                f"corrupt frames at indices {sorted(corrupt)}: mismatched "
                "geometry or non-finite luma"
            )
        return corrupt

    # ------------------------------------------------------------------
    # Proposed pipeline
    # ------------------------------------------------------------------
    def _run_proposed(self, video: Video,
                      corrupt: Optional[Set[int]] = None) -> StreamTrace:
        session = ProposedStreamSession(self, known_corrupt=corrupt or set())
        for frame in video.frames:
            session.push(frame)
        session.finish()
        return session.trace

    def open_session(self) -> "ProposedStreamSession":
        """Open a push-based online session (proposed mode only).

        Frames are validated on arrival; GOPs are encoded as soon as
        they complete, so the caller gets encoded output while the
        stream is still arriving — the network serving layer's entry
        point.  Output is bit-identical to :meth:`run` fed the same
        frames (both paths run through
        :class:`ProposedStreamSession`)."""
        if self.config.mode is not PipelineMode.PROPOSED:
            raise ValueError("online sessions require the proposed pipeline")
        return ProposedStreamSession(self)

    def _retile(self, luma: np.ndarray, previous: Optional[np.ndarray],
                merged: bool = False):
        """Re-tile, optionally with the TILE_MERGE-reduced tile cap."""
        if not merged:
            return self.retiler.retile(luma, previous)
        if self._merged_retiler is None:
            constraints = self.config.tiling
            merged_constraints = replace(
                constraints,
                max_tiles=max(constraints.min_center_tiles + 1,
                              constraints.max_tiles // 2),
            )
            self._merged_retiler = ContentAwareRetiler(
                merged_constraints, self.evaluator
            )
        return self._merged_retiler.retile(luma, previous)

    def _encode_proposed_frame(
        self,
        luma: np.ndarray,
        frame_index: int,
        frame_type: FrameType,
        gop_position: int,
        grid: TileGrid,
        contents: Sequence[TileContent],
        reference: Optional[np.ndarray],
        adapter: QpAdapter,
        policy: BioMedicalSearchPolicy,
        feedback: FramerateFeedback,
        prev_feedback: Dict[int, TileQualityFeedback],
        stream_bitrate_mbps: Optional[float] = None,
    ):
        cfg = self.config
        bottlenecks = feedback.bottleneck_tiles
        is_first = gop_position <= 1
        configs = []
        hooks = []
        specs = []
        windows = []
        for i, content in enumerate(contents):
            qp = adapter.adapt(
                i, content.texture, prev_feedback.get(i),
                stream_bitrate_mbps=stream_bitrate_mbps,
            )
            _, window = policy.select(content.motion, is_first)
            # Lighter configuration (§III-D2) — either the paper's
            # single alternative or the resilience ladder's current rung.
            qp, window = feedback.adjust_tile(
                qp, window, i in bottlenecks, QP_MAX, DELTA_QP
            )
            configs.append(cfg.base_config.with_qp(qp))
            windows.append(window)
            if self._parallel is not None:
                specs.append(TileHookSpec(
                    motion=content.motion, is_first=is_first, tile_id=i,
                    window=window, axis=policy.state.dominant_axis,
                    predictor=policy.state.predictor(i), search=cfg.search,
                ))
            else:
                hooks.append(
                    self._make_hook(policy, content.motion, gop_position, i, window)
                )

        if self._parallel is not None:
            frame_stats, reconstruction = self._parallel.encode_frame(
                luma, grid, configs, frame_type,
                reference=reference, frame_index=frame_index,
                hook_specs=specs if frame_type is FrameType.P else None,
            )
            if frame_type is FrameType.P:
                merge_learned(policy.state, self._parallel.last_learned)
        else:
            frame_stats, reconstruction = self._frame_encoder.encode(
                luma, grid, configs, frame_type,
                reference=reference, frame_index=frame_index,
                motion_hooks=hooks if frame_type is FrameType.P else None,
            )
        record = self._record_frame(
            frame_stats, frame_type, contents, configs, windows
        )
        return record, reconstruction

    def _make_hook(self, policy, motion, gop_position, tile_index, window):
        """Build the per-tile motion hook driving the proposed policy.

        The motion direction is learned on the first *P* frame of the
        GOP (the I frame has no motion estimation).
        """
        is_first = gop_position <= 1

        def hook(ctx_factory, left_mv):
            def wrapped(_w):
                return ctx_factory(window)

            nargs = getattr(ctx_factory, "native_args", None)
            if nargs is not None:
                # Keep the native search driver reachable through the
                # wrapper, and pin the window the pipeline chose (the
                # wrapper ignores the policy's window the same way).
                wrapped.native_args = nargs
                wrapped.native_window = window
            return policy.search_block(
                wrapped, motion, is_first, tile_index,
                left_mv=left_mv,
            )

        return hook

    # ------------------------------------------------------------------
    # Khan [19] baseline pipeline
    # ------------------------------------------------------------------
    def _run_khan(self, video: Video) -> StreamTrace:
        from repro.allocation.baseline_khan import khan_tiling

        cfg = self.config
        gop_size = cfg.gop.size
        trace = StreamTrace(fps=cfg.fps)
        reference: Optional[np.ndarray] = None

        # Capacity rule: derive the core count from the first GOP
        # measured on a probe tiling, then keep the balanced tiling.
        if cfg.khan_cores is not None:
            num_cores = cfg.khan_cores
            grid = khan_tiling(video.width, video.height, num_cores)
        else:
            grid = khan_tiling(video.width, video.height, 4)
        contents_stub: List[TileContent] = []

        num_gops = math.ceil(len(video) / gop_size)
        for g in range(num_gops):
            frames = video.frames[g * gop_size : (g + 1) * gop_size]
            record = GopRecord(gop_index=g, grid=grid, contents=contents_stub)
            for pos, frame in enumerate(frames):
                frame_type = cfg.gop.frame_type(pos)
                configs = [cfg.base_config] * len(grid)
                with get_tracer().span(
                    "pipeline.frame", frame=frame.index,
                    type=frame_type.value, gop=g, tiles=len(grid),
                ):
                    if self._parallel is not None:
                        frame_stats, reference = self._parallel.encode_frame(
                            frame.luma, grid, configs, frame_type,
                            reference=reference, frame_index=frame.index,
                        )
                    else:
                        frame_stats, reference = self._frame_encoder.encode(
                            frame.luma, grid, configs, frame_type,
                            reference=reference, frame_index=frame.index,
                        )
                record.frames.append(
                    self._record_frame(
                        frame_stats, frame_type, None, configs,
                        [cfg.base_config.search_window] * len(grid),
                    )
                )
            trace.gops.append(record)

            if cfg.khan_cores is None and g == 0:
                # Re-tile per the capacity rule after the probe GOP.
                frame_time = float(
                    np.mean([f.cpu_time_fmax for f in record.frames])
                )
                num_cores = max(1, math.ceil(frame_time * cfg.fps))
                grid = khan_tiling(video.width, video.height, num_cores)
                reference = None  # tiling changed; restart prediction
        return trace

    # ------------------------------------------------------------------
    def _record_frame(
        self,
        frame_stats: FrameStats,
        frame_type: FrameType,
        contents: Optional[Sequence[TileContent]],
        configs: Sequence[EncoderConfig],
        windows: Sequence[int],
    ) -> FrameRecord:
        f_max = self.config.platform.f_max
        mode = self.config.mode.value
        registry = get_registry()
        tracer = get_tracer()
        tile_records = []
        for i, tile_stat in enumerate(frame_stats.tiles):
            cpu_time = self.cost_model.seconds(tile_stat.ops, f_max)
            if self.fault_injector is not None:
                cpu_time = self.fault_injector.perturb_cpu_time(cpu_time)
            texture = contents[i].texture if contents else TextureClass.MEDIUM
            motion = contents[i].motion if contents else MotionClass.HIGH
            tile_records.append(
                TileRecord(
                    tile_index=i,
                    texture=texture,
                    motion=motion,
                    qp=configs[i].qp,
                    search_window=windows[i],
                    bits=tile_stat.bits,
                    psnr=tile_stat.psnr,
                    cpu_time_fmax=cpu_time,
                )
            )
            key = WorkloadKey(
                texture=texture,
                motion=motion,
                qp=configs[i].qp,
                search_window=windows[i],
                frame_type=frame_type,
                area_bucket=area_bucket(tile_stat.tile.area),
                content_class=getattr(self, "_resolved_class", None),
                resolution=self.config.rung_resolution,
            )
            self.estimator.observe(key, cpu_time)
            registry.observe(
                "repro_tile_cpu_seconds", cpu_time, mode=mode,
                help="Simulated per-tile CPU time at f_max",
            )
            if tracer.enabled:
                tracer.event(
                    "tile.record",
                    tile=i,
                    frame=frame_stats.frame_index,
                    type=frame_type.value,
                    texture=texture.name,
                    motion=motion.name,
                    qp=configs[i].qp,
                    window=windows[i],
                    area_bucket=area_bucket(tile_stat.tile.area),
                    bits=tile_stat.bits,
                    cpu_time_fmax=cpu_time,
                )
        registry.inc("repro_frames_encoded_total", mode=mode,
                     help="Frames encoded by the pipeline")
        registry.inc("repro_tiles_encoded_total", len(frame_stats.tiles),
                     mode=mode, help="Tiles encoded by the pipeline")
        return FrameRecord(
            frame_index=frame_stats.frame_index,
            frame_type=frame_type,
            tiles=tile_records,
        )


class ProposedStreamSession:
    """Push-based online transcoding session (proposed pipeline).

    Frames are pushed one at a time; whenever a GOP's worth has
    accumulated (or :meth:`finish` flushes the tail) the GOP is encoded
    through the exact per-GOP logic of :meth:`StreamTranscoder.run` and
    the per-frame outputs are returned.  All cross-GOP state (QP
    adapter, motion policy, framerate feedback/degradation ladder,
    reference plane, rolling bitrate window) lives on the session, so
    a sequence of pushes is bit-identical to one offline run over the
    same frames.

    Two validation modes:

    * ``known_corrupt`` given (the offline :meth:`StreamTranscoder.run`
      path): the whole video was validated upfront; per-frame checks
      are skipped.
    * otherwise (online serving): each frame is validated on arrival.
      Corrupt frames raise :class:`CorruptFrameError` unless the
      pipeline's resilience config absorbs them, in which case they are
      dropped and reported as a ``FrameOutput`` with
      ``dropped="corrupt"``.
    """

    def __init__(
        self,
        transcoder: StreamTranscoder,
        known_corrupt: Optional[Set[int]] = None,
    ):
        cfg = transcoder.config
        if cfg.mode is not PipelineMode.PROPOSED:
            raise ValueError("streaming sessions require the proposed pipeline")
        self.transcoder = transcoder
        self.config = cfg
        self._validate = known_corrupt is None
        self._known_corrupt = known_corrupt or set()
        self._adapter = QpAdapter(cfg.quality)
        self._policy = BioMedicalSearchPolicy(cfg.search)
        if cfg.resilience is not None:
            self._feedback = DegradationController(cfg.fps, cfg.resilience)
        else:
            self._feedback = FramerateFeedback(fps=cfg.fps)
        self._resilient = isinstance(self._feedback, DegradationController)
        self._reference: Optional[np.ndarray] = None
        self._previous_original: Optional[np.ndarray] = None
        self._prev_frame_feedback: Dict[int, TileQualityFeedback] = {}
        self._recent_bits: List[int] = []  # rolling ~1 s window
        self._pending: List = []  # buffered frames of the current GOP
        self._pending_corrupt: Set[int] = set()
        self._reference_shape: Optional[tuple] = None
        self._gop_index = 0
        self._frames_pushed = 0
        self._finished = False
        self.trace = StreamTrace(fps=cfg.fps)

    # -- validation (online mode) --------------------------------------
    def _check_frame(self, frame) -> bool:
        """``True`` when the frame is corrupt (mirrors
        :meth:`StreamTranscoder._validate_video` frame-by-frame)."""
        luma = frame.luma
        ok = (
            isinstance(luma, np.ndarray)
            and luma.ndim == 2
            and luma.dtype == np.uint8
        )
        if ok and self._reference_shape is None:
            height, width = luma.shape
            tiling = self.config.tiling
            if (width < tiling.min_tile_width
                    or height < tiling.min_tile_height):
                raise CorruptFrameError(
                    f"frame {width}x{height} smaller than the minimum tile "
                    f"size {tiling.min_tile_width}x{tiling.min_tile_height}"
                )
            self._reference_shape = luma.shape
        elif ok and luma.shape != self._reference_shape:
            ok = False
        if ok:
            return False
        absorb = (
            self._resilient
            and self.config.resilience is not None
            and self.config.resilience.drop_corrupt_frames
        )
        if not absorb:
            raise CorruptFrameError(
                f"corrupt frame at index {frame.index}: mismatched "
                "geometry or non-finite luma"
            )
        return True

    def _resolve_class(self, frame) -> None:
        if getattr(self.transcoder, "_resolved_class", None) is not None:
            return
        resolved = self.config.content_class
        if resolved is None:
            resolved = _shared_classifier().classify_frame(frame)
        self.transcoder._resolved_class = resolved

    # -- ingest --------------------------------------------------------
    @property
    def pending_frames(self) -> int:
        """Frames buffered since the last GOP boundary.

        A :meth:`push` with ``pending_frames + 1 < gop.size`` only
        validates and buffers — no encoding happens — which is what
        lets the serving layer run mid-GOP pushes inline on its event
        loop and reserve the encode thread pool for GOP flushes.
        """
        return len(self._pending)

    def push(self, frame) -> List[FrameOutput]:
        """Buffer one frame; encode and return outputs when a GOP
        completes (an empty list otherwise)."""
        if self._finished:
            raise ValueError("session already finished")
        if self._validate:
            if self._check_frame(frame):
                self._pending_corrupt.add(frame.index)
            else:
                self._resolve_class(frame)
        elif frame.index in self._known_corrupt:
            self._pending_corrupt.add(frame.index)
        self._pending.append(frame)
        self._frames_pushed += 1
        if len(self._pending) >= self.config.gop.size:
            return self._flush_gop()
        return []

    def bump_degradation(self, frame_index: int = -1,
                         kind: str = "watchdog"):
        """Force one rung of ladder escalation (serving watchdog hook).

        Returns the new :class:`DegradationLevel`, or ``None`` when the
        session runs without a resilience config."""
        if not self._resilient:
            return None
        return self._feedback.force_escalate(frame_index, kind=kind)

    # -- persistence ---------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Snapshot the session's cross-GOP state at a GOP boundary.

        Only callable when no frames are pending (i.e. right after a
        :meth:`push` that flushed a GOP, or before any push): within a
        GOP the encoder also depends on intra-GOP reference planes and
        adaptation state that this snapshot deliberately excludes.  A
        fresh session that imports the snapshot and is fed the same
        subsequent frames produces bit-identical output to this session
        — the property the serving layer's journaled resume builds on.

        ``previous_original`` is returned as the raw ``ndarray``;
        serialization (compression, encoding) is the caller's concern.
        """
        if self._pending:
            raise ValueError(
                "export_state requires a GOP boundary "
                f"({len(self._pending)} frames pending)"
            )
        resolved = getattr(self.transcoder, "_resolved_class", None)
        return {
            "gop_index": self._gop_index,
            "frames_pushed": self._frames_pushed,
            "recent_bits": list(self._recent_bits),
            "reference_shape": (
                list(self._reference_shape)
                if self._reference_shape is not None else None
            ),
            "content_class": resolved.value if resolved else None,
            "feedback": (
                self._feedback.export_state() if self._resilient else None
            ),
            "dropped_frames": list(self.trace.dropped_frames),
            "previous_original": self._previous_original,
        }

    def import_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot from :meth:`export_state` into a *fresh*
        session (nothing pushed yet)."""
        if self._frames_pushed or self._pending or self._finished:
            raise ValueError("import_state requires a fresh session")
        self._gop_index = int(state["gop_index"])
        self._frames_pushed = int(state["frames_pushed"])
        self._recent_bits = [int(b) for b in state["recent_bits"]]
        shape = state.get("reference_shape")
        self._reference_shape = tuple(shape) if shape is not None else None
        self.trace.dropped_frames = [
            int(i) for i in state.get("dropped_frames", [])
        ]
        content = state.get("content_class")
        if content:
            self.transcoder._resolved_class = ContentClass(content)
        feedback = state.get("feedback")
        if feedback is not None and self._resilient:
            self._feedback.import_state(feedback)
        previous = state.get("previous_original")
        if previous is not None:
            self._previous_original = np.asarray(previous, dtype=np.uint8)
        # The next pushed frame starts a new GOP with an I frame, so no
        # reconstruction reference crosses the boundary.
        self._reference = None

    def finish(self) -> List[FrameOutput]:
        """Flush the final partial GOP and close the session."""
        if self._finished:
            return []
        self._finished = True
        outputs = self._flush_gop() if self._pending else []
        if self._resilient:
            self.trace.resilience = self._feedback.report
        return outputs

    # -- per-GOP encode (the body of the offline per-GOP loop) ---------
    def _flush_gop(self) -> List[FrameOutput]:
        cfg = self.config
        transcoder = self.transcoder
        feedback = self._feedback
        g = self._gop_index
        self._gop_index += 1
        all_frames, self._pending = self._pending, []
        corrupt, self._pending_corrupt = self._pending_corrupt, set()

        outputs: List[FrameOutput] = []
        frames = []
        for frame in all_frames:
            if frame.index in corrupt:
                self.trace.dropped_frames.append(frame.index)
                feedback.observe_corrupt_frame(frame.index)
                get_registry().inc(
                    "repro_frames_dropped_total", reason="corrupt",
                    help="Frames not encoded, by reason",
                )
                outputs.append(
                    FrameOutput(frame_index=frame.index, dropped="corrupt")
                )
            else:
                frames.append(frame)
        if not frames:
            return outputs  # whole GOP corrupt: nothing to encode
        # Re-tiling once per GOP on its first frame (§III-D2); under
        # TILE_MERGE pressure the maximum tile count is halved.
        retiling = transcoder._retile(
            frames[0].luma, self._previous_original,
            merged=self._resilient and feedback.merge_tiles,
        )
        grid, contents = retiling.grid, retiling.contents
        self._adapter.reset()
        self._policy.start_gop()
        self._prev_frame_feedback.clear()
        record = GopRecord(gop_index=g, grid=grid, contents=contents)

        for pos, frame in enumerate(frames):
            frame_type = cfg.gop.frame_type(pos)
            if self._resilient and pos > 0 and feedback.should_drop_frame():
                # Top ladder rung: skip this P frame outright; its
                # whole slot is reclaimed against the debt.
                self.trace.dropped_frames.append(frame.index)
                feedback.observe_dropped_frame(frame.index)
                get_registry().inc(
                    "repro_frames_dropped_total", reason="deadline",
                    help="Frames not encoded, by reason",
                )
                outputs.append(
                    FrameOutput(frame_index=frame.index, dropped="deadline")
                )
                continue
            if not cfg.retile_per_gop and pos > 0:
                # Ablation mode: re-tile on every frame.  Tile
                # identities change, so per-tile adaptation state
                # restarts — the cost the per-GOP scheme avoids.
                retiling = transcoder._retile(
                    frame.luma, self._previous_original,
                    merged=self._resilient and feedback.merge_tiles,
                )
                grid, contents = retiling.grid, retiling.contents
                record.grid, record.contents = grid, contents
                self._adapter.reset()
                self._prev_frame_feedback.clear()
            window = max(1, int(round(cfg.fps)))
            recent = self._recent_bits[-window:]
            stream_bitrate = (
                sum(recent) / (len(recent) / cfg.fps) / 1e6
                if recent else None
            )
            with get_tracer().span(
                "pipeline.frame", frame=frame.index,
                type=frame_type.value, gop=g, tiles=len(grid),
            ):
                frame_record, self._reference = (
                    transcoder._encode_proposed_frame(
                        frame.luma, frame.index, frame_type, pos, grid,
                        contents, self._reference, self._adapter,
                        self._policy, feedback, self._prev_frame_feedback,
                        stream_bitrate,
                    )
                )
            record.frames.append(frame_record)
            self._recent_bits.append(frame_record.bits)
            if len(self._recent_bits) > window:
                self._recent_bits = self._recent_bits[-window:]
            feedback.observe_frame(
                [t.cpu_time_fmax for t in frame_record.tiles],
                frame.index,
            )
            self._prev_frame_feedback = {
                t.tile_index: TileQualityFeedback(psnr_db=t.psnr, bits=t.bits)
                for t in frame_record.tiles
            }
            self._previous_original = frame.luma
            outputs.append(FrameOutput(
                frame_index=frame.index,
                frame_type=frame_type,
                record=frame_record,
                reconstruction=self._reference,
            ))
        if record.frames:
            self.trace.gops.append(record)
        return outputs
