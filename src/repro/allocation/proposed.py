"""The paper's thread allocation and DVFS heuristic (Algorithm 2).

Stages:

1. **Demand estimation** (line 1): each user needs
   ``N_core^i = ceil(sum_j T_fmax,j * FPS)`` cores.
2. **Admission** (line 2): admit the maximum number of users by sorting
   demands ascending and taking users while the running core sum fits
   the platform.
3. **Thread allocation** (lines 3-15): threads of the admitted users
   are placed one at a time; a dynamic *cap* equals the current maximum
   core load clamped to the slot duration, and each thread goes to the
   core minimising ``|cap - (load_k + T_j)|`` — i.e. the core whose
   utilisation the thread brings closest to the cap, packing cores
   tightly instead of spreading slack everywhere.
4. **DVFS** (lines 16-24): handled by
   :class:`~repro.platform.schedule.SlotSchedule`.  The default
   ``STRETCH`` policy runs each core at the lowest frequency whose
   stretched runtime still fits the slot — realizing the paper's
   "set the operating frequency of each one" and Fig. 3's outcome
   where only a subset of cores operates at the maximum frequency.
   ``RACE_TO_IDLE`` (the literal reading of lines 17-19: f_max busy,
   min(F) during slack) is available for the ablation benchmark.
   Overloaded cores stay at f_max and carry the excess into the next
   slot (compensated by under-utilisation of following frames, checked
   against the per-second framerate budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from repro.allocation.demand import UserDemand, cores_needed
from repro.observability import get_registry, get_tracer
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.platform.schedule import CoreSlot, DvfsPolicy, SlotSchedule, ThreadTask
from repro.resilience.errors import AllocationError


def _record_schedule_metrics(schedule: SlotSchedule, kind: str) -> None:
    """Counters for one resolved schedule: per-frequency DVFS picks
    plus the paper's cores-at-f_max headcount."""
    registry = get_registry()
    for plan in schedule.plans():
        if not plan.is_active:
            continue
        registry.inc(
            "repro_dvfs_core_level_total",
            freq_mhz=int(round(plan.busy_frequency_hz / 1e6)),
            help="Active cores per chosen DVFS frequency",
        )
        if plan.carry_out_fmax > 0:
            registry.inc(
                "repro_allocator_slot_overruns_total", kind=kind,
                help="Core slots whose load did not fit the 1/FPS slot",
            )


@dataclass
class AllocationResult:
    """Outcome of one allocation pass."""

    admitted: List[UserDemand]
    rejected: List[UserDemand]
    schedule: SlotSchedule
    #: Users evicted by a re-allocation after a core failure (empty on
    #: a plain allocation pass).
    shed: List[UserDemand] = field(default_factory=list)

    @property
    def num_users_served(self) -> int:
        return len(self.admitted)


class ProposedAllocator:
    """Implements Algorithm 2 over one ``1/FPS`` slot."""

    def __init__(
        self,
        platform: MpsocConfig = XEON_E5_2667,
        dvfs_policy: DvfsPolicy = DvfsPolicy.STRETCH,
        energy_aware_pool: bool = True,
    ):
        """``energy_aware_pool`` sizes the packing pool for the lowest
        feasible frequency when spare cores exist: the admitted load is
        spread over ``load * f_max / f_min`` cores so every core can run
        at min(F), paying ``V_min^2 f_min`` instead of ``V_max^2 f_max``
        per operation.  Under saturation the pool is capacity-bound and
        the behaviour reduces to plain Algorithm 2 packing."""
        self.platform = platform
        self.dvfs_policy = dvfs_policy
        self.energy_aware_pool = energy_aware_pool

    # -- stage 2 -------------------------------------------------------
    def admit(self, demands: Sequence[UserDemand], fps: float,
              capacity: Optional[int] = None) -> tuple:
        """Maximise served users (line 2): ascending core demand.

        ``capacity`` caps the usable core count below the platform's
        total (cores lost to failures); ``None`` uses the full platform.
        """
        if capacity is None:
            capacity = self.platform.num_cores
        ranked = sorted(demands, key=lambda d: (cores_needed(d, fps), d.user_id))
        admitted: List[UserDemand] = []
        used = 0
        for demand in ranked:
            need = cores_needed(demand, fps)
            if need == 0:
                continue
            if used + need > capacity:
                break
            admitted.append(demand)
            used += need
        admitted_ids = {d.user_id for d in admitted}
        rejected = [d for d in demands if d.user_id not in admitted_ids]
        return admitted, rejected, used

    # -- stages 3-4 ----------------------------------------------------
    def allocate(
        self,
        demands: Sequence[UserDemand],
        fps: float,
        carry_in: Optional[dict] = None,
        failed_cores: Optional[Set[int]] = None,
    ) -> AllocationResult:
        """Run admission, packing and DVFS for one slot.

        ``carry_in`` maps core_id -> CPU time (at f_max) carried over
        from the previous slot (Algorithm 2, line 22).  ``failed_cores``
        removes dead cores from the packing pool: admission is bounded
        by the surviving capacity and no thread lands on a failed id.
        """
        if fps <= 0:
            raise AllocationError("fps must be positive")
        slot_duration = 1.0 / fps
        tracer = get_tracer()
        with tracer.span("allocator.allocate", requested=len(demands)):
            available = [
                k for k in range(self.platform.num_cores)
                if not failed_cores or k not in failed_cores
            ]
            if not available:
                raise AllocationError("no usable cores: all marked failed")
            admitted, rejected, reserved = self.admit(
                demands, fps, capacity=len(available)
            )

            pool = reserved
            if self.energy_aware_pool and self.dvfs_policy is DvfsPolicy.STRETCH:
                pool = reserved * self.platform.f_max / self.platform.f_min
            num_slots = max(1, min(len(available), math.ceil(pool)))
            slots = [
                CoreSlot(
                    core_id=k,
                    carry_in_fmax=(carry_in or {}).get(k, 0.0),
                )
                for k in available[:num_slots]
            ]

            # Pool of all admitted users' threads, largest first: placing
            # long threads early gives the distance heuristic room to
            # balance with the short ones.
            pool: List[ThreadTask] = sorted(
                (t for d in admitted for t in d.threads),
                key=lambda t: -t.cpu_time_fmax,
            )
            for task in pool:
                self._place(task, slots, slot_duration)

            schedule = SlotSchedule(
                slots, slot_duration, self.platform, policy=self.dvfs_policy
            )
            tracer.event(
                "allocator.decision",
                admitted=sorted(d.user_id for d in admitted),
                rejected=sorted(d.user_id for d in rejected),
                cores=len(slots),
                threads=len(pool),
            )
            registry = get_registry()
            registry.inc("repro_allocator_runs_total", kind="allocate",
                         help="Allocator invocations by kind")
            registry.inc("repro_allocator_users_admitted_total", len(admitted),
                         help="Users admitted across allocation passes")
            registry.inc("repro_allocator_users_rejected_total", len(rejected),
                         help="Users rejected across allocation passes")
            registry.inc("repro_allocator_threads_placed_total", len(pool),
                         help="Threads packed onto core slots")
            _record_schedule_metrics(schedule, "allocate")
            return AllocationResult(
                admitted=admitted, rejected=rejected, schedule=schedule
            )

    def _place(self, task: ThreadTask, slots: List[CoreSlot], slot_duration: float) -> None:
        """Lines 4-14: distance-to-cap placement of one thread."""
        max_load = max(s.load_fmax for s in slots)
        cap = min(max_load, slot_duration) if max_load > slot_duration else max_load
        best_slot = min(
            slots,
            key=lambda s: (abs(cap - (s.load_fmax + task.cpu_time_fmax)), s.core_id),
        )
        best_slot.assign(task)

    # -- core-failure recovery -----------------------------------------
    def reallocate(
        self,
        result: AllocationResult,
        failed_core_ids: Sequence[int],
        fps: float,
    ) -> AllocationResult:
        """Recover an existing allocation after cores fail.

        Evicts each failed :class:`CoreSlot`, sheds the lowest-priority
        admitted users (highest ``user_id`` — admission order defines
        priority) until the surviving capacity fits the remaining
        demand, then re-places the orphaned threads with the same
        min-distance-to-cap heuristic used for the initial packing.
        The input schedule is mutated in place and returned in a new
        :class:`AllocationResult` whose ``shed`` lists the evicted
        users.
        """
        if fps <= 0:
            raise AllocationError("fps must be positive")
        slot_duration = 1.0 / fps
        schedule = result.schedule
        orphans: List[ThreadTask] = []
        for core_id in sorted(set(failed_core_ids)):
            if schedule.has_core(core_id):
                orphans.extend(schedule.evict_core(core_id))

        admitted = sorted(result.admitted, key=lambda d: d.user_id)
        shed: List[UserDemand] = []
        survivors = schedule.slots
        if not survivors:
            # Every packed core died: the whole admitted set is shed.
            shed, admitted = admitted, []
            orphans = []
        else:
            capacity = len(survivors)
            while admitted and sum(
                cores_needed(d, fps) for d in admitted
            ) > capacity:
                victim = admitted.pop()  # highest user_id = lowest priority
                shed.append(victim)
                schedule.remove_user(victim.user_id)
                orphans = [t for t in orphans if t.user_id != victim.user_id]
            for task in sorted(orphans, key=lambda t: -t.cpu_time_fmax):
                self._place(task, survivors, slot_duration)
        registry = get_registry()
        registry.inc("repro_allocator_runs_total", kind="reallocate",
                     help="Allocator invocations by kind")
        registry.inc("repro_allocator_users_shed_total", len(shed),
                     help="Users shed by core-failure recovery")
        _record_schedule_metrics(schedule, "reallocate")
        get_tracer().event(
            "allocator.reallocate",
            failed=sorted(set(failed_core_ids)),
            shed=sorted(d.user_id for d in shed),
            survivors=len(schedule.slots),
        )
        return AllocationResult(
            admitted=admitted,
            rejected=list(result.rejected),
            schedule=schedule,
            shed=shed,
        )
