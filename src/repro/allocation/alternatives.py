"""Alternative thread-packing heuristics.

Used by the ablation benchmarks to isolate the contribution of the
paper's min-distance-to-cap placement (Algorithm 2, lines 4-14): the
same admission and DVFS stages run with classic bin-packing rules
instead.

* **first-fit** — place each thread on the first core whose load stays
  within the slot; open a new core otherwise.
* **worst-fit** — place each thread on the least-loaded core
  (spread-maximising).
"""

from __future__ import annotations

from typing import List

from repro.allocation.proposed import ProposedAllocator
from repro.platform.schedule import CoreSlot, ThreadTask


class FirstFitAllocator(ProposedAllocator):
    """Algorithm 2 with first-fit placement instead of distance-to-cap."""

    def _place(self, task: ThreadTask, slots: List[CoreSlot],
               slot_duration: float) -> None:
        for slot in slots:
            if slot.load_fmax + task.cpu_time_fmax <= slot_duration:
                slot.assign(task)
                return
        # Nothing fits: put it on the least-loaded core (it will carry).
        min(slots, key=lambda s: (s.load_fmax, s.core_id)).assign(task)


class WorstFitAllocator(ProposedAllocator):
    """Algorithm 2 with worst-fit (least-loaded-core) placement."""

    def _place(self, task: ThreadTask, slots: List[CoreSlot],
               slot_duration: float) -> None:
        min(slots, key=lambda s: (s.load_fmax, s.core_id)).assign(task)
