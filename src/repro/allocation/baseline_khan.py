"""Baseline: Khan et al., "Power-efficient workload balancing for video
applications", IEEE TVLSI 2016 — the paper's reference [19] and the
approach it compares against.

Per the paper's description (§IV-B2): "knowing the total capacity of
each core, a limited number of predefined tile sizes and encoding
configurations are created based on the capacity of each core, so that
the workload of each one can completely utilize a core's capacity.
Therefore, only one tile is assigned to each core. ... the re-tiling
approach considered in the related work is only performed once the
frequency of all cores is set to the minimum or maximum value."

Modelled consequences:

* a user's frame is split into ``N = ceil(W * FPS)`` equal-area tiles
  (``W`` = frame CPU time at f_max), one tile per dedicated core;
* no content awareness: uniform tiling, a single frame-wide QP, the
  encoder's default motion search at full window;
* used cores hold f_max for the whole slot (the all-min/all-max
  re-tiling/DVFS trigger almost never fires in steady state, as the
  paper argues), modelled by ``DvfsPolicy.ALWAYS_ON``;
* users are admitted while their summed tile (= core) count fits the
  platform.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.allocation.demand import UserDemand, cores_needed
from repro.allocation.proposed import AllocationResult
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.platform.schedule import CoreSlot, DvfsPolicy, SlotSchedule, ThreadTask
from repro.tiling.tile import TileGrid
from repro.tiling.uniform import uniform_tiling


def khan_tiling(
    frame_width: int,
    frame_height: int,
    num_cores: int,
    align: int = 16,
) -> TileGrid:
    """Workload-balanced tiling of [19]: ``num_cores`` equal-area tiles.

    Without content information, equal workload means equal area; the
    grid is chosen as the most square ``cols x rows`` factorisation so
    tiles stay well-shaped (as in [19]'s predefined tile structures).
    """
    if num_cores <= 0:
        raise ValueError("num_cores must be positive")
    best = (num_cores, 1)
    for rows in range(1, num_cores + 1):
        if num_cores % rows:
            continue
        cols = num_cores // rows
        if cols * align > frame_width or rows * align > frame_height:
            continue
        if abs(cols - rows) < abs(best[0] - best[1]):
            best = (cols, rows)
    cols, rows = best
    return uniform_tiling(frame_width, frame_height, cols, rows, align=align)


class KhanAllocator:
    """One-tile-per-core allocation at f_max (the [19] baseline)."""

    def __init__(self, platform: MpsocConfig = XEON_E5_2667):
        self.platform = platform

    def admit(self, demands: Sequence[UserDemand], fps: float) -> tuple:
        """Admit users while one core per thread is available."""
        ranked = sorted(demands, key=lambda d: (d.num_threads, d.user_id))
        admitted: List[UserDemand] = []
        used = 0
        for demand in ranked:
            need = demand.num_threads
            if need == 0:
                continue
            if used + need > self.platform.num_cores:
                break
            admitted.append(demand)
            used += need
        admitted_ids = {d.user_id for d in admitted}
        rejected = [d for d in demands if d.user_id not in admitted_ids]
        return admitted, rejected, used

    def allocate(
        self,
        demands: Sequence[UserDemand],
        fps: float,
        carry_in: Optional[dict] = None,
    ) -> AllocationResult:
        """One dedicated core per thread; cores at f_max."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        slot_duration = 1.0 / fps
        admitted, rejected, used = self.admit(demands, fps)
        slots = []
        core_id = 0
        for demand in admitted:
            for task in demand.threads:
                slot = CoreSlot(
                    core_id=core_id,
                    carry_in_fmax=(carry_in or {}).get(core_id, 0.0),
                )
                slot.assign(task)
                slots.append(slot)
                core_id += 1
        if not slots:
            slots = [CoreSlot(core_id=0)]
        schedule = SlotSchedule(
            slots, slot_duration, self.platform, policy=DvfsPolicy.ALWAYS_ON
        )
        return AllocationResult(admitted=admitted, rejected=rejected, schedule=schedule)

    def cores_for_user(self, frame_cpu_time_fmax: float, fps: float) -> int:
        """Tile/core count for a user under [19]'s capacity rule."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        if frame_cpu_time_fmax <= 0:
            return 1
        return max(1, math.ceil(frame_cpu_time_fmax * fps))
