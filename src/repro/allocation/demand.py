"""User demand descriptors shared by the allocators."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.platform.schedule import ThreadTask


@dataclass
class UserDemand:
    """One user's per-slot encoding demand.

    ``threads`` carries the per-tile CPU times (seconds at f_max) that
    must be executed every ``1/FPS`` slot to sustain the user's frame
    rate.
    """

    user_id: int
    threads: List[ThreadTask] = field(default_factory=list)

    @property
    def total_cpu_time_fmax(self) -> float:
        return sum(t.cpu_time_fmax for t in self.threads)

    @property
    def num_threads(self) -> int:
        return len(self.threads)


def cores_needed(demand: UserDemand, fps: float) -> float:
    """Core demand of a user (Algorithm 2, line 1).

    ``N_core^i = (sum_j T^i_{fmax,j}) * FPS`` — the per-slot CPU time of
    all the user's threads divided by the slot duration.  The value is
    *fractional*: Algorithm 2's packing stage shares cores between
    users' threads, so admission sums fractional demands against the
    core count (rounding up here would forfeit exactly the packing gain
    the paper exploits).
    """
    if fps <= 0:
        raise ValueError("fps must be positive")
    if not demand.threads:
        return 0.0
    return demand.total_cpu_time_fmax * fps
