"""Thread allocation and DVFS: the paper's Algorithm 2 and the
Khan et al. (IEEE TVLSI 2016, ref [19]) baseline."""

from repro.allocation.demand import UserDemand, cores_needed
from repro.allocation.proposed import ProposedAllocator, AllocationResult
from repro.allocation.baseline_khan import KhanAllocator, khan_tiling
from repro.allocation.alternatives import FirstFitAllocator, WorstFitAllocator

__all__ = [
    "UserDemand",
    "cores_needed",
    "ProposedAllocator",
    "AllocationResult",
    "KhanAllocator",
    "khan_tiling",
    "FirstFitAllocator",
    "WorstFitAllocator",
]
