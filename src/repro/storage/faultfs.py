"""Injectable file-ops seam, seeded fault injection, crash-point log.

Every durable write of the serving stack — journal appends, lease
sidecars, LUT checkpoint staging/publish, policy reads — goes through
a :class:`FileOps` instance instead of calling ``os``/``open``
directly.  Three implementations of interest:

:data:`REAL_FILEOPS`
    The pass-through used in production: plain filesystem calls, with
    raw ``OSError`` mapped onto the typed taxonomy of
    :mod:`repro.storage.errors` and every ``os.replace`` publish
    followed by a parent-directory fsync (a rename is only durable
    once the directory entry is).

:class:`FaultFS`
    A wrapper that injects seeded faults (``ENOSPC``, ``EIO``, torn /
    short writes, fsync failures, latency stalls) at named write
    points — ``"journal.append"``, ``"lut.publish"``, ... — under
    deterministic :class:`FaultRule` schedules.

:class:`CrashPointRecorder`
    An op log of every completed mutation under a root directory.
    :meth:`~CrashPointRecorder.materialize` replays any prefix of the
    log into a scratch directory — the ALICE/ferrite-style crash
    model: a crash may happen between any two completed operations,
    or mid-operation for the write ops, leaving a torn tail.  The
    torture harness (:mod:`repro.storage.torture`) restarts from every
    such state and asserts the loaders' verdicts.

Write points are plain dotted names matched by ``fnmatch`` patterns,
so a rule of ``point="journal.*"`` faults the whole journal surface
while ``"lut.publish"`` targets one syscall.
"""

from __future__ import annotations

import errno
import fnmatch
import io
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.storage.errors import (
    FsyncFailedError,
    StorageError,
    StorageFullError,
    StorageIOError,
    TornWriteError,
    classify_os_error,
)

__all__ = [
    "CrashPointRecorder",
    "FaultFS",
    "FaultRule",
    "FileOps",
    "RecordedOp",
    "REAL_FILEOPS",
    "fsync_dir",
]

_PathLike = Union[str, os.PathLike]


def fsync_dir(path: _PathLike) -> None:
    """fsync a directory so a just-renamed entry survives a crash."""
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fdatasync(fileno: int) -> None:
    getattr(os, "fdatasync", os.fsync)(fileno)


class FileOps:
    """The real file-operations seam (pass-through implementation).

    Each method takes a ``point`` name identifying the instrumented
    write point; the base class uses it only to tag raised
    :class:`StorageError`\\ s, subclasses use it to target injection
    and recording.  ``FileNotFoundError`` / ``FileExistsError`` pass
    through unwrapped — they are protocol signals (cold start, lease
    contention), not storage faults.
    """

    # -- reads ---------------------------------------------------------
    def read_bytes(self, path: _PathLike, point: str = "") -> bytes:
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise
        except OSError as exc:
            raise classify_os_error(exc, point) from exc

    def getmtime(self, path: _PathLike, point: str = "") -> float:
        try:
            return os.path.getmtime(path)
        except FileNotFoundError:
            raise
        except OSError as exc:
            raise classify_os_error(exc, point) from exc

    # -- append-handle lifecycle (journals) ----------------------------
    def append_open(self, path: _PathLike, point: str = "") -> io.FileIO:
        # Unbuffered on purpose: a failed write must leave no residue
        # in a Python-side buffer that a retry (or a later append)
        # would silently re-flush after the caller rolled the file
        # back — every byte on disk is a byte the caller asked for.
        try:
            return open(path, "ab", buffering=0)
        except OSError as exc:
            raise classify_os_error(exc, point) from exc

    def append(self, handle: io.FileIO, data: bytes,
               point: str = "") -> None:
        try:
            view = memoryview(data)
            fd = handle.fileno()
            while len(view):
                view = view[os.write(fd, view):]
        except OSError as exc:
            raise classify_os_error(exc, point) from exc

    def fsync_handle(self, handle: io.FileIO, point: str = "") -> None:
        try:
            _fdatasync(handle.fileno())
        except OSError as exc:
            raise FsyncFailedError(str(exc), point=point,
                                   errno_value=exc.errno) from exc

    def truncate_handle(self, handle: io.FileIO, size: int,
                        point: str = "") -> None:
        try:
            os.ftruncate(handle.fileno(), size)
        except OSError as exc:
            raise classify_os_error(exc, point) from exc

    # -- whole-file writes (leases, checkpoint staging) ----------------
    def write_file(self, path: _PathLike, data: bytes, point: str = "",
                   exclusive: bool = False, fsync: bool = True,
                   mode: int = 0o644) -> None:
        flags = os.O_WRONLY | os.O_CREAT | (
            os.O_EXCL if exclusive else os.O_TRUNC
        )
        try:
            fd = os.open(os.fspath(path), flags, mode)
        except FileExistsError:
            raise
        except OSError as exc:
            raise classify_os_error(exc, point) from exc
        try:
            try:
                os.write(fd, data)
            except OSError as exc:
                raise classify_os_error(exc, point) from exc
            if fsync:
                try:
                    _fdatasync(fd)
                except OSError as exc:
                    raise FsyncFailedError(str(exc), point=point,
                                           errno_value=exc.errno) from exc
        finally:
            os.close(fd)

    def replace(self, src: _PathLike, dst: _PathLike, point: str = "",
                dir_fsync: bool = True) -> None:
        """Atomic publish: ``os.replace`` + parent-directory fsync.

        The rename itself is atomic, but only the directory fsync makes
        it *durable* — without it a crash can roll the directory entry
        back to the old target even though the data blocks landed.
        """
        try:
            os.replace(src, dst)
        except OSError as exc:
            raise classify_os_error(exc, point) from exc
        if dir_fsync:
            parent = os.path.dirname(os.path.abspath(os.fspath(dst)))
            try:
                fsync_dir(parent)
            except OSError as exc:  # pragma: no cover - exotic fs
                raise FsyncFailedError(str(exc), point=point,
                                       errno_value=exc.errno) from exc

    # -- destructive ops -----------------------------------------------
    def truncate(self, path: _PathLike, size: int, point: str = "") -> None:
        try:
            os.truncate(path, size)
        except OSError as exc:
            raise classify_os_error(exc, point) from exc

    def unlink(self, path: _PathLike, point: str = "",
               missing_ok: bool = True) -> None:
        try:
            os.unlink(path)
        except FileNotFoundError:
            if not missing_ok:
                raise
        except OSError as exc:
            raise classify_os_error(exc, point) from exc


#: Shared pass-through instance (stateless, safe to share).
REAL_FILEOPS = FileOps()


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
@dataclass
class FaultRule:
    """One deterministic injection schedule.

    ``point`` is an ``fnmatch`` pattern against write-point names.
    The rule skips its first ``after`` matching operations, then fires
    on every match (up to ``count`` times; ``None`` = forever).
    ``rate`` thins firing stochastically but reproducibly from the
    shim's seed.  Kinds:

    - ``"enospc"``: mutations fail :class:`StorageFullError` (persistent)
    - ``"eio"``: any op fails :class:`StorageIOError` (transient)
    - ``"torn"``: a write lands only ``torn_fraction`` of its bytes,
      then raises :class:`TornWriteError`
    - ``"fsync"``: sync calls fail :class:`FsyncFailedError`
    - ``"stall"``: the op sleeps ``stall_s`` first, then proceeds
    """

    point: str
    kind: str
    after: int = 0
    count: Optional[int] = None
    stall_s: float = 0.01
    torn_fraction: float = 0.5
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("enospc", "eio", "torn", "fsync", "stall"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 < self.torn_fraction < 1.0:
            raise ValueError("torn_fraction must be in (0, 1)")


#: Which op categories each fault kind applies to.
_APPLIES = {
    "enospc": frozenset({"write", "meta"}),
    "eio": frozenset({"read", "write", "meta", "fsync"}),
    "torn": frozenset({"write"}),
    "fsync": frozenset({"fsync"}),
    "stall": frozenset({"read", "write", "meta", "fsync"}),
}


@dataclass
class RecordedOp:
    """One completed mutation under the recorder's root."""

    point: str
    op: str  #: "create" | "append" | "write_file" | "replace" | "truncate" | "unlink"
    path: str  #: root-relative
    data: bytes = b""
    dest: str = ""  #: for "replace": root-relative publish target
    size: int = 0  #: for "truncate"

    @property
    def tearable(self) -> bool:
        """True when a crash can leave this op half-applied on disk.
        Renames, truncates and unlinks are atomic at the syscall level;
        data writes are not."""
        return self.op in ("append", "write_file") and len(self.data) > 1


class CrashPointRecorder:
    """Ordered log of completed mutations, replayable to any prefix."""

    def __init__(self, root: _PathLike):
        self.root = os.path.abspath(os.fspath(root))
        self.ops: List[RecordedOp] = []

    def _rel(self, path: _PathLike) -> Optional[str]:
        rel = os.path.relpath(os.path.abspath(os.fspath(path)), self.root)
        if rel.startswith(".."):
            return None  # outside the recorded tree
        return rel

    def record(self, point: str, op: str, path: _PathLike,
               data: bytes = b"", dest: _PathLike = "",
               size: int = 0) -> None:
        rel = self._rel(path)
        if rel is None:
            return
        rel_dest = self._rel(dest) if dest else ""
        if dest and rel_dest is None:
            return
        self.ops.append(RecordedOp(point=point, op=op, path=rel,
                                   data=bytes(data), dest=rel_dest or "",
                                   size=size))

    def point_counts(self) -> Dict[str, int]:
        """Mutations per write point — the torture golden digest."""
        counts: Dict[str, int] = {}
        for op in self.ops:
            counts[op.point] = counts.get(op.point, 0) + 1
        return dict(sorted(counts.items()))

    def materialize(self, prefix: int, dest_root: _PathLike,
                    torn_bytes: Optional[int] = None) -> None:
        """Replay ``ops[:prefix]`` into ``dest_root``.

        With ``torn_bytes`` set, additionally applies the first
        ``torn_bytes`` bytes of ``ops[prefix]`` — the mid-write crash
        state.  ``dest_root`` must exist and should be empty.
        """
        dest_root = os.path.abspath(os.fspath(dest_root))
        if not 0 <= prefix <= len(self.ops):
            raise ValueError(f"prefix {prefix} out of range")
        todo = list(self.ops[:prefix])
        for op in todo:
            target = os.path.join(dest_root, op.path)
            os.makedirs(os.path.dirname(target), exist_ok=True)
            if op.op == "create":
                with open(target, "ab"):
                    pass
            elif op.op == "append":
                with open(target, "ab") as fh:
                    fh.write(op.data)
            elif op.op == "write_file":
                with open(target, "wb") as fh:
                    fh.write(op.data)
            elif op.op == "replace":
                os.replace(target, os.path.join(dest_root, op.dest))
            elif op.op == "truncate":
                os.truncate(target, op.size)
            elif op.op == "unlink":
                try:
                    os.unlink(target)
                except FileNotFoundError:
                    pass
        if torn_bytes is not None:
            if prefix >= len(self.ops):
                raise ValueError("no op to tear at end of log")
            op = self.ops[prefix]
            if not op.tearable:
                raise ValueError(f"op {op.op!r} cannot tear")
            target = os.path.join(dest_root, op.path)
            os.makedirs(os.path.dirname(target), exist_ok=True)
            mode = "ab" if op.op == "append" else "wb"
            with open(target, mode) as fh:
                fh.write(op.data[:torn_bytes])


class FaultFS(FileOps):
    """Fault-injecting, crash-point-recording :class:`FileOps`.

    Wraps a base seam (default :data:`REAL_FILEOPS`); with no rules
    and recording off it is behaviourally identical to the base — the
    no-fault torture arm relies on that.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0,
                 root: Optional[_PathLike] = None, record: bool = False,
                 base: Optional[FileOps] = None):
        self.rules = list(rules)
        self.base = base or REAL_FILEOPS
        self.recorder: Optional[CrashPointRecorder] = None
        if record:
            if root is None:
                raise ValueError("recording requires a root directory")
            self.recorder = CrashPointRecorder(root)
        self._rng = random.Random(seed)
        self._seen: List[int] = [0] * len(self.rules)
        self._fired: List[int] = [0] * len(self.rules)
        #: injections actually performed, per (point, kind).
        self.injected: Dict[Tuple[str, str], int] = {}

    # -- injection core ------------------------------------------------
    def _check(self, point: str, category: str,
               data_len: int = 0) -> Optional[int]:
        """Run the rule schedule for one op.

        Raises the injected error, or returns a byte count for a torn
        write the caller must apply, or ``None`` for a clean op.
        """
        for i, rule in enumerate(self.rules):
            if category not in _APPLIES[rule.kind]:
                continue
            if not fnmatch.fnmatchcase(point, rule.point):
                continue
            self._seen[i] += 1
            if self._seen[i] <= rule.after:
                continue
            if rule.count is not None and self._fired[i] >= rule.count:
                continue
            if rule.rate < 1.0 and self._rng.random() >= rule.rate:
                continue
            self._fired[i] += 1
            key = (point, rule.kind)
            self.injected[key] = self.injected.get(key, 0) + 1
            if rule.kind == "stall":
                time.sleep(rule.stall_s)
                continue
            if rule.kind == "enospc":
                raise StorageFullError("injected ENOSPC", point=point,
                                       errno_value=errno.ENOSPC)
            if rule.kind == "eio":
                raise StorageIOError("injected EIO", point=point,
                                     errno_value=errno.EIO)
            if rule.kind == "fsync":
                raise FsyncFailedError("injected fsync failure",
                                       point=point)
            # torn: the caller writes the partial bytes, then raises.
            return max(1, int(data_len * rule.torn_fraction))
        return None

    def _record(self, *args, **kwargs) -> None:
        if self.recorder is not None:
            self.recorder.record(*args, **kwargs)

    # -- reads ---------------------------------------------------------
    def read_bytes(self, path: _PathLike, point: str = "") -> bytes:
        self._check(point, "read")
        return self.base.read_bytes(path, point)

    def getmtime(self, path: _PathLike, point: str = "") -> float:
        self._check(point, "read")
        return self.base.getmtime(path, point)

    # -- append-handle lifecycle ---------------------------------------
    def append_open(self, path: _PathLike, point: str = "") -> io.FileIO:
        self._check(point, "meta")
        fresh = not os.path.exists(path)
        handle = self.base.append_open(path, point)
        if fresh:
            self._record(point, "create", path)
        return handle

    def append(self, handle: io.FileIO, data: bytes,
               point: str = "") -> None:
        torn = self._check(point, "write", data_len=len(data))
        if torn is not None:
            partial = data[:torn]
            self.base.append(handle, partial, point)
            self._record(point, "append", handle.name, data=partial)
            raise TornWriteError(
                f"short write: {torn} of {len(data)} bytes", point=point
            )
        self.base.append(handle, data, point)
        self._record(point, "append", handle.name, data=data)

    def fsync_handle(self, handle: io.FileIO, point: str = "") -> None:
        self._check(point, "fsync")
        self.base.fsync_handle(handle, point)

    def truncate_handle(self, handle: io.FileIO, size: int,
                        point: str = "") -> None:
        self._check(point, "meta")
        self.base.truncate_handle(handle, size, point)
        self._record(point, "truncate", handle.name, size=size)

    # -- whole-file writes ---------------------------------------------
    def write_file(self, path: _PathLike, data: bytes, point: str = "",
                   exclusive: bool = False, fsync: bool = True,
                   mode: int = 0o644) -> None:
        torn = self._check(point, "write", data_len=len(data))
        if torn is not None:
            partial = data[:torn]
            self.base.write_file(path, partial, point, exclusive=exclusive,
                                 fsync=False, mode=mode)
            self._record(point, "write_file", path, data=partial)
            raise TornWriteError(
                f"short write: {torn} of {len(data)} bytes", point=point
            )
        self.base.write_file(path, data, point, exclusive=exclusive,
                             fsync=fsync, mode=mode)
        self._record(point, "write_file", path, data=data)

    def replace(self, src: _PathLike, dst: _PathLike, point: str = "",
                dir_fsync: bool = True) -> None:
        self._check(point, "meta")
        if dir_fsync:
            self._check(point, "fsync")
        self.base.replace(src, dst, point, dir_fsync=dir_fsync)
        self._record(point, "replace", src, dest=dst)

    # -- destructive ops -----------------------------------------------
    def truncate(self, path: _PathLike, size: int, point: str = "") -> None:
        self._check(point, "meta")
        self.base.truncate(path, size, point)
        self._record(point, "truncate", path, size=size)

    def unlink(self, path: _PathLike, point: str = "",
               missing_ok: bool = True) -> None:
        self._check(point, "meta")
        existed = os.path.exists(path)
        self.base.unlink(path, point, missing_ok=missing_ok)
        if existed:
            self._record(point, "unlink", path)
