"""Storage-fault robustness for the serving stack (DESIGN.md §16).

Three pieces:

* :mod:`repro.storage.errors` — the typed :class:`StorageError`
  taxonomy (transient vs persistent) plus bounded retry/backoff;
* :mod:`repro.storage.faultfs` — the injectable :class:`FileOps`
  seam, the seeded :class:`FaultFS` fault shim and the
  :class:`CrashPointRecorder` behind ``make torture``;
* :mod:`repro.storage.brownout` — the hysteretic
  :class:`DurabilityMonitor` the server flips into when the journal
  volume fails persistently (degrade, never crash).
"""

from repro.storage.brownout import DurabilityMonitor
from repro.storage.errors import (
    FsyncFailedError,
    RetryPolicy,
    StorageError,
    StorageFullError,
    StorageIOError,
    TornWriteError,
    classify_os_error,
    run_with_retries,
)
from repro.storage.faultfs import (
    CrashPointRecorder,
    FaultFS,
    FaultRule,
    FileOps,
    REAL_FILEOPS,
    RecordedOp,
    fsync_dir,
)

__all__ = [
    "CrashPointRecorder",
    "DurabilityMonitor",
    "FaultFS",
    "FaultRule",
    "FileOps",
    "FsyncFailedError",
    "REAL_FILEOPS",
    "RecordedOp",
    "RetryPolicy",
    "StorageError",
    "StorageFullError",
    "StorageIOError",
    "TornWriteError",
    "classify_os_error",
    "fsync_dir",
    "run_with_retries",
]
