"""Durability-brownout state machine.

Mirrors the hysteretic policy brownout (DESIGN.md §15): a persistent
storage fault does not crash the server and does not flap.  One
:class:`DurabilityMonitor` per server tracks whether the journal
volume is believed writable:

* Any persistent :class:`~repro.storage.errors.StorageError` (or a
  transient one that exhausted its retries) trips the monitor:
  ``healthy`` goes ``False``, new sessions are admitted *without*
  journaling, and the session that hit the fault is tombstoned (its
  resume token refuses cleanly instead of replaying a divergent
  history).

* Readmission is hysteretic: the monitor demands
  ``readmit_successes`` *consecutive* successful probe writes before
  declaring the volume healthy again — a disk that clears one write
  then fails the next must not oscillate journaling on and off per
  session.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["DurabilityMonitor"]


class DurabilityMonitor:
    """Hysteretic healthy/browned-out latch for the journal volume."""

    def __init__(self, readmit_successes: int = 3):
        if readmit_successes < 1:
            raise ValueError("readmit_successes must be >= 1")
        self.readmit_successes = readmit_successes
        self.healthy = True
        self.brownouts = 0
        self.readmits = 0
        self.last_error: Optional[str] = None
        self._streak = 0

    def record_failure(self, error: Optional[BaseException] = None) -> bool:
        """A durable write failed terminally.

        Returns ``True`` when this call *transitioned* the monitor into
        brownout (the caller bumps counters / emits events exactly
        once per episode).
        """
        self._streak = 0
        self.last_error = str(error) if error is not None else "unknown"
        if not self.healthy:
            return False
        self.healthy = False
        self.brownouts += 1
        return True

    def record_success(self) -> bool:
        """A probe (or real) durable write succeeded.

        Returns ``True`` when the success streak just readmitted the
        volume (healthy again).
        """
        if self.healthy:
            self._streak = 0
            return False
        self._streak += 1
        if self._streak < self.readmit_successes:
            return False
        self.healthy = True
        self.readmits += 1
        self._streak = 0
        self.last_error = None
        return True
