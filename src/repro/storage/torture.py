"""Crash-consistency torture harness (``make torture``).

Four phases, all deterministic (fixed seed, manually-sequenced
protocol drill):

1. **Record** — run a serving drill (two sessions: one clean BYE, one
   drained mid-stream and later RESUMEd across a restart, plus a
   policy rewrite and LUT checkpoints) with a recording
   :class:`~repro.storage.faultfs.FaultFS` and no fault rules.  Every
   durable mutation under the store directory lands in the crash-point
   log.
2. **Golden** — the per-write-point mutation counts are compared
   against ``tests/golden/torture_points.json``: a new write path
   appearing (or one silently vanishing) fails loudly.  Regenerate
   with ``--update-golden`` after an intentional change.
3. **Crash simulation** — for *every* prefix of the op log (and a
   torn-tail variant of every tearable write), materialize the
   simulated on-disk state a crash at that point would leave, then
   run every loader against it: journals must restore a bit-identical
   prefix of the full run or raise a typed error, leases must parse
   or read as reclaimable debris, the LUT checkpoint must verify or
   fall back fresh, the policy file must parse or raise
   ``PolicyError``.  Never a foreign exception, never a hang (each
   verification runs under a thread-future timeout), never silent
   corruption.
4. **Brownout drill** — a live session under injected persistent
   ``ENOSPC`` on ``journal.append`` must complete over an intact
   connection with ``durability_brownouts_total >= 1``, its resume
   token cleanly refused afterwards, and journaling hysteretically
   readmitted once probes come back clean.

A no-fault bit-identity arm re-runs the drill on the raw filesystem
and asserts the wire outputs are identical to the recorded arm — the
FaultFS seam must be a behavioural no-op when idle.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import shutil
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.observability import scoped
from repro.observability.metrics import serving_summary
from repro.policy.document import PolicyError, load_policy_file
from repro.resilience.checkpoint import load_lut
from repro.resilience.errors import (
    JournalCorruptionError,
    LutCorruptionError,
)
from repro.serving.protocol import (
    Bye,
    Encoded,
    FrameMsg,
    Hello,
    HelloAck,
    Resume,
    ResumeAck,
    Stats,
    read_message,
    write_message,
)
from repro.serving.recovery import JOURNAL_SUFFIX, read_journal
from repro.serving.server import NetworkServer, ServeNetConfig
from repro.serving.statestore import LEASE_SUFFIX, SharedDirStateStore
from repro.storage.faultfs import FaultFS, FaultRule, FileOps
from repro.storage.errors import StorageError

GOLDEN_PATH = (Path(__file__).resolve().parents[3]
               / "tests" / "golden" / "torture_points.json")

_W, _H = 48, 32
_GOP = 4
#: Per-verification and per-phase wall-clock ceilings: a wedged restart
#: must fail the harness, not hang it.
_VERIFY_TIMEOUT_S = 60.0
_PHASE_TIMEOUT_S = 180.0

_POLICY_V1 = {
    "version": 1,
    "power_cap_w": 140,
    "default_tenant": "general",
    "tenants": [{"name": "general", "tier": "routine", "weight": 2}],
}
_POLICY_V2 = dict(_POLICY_V1, power_cap_w=120)


class TortureFailure(AssertionError):
    """A torture invariant was violated."""


def _frame(index: int) -> bytes:
    """Deterministic synthetic luma plane (no RNG: the op log and the
    encoded bits must be identical run to run)."""
    y, x = np.mgrid[0:_H, 0:_W]
    return ((x + 2 * y + 7 * index) % 256).astype(np.uint8).tobytes()


def _digest(msg: Encoded) -> Tuple:
    return (msg.frame_index, msg.frame_type, msg.dropped, msg.bits,
            round(msg.psnr, 6),
            hashlib.sha256(bytes(msg.luma)).hexdigest())


async def _read_to_bye(reader) -> Tuple[List[Encoded], Optional[dict]]:
    encoded, stats = [], None
    while True:
        msg = await read_message(reader)
        if isinstance(msg, Encoded):
            encoded.append(msg)
        elif isinstance(msg, Stats):
            stats = msg.data
        elif isinstance(msg, Bye):
            return encoded, stats


async def _session_full(port: int, frames: int,
                        client_id: str) -> Tuple[HelloAck, List[Encoded]]:
    """HELLO, stream ``frames`` frames, BYE; returns (ack, encoded)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        await write_message(writer, Hello(
            width=_W, height=_H, fps=24.0, num_frames=frames, gop=_GOP,
            client_id=client_id,
        ))
        ack = await read_message(reader)
        if not isinstance(ack, HelloAck) or ack.decision != "accept":
            raise TortureFailure(f"session not accepted: {ack}")
        for i in range(frames):
            await write_message(writer, FrameMsg(
                frame_index=i, width=_W, height=_H, luma=_frame(i),
            ))
        await write_message(writer, Bye("done"))
        encoded, _ = await _read_to_bye(reader)
        return ack, encoded
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _drill(root: str, fileops: Optional[FileOps]) -> List[Tuple]:
    """The pinned serving drill; returns the wire-output digests.

    Session "alpha" completes cleanly (journal created and discarded);
    session "beta" finishes one full GOP, is parked by a drain, and is
    RESUMEd against a *restarted* server to stream its tail.  Both
    server incarnations checkpoint the LUT; the policy file is
    rewritten between them.
    """
    ops = fileops or FileOps()
    policy_path = os.path.join(root, "policy.json")
    ops.write_file(policy_path,
                   json.dumps(_POLICY_V1, sort_keys=True).encode(),
                   point="policy.write")
    config = ServeNetConfig(
        port=0, seed=0, gop=_GOP, journal_dir=root, fileops=fileops,
        policy_file=policy_path, drain_grace_s=30.0,
    )
    digests: List[Tuple] = []

    server = NetworkServer(config)
    await server.start()
    try:
        _, enc_a = await _session_full(server.port, 2 * _GOP, "alpha")
        digests += [_digest(m) for m in enc_a]

        # "beta": one durable GOP, then a drain parks it mid-session.
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        await write_message(writer, Hello(
            width=_W, height=_H, fps=24.0, gop=_GOP, client_id="beta",
        ))
        ack_b = await read_message(reader)
        if ack_b.decision != "accept" or not ack_b.resume_token:
            raise TortureFailure(f"beta not journaled: {ack_b}")
        for i in range(_GOP):
            await write_message(writer, FrameMsg(
                frame_index=i, width=_W, height=_H, luma=_frame(i),
            ))
        got = []
        while len(got) < _GOP:  # the GOP record is durable once these
            msg = await read_message(reader)  # arrive (journal-before-
            if isinstance(msg, Encoded):  # egress)
                got.append(msg)
        digests += [_digest(m) for m in got]
        drain_task = asyncio.ensure_future(server.drain())
        _, _ = await _read_to_bye(reader)
        writer.close()
        await drain_task
    finally:
        if not server._draining:
            await server.aclose()

    # Restart: a fresh server over the same store (and the same
    # recording seam), a policy rewrite, then beta's RESUME.
    ops.write_file(policy_path,
                   json.dumps(_POLICY_V2, sort_keys=True).encode(),
                   point="policy.write")
    server = NetworkServer(config)
    await server.start()
    try:
        if server.policy_manager is not None:
            server.policy_manager.maybe_reload()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        await write_message(writer, Resume(
            resume_token=ack_b.resume_token, have_below=_GOP,
            client_id="beta",
        ))
        rack = await read_message(reader)
        if not isinstance(rack, ResumeAck) or rack.decision != "accept":
            raise TortureFailure(f"beta resume refused: {rack}")
        for i in range(rack.next_frame_index, rack.next_frame_index + 2):
            await write_message(writer, FrameMsg(
                frame_index=i, width=_W, height=_H, luma=_frame(i),
            ))
        await write_message(writer, Bye("done"))
        enc_tail, _ = await _read_to_bye(reader)
        digests += [_digest(m) for m in enc_tail]
        writer.close()
        await server.drain()
    finally:
        if not server._draining:
            await server.aclose()
    return digests


def _run_drill(root: str, fileops: Optional[FileOps]) -> List[Tuple]:
    with scoped():
        return asyncio.run(
            asyncio.wait_for(_drill(root, fileops), _PHASE_TIMEOUT_S)
        )


# ----------------------------------------------------------------------
# Phase 3: crash-state verification
# ----------------------------------------------------------------------
def _full_journal_bytes(recorder) -> Dict[str, bytes]:
    """Final append-stream per journal file: journals are append-only
    in a clean run, so any crash state must be a byte prefix of this.
    """
    full: Dict[str, bytes] = {}
    for op in recorder.ops:
        if not op.path.endswith(JOURNAL_SUFFIX):
            continue
        if op.op == "create":
            full.setdefault(op.path, b"")
        elif op.op == "append":
            full[op.path] = full.get(op.path, b"") + op.data
        elif op.op == "truncate":
            full[op.path] = full.get(op.path, b"")[:op.size]
    return full


def _verify_crash_state(root: str, full_journals: Dict[str, bytes],
                        label: str) -> None:
    """Run every restart-path loader against one simulated disk state.

    The contract under test: a crash at any write point yields a state
    every loader either recovers from (restoring a bit-identical
    prefix of what was durably written) or refuses with a *typed*
    error — never a foreign exception, never silent corruption.
    """
    for name in sorted(os.listdir(root)):
        path = os.path.join(root, name)
        if name.endswith(JOURNAL_SUFFIX):
            with open(path, "rb") as fh:
                data = fh.read()
            try:
                scan = read_journal(path)
            except JournalCorruptionError:
                continue  # typed refusal is a valid verdict
            intact = data[:scan.intact_bytes]
            full = full_journals.get(name)
            if full is None:
                raise TortureFailure(
                    f"{label}: unexpected journal {name!r}")
            if not full.startswith(intact):
                raise TortureFailure(
                    f"{label}: journal {name!r} restored "
                    f"{len(intact)} bytes that are NOT a prefix of the "
                    f"full run — silent corruption")
            # Strict restore must be all-or-typed on the same state.
            try:
                read_journal(path, strict=True)
            except JournalCorruptionError:
                pass
        elif name.endswith(LEASE_SUFFIX):
            with open(path, "rb") as fh:
                raw = fh.read()
            # Must decode to a record or classify as reclaimable torn
            # debris (None) — an exception here would wedge acquire().
            SharedDirStateStore._parse_lease(raw)
        elif name == "lut.json":
            result = load_lut(path)
            if not result.recovered and result.reason == "ok":
                raise TortureFailure(
                    f"{label}: inconsistent LUT verdict")
            try:
                load_lut(path, strict=True)
            except LutCorruptionError:
                if result.recovered:
                    raise TortureFailure(
                        f"{label}: strict and lenient LUT loads disagree"
                    ) from None
        elif name == "policy.json":
            try:
                load_policy_file(path)
            except PolicyError:
                pass  # typed refusal (torn rewrite) is the contract
    # Wildcard sweep: anything else (.lock files, LUT staging debris)
    # must be ignorable by a restart, which the loaders above model by
    # construction — nothing to assert.


def _crash_simulation(recorder) -> Tuple[int, int]:
    """Materialize and verify every crash point (+ torn variants)."""
    full_journals = _full_journal_bytes(recorder)
    states = 0
    torn_states = 0
    with ThreadPoolExecutor(max_workers=1) as pool, \
            tempfile.TemporaryDirectory(prefix="torture-crash-") as base:
        def check(prefix: int, torn: Optional[int], label: str) -> None:
            scratch = os.path.join(base, "state")
            os.makedirs(scratch)
            try:
                recorder.materialize(prefix, scratch, torn_bytes=torn)
                future = pool.submit(
                    _verify_crash_state, scratch, full_journals, label
                )
                future.result(timeout=_VERIFY_TIMEOUT_S)
            finally:
                shutil.rmtree(scratch, ignore_errors=True)

        for prefix in range(len(recorder.ops) + 1):
            check(prefix, None, f"crash@{prefix}")
            states += 1
            if prefix < len(recorder.ops) and recorder.ops[prefix].tearable:
                data_len = len(recorder.ops[prefix].data)
                for torn in sorted({1, data_len // 2, data_len - 1}):
                    if 0 < torn < data_len:
                        check(prefix, torn,
                              f"crash@{prefix}+torn{torn}")
                        torn_states += 1
    return states, torn_states


# ----------------------------------------------------------------------
# Phase 4: live ENOSPC brownout drill
# ----------------------------------------------------------------------
async def _brownout_drill(root: str) -> None:
    faultfs = FaultFS(rules=[
        # The first two appends (admit + first GOP) land; the next two
        # (the second GOP record, then the best-effort tombstone) hit a
        # full volume.  The cap lets journaling succeed again once the
        # probe loop readmits — modelling an operator freeing space.
        FaultRule(point="journal.append", kind="enospc", after=2, count=2),
    ], seed=0)
    server = NetworkServer(ServeNetConfig(
        port=0, seed=0, gop=_GOP, journal_dir=root, fileops=faultfs,
        durability_probe_s=0.05, journal_retry_backoff_s=0.001,
    ))
    await server.start()
    try:
        ack, encoded = await _session_full(server.port, 2 * _GOP, "gamma")
        if not ack.resume_token:
            raise TortureFailure("brownout drill session not journaled")
        delivered = [m for m in encoded if m.dropped is None]
        if len(delivered) != 2 * _GOP:
            raise TortureFailure(
                f"brownout session lost frames: {len(delivered)}/"
                f"{2 * _GOP} delivered — the connection must survive "
                f"the failing volume")
        # The invalidated token must be refused, cleanly and typed.
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port)
        await write_message(writer, Resume(
            resume_token=ack.resume_token, have_below=2 * _GOP,
        ))
        rack = await read_message(reader)
        writer.close()
        if rack.decision != "reject" or "brownout" not in rack.reason:
            raise TortureFailure(
                f"tombstoned token not refused cleanly: {rack}")
        # Hysteretic readmission: probes bypass the journal.append rule,
        # so journaling must come back on its own.
        from repro.observability import get_registry
        deadline = asyncio.get_running_loop().time() + 10.0
        while True:
            summary = serving_summary(get_registry().to_dict()) or {}
            if summary.get("durability") == 1.0 \
                    and summary.get("durability_readmits", 0) >= 1:
                break
            if asyncio.get_running_loop().time() > deadline:
                raise TortureFailure(
                    "durability readmission never happened: "
                    f"{summary!r}")
            await asyncio.sleep(0.02)
        if summary.get("durability_brownouts", 0) < 1:
            raise TortureFailure("no brownout episode counted")
        if summary.get("tombstone_rejects", 0) < 1:
            raise TortureFailure("no tombstone reject counted")
        # Post-readmission admits journal again.
        ack2, _ = await _session_full(server.port, _GOP, "delta")
        if not ack2.resume_token:
            raise TortureFailure(
                "journaling not re-enabled after readmission")
    finally:
        await server.aclose()


def _run_brownout() -> None:
    with tempfile.TemporaryDirectory(prefix="torture-brownout-") as root:
        with scoped():
            asyncio.run(
                asyncio.wait_for(_brownout_drill(root), _PHASE_TIMEOUT_S)
            )


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    update_golden = "--update-golden" in argv

    print("torture: phase 1 — recording the pinned serving drill")
    with tempfile.TemporaryDirectory(prefix="torture-rec-") as root:
        faultfs = FaultFS(seed=0, root=root, record=True)
        recorded_digests = _run_drill(root, faultfs)
        recorder = faultfs.recorder
        counts = recorder.point_counts()
    print(f"torture: {len(recorder.ops)} mutations across "
          f"{len(counts)} write points")

    print("torture: phase 2 — golden write-point digest")
    if update_golden:
        GOLDEN_PATH.write_text(json.dumps(counts, indent=2,
                                          sort_keys=True) + "\n")
        print(f"torture: wrote {GOLDEN_PATH}")
    else:
        if not GOLDEN_PATH.exists():
            print(f"torture FAILED: golden {GOLDEN_PATH} missing "
                  f"(run with --update-golden)", file=sys.stderr)
            return 1
        golden = json.loads(GOLDEN_PATH.read_text())
        if golden != counts:
            print("torture FAILED: write-point digest drifted from "
                  "golden\n"
                  f"  golden : {json.dumps(golden, sort_keys=True)}\n"
                  f"  actual : {json.dumps(counts, sort_keys=True)}\n"
                  "Regenerate with --update-golden if intentional.",
                  file=sys.stderr)
            return 1

    print("torture: phase 3 — no-fault bit-identity arm")
    with tempfile.TemporaryDirectory(prefix="torture-raw-") as root:
        raw_digests = _run_drill(root, None)
    if raw_digests != recorded_digests:
        print("torture FAILED: FaultFS(no rules) changed wire outputs "
              "vs the raw filesystem", file=sys.stderr)
        return 1

    print(f"torture: phase 4 — crash simulation over "
          f"{len(recorder.ops) + 1} prefixes")
    try:
        states, torn_states = _crash_simulation(recorder)
    except TortureFailure as exc:
        print(f"torture FAILED: {exc}", file=sys.stderr)
        return 1
    print(f"torture: verified {states} crash states "
          f"+ {torn_states} torn-write variants")

    print("torture: phase 5 — live ENOSPC durability-brownout drill")
    try:
        _run_brownout()
    except TortureFailure as exc:
        print(f"torture FAILED: {exc}", file=sys.stderr)
        return 1

    print("torture OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
