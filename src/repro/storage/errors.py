"""Typed storage-fault taxonomy and bounded retry.

The durability layer (journals, leases, LUT checkpoints, policy reads)
historically let bare ``OSError`` propagate, which gave callers no way
to distinguish a *transient* hiccup (an ``EIO`` the next attempt may
clear) from a *persistent* condition (``ENOSPC`` — retrying a full
disk is just a slower failure).  The hierarchy below makes the
distinction explicit so the serving layer can retry the former and
enter durability brownout on the latter (DESIGN.md §16).

Every class inherits from both :class:`~repro.resilience.errors.
TranscodeError` (the stack-wide root) and ``OSError``, so pre-existing
``except OSError`` call sites — the LUT loader's corruption fallback,
the lease sweep's best-effort unlinks — keep working unchanged.
"""

from __future__ import annotations

import errno
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.resilience.errors import TranscodeError

__all__ = [
    "FsyncFailedError",
    "RetryPolicy",
    "StorageError",
    "StorageFullError",
    "StorageIOError",
    "TornWriteError",
    "classify_os_error",
    "run_with_retries",
]


class StorageError(TranscodeError, OSError):
    """A filesystem operation of the durability layer failed.

    ``transient`` is the retry verdict: ``True`` means a bounded retry
    is worth attempting, ``False`` means the condition will not clear
    on its own (full disk, failed fsync) and the caller should degrade
    instead — for the serving layer, durability brownout.

    ``point`` names the instrumented write point (``"journal.append"``,
    ``"lut.publish"``, ...) so faults are attributable in logs and the
    torture harness can assert *where* an error surfaced.
    """

    transient = False

    def __init__(self, message: str, *, point: str = "",
                 errno_value: Optional[int] = None):
        super().__init__(message)
        self.point = point
        if errno_value is not None:
            self.errno = errno_value

    def __str__(self) -> str:
        base = super().__str__()
        return f"[{self.point}] {base}" if self.point else base


class StorageFullError(StorageError):
    """The volume is out of space or quota (``ENOSPC``/``EDQUOT``).

    Persistent: space does not free itself between retries, so the
    first occurrence is grounds for brownout."""


class StorageIOError(StorageError):
    """A device-level I/O failure (``EIO`` and kin).

    Transient by default — a single bad sector or a briefly wedged
    device may clear — so it earns a bounded retry before escalating.
    """

    transient = True


class FsyncFailedError(StorageError):
    """An ``fsync``/``fdatasync`` failed.

    Persistent by design: after a failed fsync the page cache may have
    silently dropped the dirty pages (the classic fsync-gate), so the
    durability of *everything previously written* to the handle is
    unknowable and retrying the sync proves nothing."""


class TornWriteError(StorageError):
    """A write landed only partially (short write).

    Transient: the caller that rolled the file back to its pre-write
    length may retry the whole record."""

    transient = True


#: errno values that mean "the volume is full" (persistent).
_FULL_ERRNOS = frozenset(
    v for v in (getattr(errno, "ENOSPC", None), getattr(errno, "EDQUOT", None))
    if v is not None
)
#: errno values worth a retry before giving up.
_TRANSIENT_ERRNOS = frozenset({errno.EIO, errno.EAGAIN, errno.EINTR})


def classify_os_error(exc: OSError, point: str = "") -> StorageError:
    """Map a raw ``OSError`` onto the typed taxonomy.

    Unrecognised errnos become a *persistent* :class:`StorageIOError`:
    an unknown failure mode has not earned the benefit of a retry.
    """
    if isinstance(exc, StorageError):
        return exc
    code = exc.errno
    if code in _FULL_ERRNOS:
        return StorageFullError(str(exc), point=point, errno_value=code)
    wrapped = StorageIOError(str(exc), point=point, errno_value=code)
    if code not in _TRANSIENT_ERRNOS:
        wrapped.transient = False
    return wrapped


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry/backoff schedule for transient storage faults.

    ``attempts`` counts *total* tries (1 = no retry).  The ``i``-th
    retry sleeps ``backoff_s * multiplier**i`` seconds, so the default
    keeps the journal writer's worst-case stall well under a GOP slot.
    """

    attempts: int = 3
    backoff_s: float = 0.005
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.backoff_s < 0 or self.multiplier < 1.0:
            raise ValueError("backoff_s must be >= 0 and multiplier >= 1")

    def delay(self, retry_index: int) -> float:
        return self.backoff_s * (self.multiplier ** retry_index)


T = TypeVar("T")


def run_with_retries(fn: Callable[[], T],
                     policy: Optional[RetryPolicy] = None,
                     on_retry: Optional[Callable[[StorageError], None]] = None,
                     sleep: Callable[[float], None] = time.sleep) -> T:
    """Run ``fn``, retrying *transient* :class:`StorageError` failures.

    Persistent errors (and anything that is not a ``StorageError``)
    propagate immediately — retrying a full disk or a failed fsync is
    wasted latency on a verdict that will not change.  ``on_retry``
    fires before each retry (metrics hook).
    """
    attempts = policy.attempts if policy is not None else 1
    for attempt in range(attempts):
        try:
            return fn()
        except StorageError as exc:
            if not exc.transient or attempt == attempts - 1:
                raise
            if on_retry is not None:
                on_retry(exc)
            sleep(policy.delay(attempt))
    raise AssertionError("unreachable")  # pragma: no cover
