"""Default QP selection by texture class (paper §III-C1).

"We utilize QP equal to 37, 32, and 27 for the low, medium, and high
texture tiles, respectively, as default values. ... for very low-
texture tiles QP = 42 can be used ... for extreme cases of high-texture
tiles QP = 22 should be used to meet the PSNR constraint."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.texture import TextureClass

#: The QP values the paper considers, ordered low-quality to high.
QP_LADDER = (42, 37, 32, 27, 22)

#: Default QP per texture class.
DEFAULT_QP = {
    TextureClass.LOW: 37,
    TextureClass.MEDIUM: 32,
    TextureClass.HIGH: 27,
}

#: Extreme QPs allowed by the adaptation loop.
QP_MAX = 42
QP_MIN = 22

#: Adaptation step (the paper's delta-QP; one ladder notch).
DELTA_QP = 5


def default_qp(texture: TextureClass) -> int:
    """Default QP for a texture class."""
    return DEFAULT_QP[texture]


@dataclass(frozen=True)
class QualityConstraints:
    """Per-stream quality/compression requirements.

    ``psnr_constraint`` is the minimum acceptable tile PSNR
    (PSNR_const); ``psnr_margin`` is the headroom above which QP may be
    increased without risking dissatisfaction (PSNR_margin).
    ``bitrate_constraint_mbps`` bounds the stream bitrate; the paper
    tracks it alongside PSNR when evaluating outcomes.
    """

    psnr_constraint: float = 38.0
    psnr_margin: float = 2.0
    bitrate_constraint_mbps: float = 3.0

    def __post_init__(self) -> None:
        if self.psnr_margin < 0:
            raise ValueError("psnr_margin must be non-negative")
        if self.bitrate_constraint_mbps <= 0:
            raise ValueError("bitrate constraint must be positive")
