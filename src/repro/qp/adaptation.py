"""QP adaptation loop (paper Algorithm 1).

For each tile, based on the previous frame's measured PSNR of the
co-located tile::

    if PSNR(t - dt) > PSNR_const + PSNR_margin:  QP += dQP   # spend less
    elif PSNR(t - dt) < PSNR_const:              QP -= dQP   # spend more
    else:                                        default QP by texture

QPs stay inside the paper's ladder [22, 42].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.texture import TextureClass
from repro.qp.defaults import DELTA_QP, QP_MAX, QP_MIN, QualityConstraints, default_qp


@dataclass(frozen=True)
class TileQualityFeedback:
    """Measured outcome of a tile in the previous frame (Algorithm 1
    inputs ``PSNR_{t-dt}`` and ``BR_{t-dt}``)."""

    psnr_db: float
    bits: int


class QpAdapter:
    """Stateful per-stream QP adaptation.

    One adapter serves one video stream; tiles are identified by index
    within the current tile grid (re-tiling resets state, since tile
    identities change).
    """

    def __init__(self, constraints: QualityConstraints = QualityConstraints()):
        self.constraints = constraints
        self._qp: Dict[int, int] = {}

    def reset(self) -> None:
        """Forget per-tile state (call after re-tiling)."""
        self._qp.clear()

    def current_qp(self, tile_id: int, texture: TextureClass) -> int:
        """QP currently assigned to a tile (default if never adapted)."""
        return self._qp.get(tile_id, default_qp(texture))

    def adapt(
        self,
        tile_id: int,
        texture: TextureClass,
        feedback: Optional[TileQualityFeedback],
        stream_bitrate_mbps: Optional[float] = None,
    ) -> int:
        """Algorithm 1 for one tile; returns the QP for the next frame.

        ``stream_bitrate_mbps`` is the stream's recent bitrate
        (``BR_{t-dt}`` in Algorithm 1's inputs): when the compression
        constraint is violated, the adapter refuses to *lower* QP and
        nudges it up as long as the PSNR constraint keeps headroom —
        quality keeps priority, exactly the constraint ordering the
        paper states ("satisfy the required video quality and
        compression").
        """
        cons = self.constraints
        if feedback is None:
            qp = default_qp(texture)
        else:
            qp = self.current_qp(tile_id, texture)
            if feedback.psnr_db > cons.psnr_constraint + cons.psnr_margin:
                qp = min(QP_MAX, qp + DELTA_QP)
            elif feedback.psnr_db < cons.psnr_constraint:
                qp = max(QP_MIN, qp - DELTA_QP)
            else:
                qp = default_qp(texture)

            rate_over = (
                stream_bitrate_mbps is not None
                and stream_bitrate_mbps > cons.bitrate_constraint_mbps
            )
            if rate_over and feedback.psnr_db >= cons.psnr_constraint:
                previous = self.current_qp(tile_id, texture)
                qp = min(QP_MAX, max(qp, previous + DELTA_QP))
        self._qp[tile_id] = qp
        return qp
