"""Per-tile quality-aware encoding configuration (paper §III-C1)."""

from repro.qp.defaults import default_qp, QP_LADDER, QualityConstraints
from repro.qp.adaptation import QpAdapter, TileQualityFeedback

__all__ = [
    "default_qp",
    "QP_LADDER",
    "QualityConstraints",
    "QpAdapter",
    "TileQualityFeedback",
]
