"""Frame tiling: tile geometry, uniform tiling, and the paper's
content-aware re-tiling strategy (§III-B).
"""

from repro.tiling.tile import Tile, TileGrid
from repro.tiling.uniform import uniform_tiling
from repro.tiling.constraints import TilingConstraints
from repro.tiling.content_aware import ContentAwareRetiler, RetilingResult

__all__ = [
    "Tile",
    "TileGrid",
    "uniform_tiling",
    "TilingConstraints",
    "ContentAwareRetiler",
    "RetilingResult",
]
