"""Content-aware re-tiling (paper §III-B).

The strategy, following the paper:

1. **Corners first.**  Starting from a minimum-size tile in each corner,
   while the tile's motion *and* texture are low, grow it by 25% more
   pixels "first in the width and then in the height", keeping the last
   coordinates once the content stops being low.  Corners and borders
   of medical frames contain the least motion and texture, so this
   carves large cheap tiles out of the frame periphery.
2. **Borders.**  The grown corner extents define the four border strips
   (top/bottom/left/right edge tiles between the corners).
3. **Centre.**  The remaining centre region, which "more likely
   contains high motion and high texture", is partitioned into tiles of
   similar size, respecting a minimum tile size; at least 4 tiles are
   used for the high-texture/high-motion area to keep parallelization
   high.

The resulting layout is an exact rectangle partition: a 3x3 macro
structure (corner / edge / centre cells, degenerate cells omitted) with
the centre cell subdivided into a near-square grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.evaluator import ContentEvaluator, TileContent
from repro.analysis.motion_probe import MotionClass
from repro.analysis.texture import TextureClass
from repro.observability import get_tracer
from repro.tiling.constraints import TilingConstraints
from repro.tiling.tile import Tile, TileGrid, split_evenly


@dataclass
class RetilingResult:
    """Output of a re-tiling pass: the grid plus per-tile content."""

    grid: TileGrid
    contents: List[TileContent]

    @property
    def num_tiles(self) -> int:
        return len(self.grid)


#: Target centre-tile edge length (samples) per texture class.  Higher
#: texture favours smaller tiles (more parallelism, per-tile tuning).
_TARGET_EDGE = {
    TextureClass.LOW: 256,
    TextureClass.MEDIUM: 160,
    TextureClass.HIGH: 112,
}


class ContentAwareRetiler:
    """Implements the paper's content-aware re-tiling."""

    def __init__(
        self,
        constraints: TilingConstraints = TilingConstraints(),
        evaluator: Optional[ContentEvaluator] = None,
    ):
        self.constraints = constraints
        self.evaluator = evaluator or ContentEvaluator()

    # ------------------------------------------------------------------
    def retile(
        self, current: np.ndarray, previous: Optional[np.ndarray] = None
    ) -> RetilingResult:
        """Re-tile a frame based on its content.

        Parameters
        ----------
        current:
            Luma plane of the frame being tiled.
        previous:
            Luma plane of the previously processed frame (for the
            motion probe); ``None`` for the first frame of a video.
        """
        height, width = current.shape
        cons = self.constraints
        tracer = get_tracer()
        if width < 3 * cons.min_tile_width or height < 3 * cons.min_tile_height:
            # Frame too small for a border/centre split: single tile.
            with tracer.span("stage.tiling"):
                grid = TileGrid.single(width, height)
            with tracer.span("stage.analysis", tiles=1):
                contents = self.evaluator.evaluate(grid, current, previous)
            return RetilingResult(grid, contents)

        with tracer.span("stage.tiling"):
            left = self._grow_margin(current, previous, side="left")
            right = self._grow_margin(current, previous, side="right")
            top = self._grow_margin(current, previous, side="top")
            bottom = self._grow_margin(current, previous, side="bottom")
            grid = self._build_grid(current, previous, left, right, top, bottom)
        with tracer.span("stage.analysis", tiles=len(grid)):
            contents = self.evaluator.evaluate(grid, current, previous)
        return RetilingResult(grid, contents)

    # ------------------------------------------------------------------
    # Margin growth
    # ------------------------------------------------------------------
    def _grow_margin(
        self,
        current: np.ndarray,
        previous: Optional[np.ndarray],
        side: str,
    ) -> int:
        """Grow a border strip from ``side`` while its content stays low.

        The paper grows each *corner tile*; the two corners sharing a
        side almost always agree on medical content (dark background),
        so we grow the full strip, which additionally guarantees an
        exact partition.  Growth is by ``growth_step`` more pixels per
        iteration, capped at ``max_margin_fraction`` of the dimension.
        """
        height, width = current.shape
        cons = self.constraints
        horizontal = side in ("left", "right")
        dim = width if horizontal else height
        start = cons.min_tile_width if horizontal else cons.min_tile_height
        limit = self._align_down(int(dim * cons.max_margin_fraction))
        limit = max(limit, start)

        size = start
        best = 0  # margin kept so far (0 = no low-content strip at all)
        while size <= limit:
            strip = self._strip(width, height, side, size)
            if not self._is_low(strip, current, previous):
                break
            best = size
            grown = self._align_down(int(math.ceil(size * (1 + cons.growth_step))))
            size = max(grown, size + cons.align)
        return best

    def _strip(self, width: int, height: int, side: str, size: int) -> Tile:
        if side == "left":
            return Tile(0, 0, size, height)
        if side == "right":
            return Tile(width - size, 0, size, height)
        if side == "top":
            return Tile(0, 0, width, size)
        if side == "bottom":
            return Tile(0, height - size, width, size)
        raise ValueError(f"unknown side {side!r}")

    def _is_low(
        self, tile: Tile, current: np.ndarray, previous: Optional[np.ndarray]
    ) -> bool:
        content = self.evaluator.evaluate_tile(tile, current, previous)
        return (
            content.texture is TextureClass.LOW
            and content.motion is MotionClass.LOW
        )

    def _align_down(self, value: int) -> int:
        align = self.constraints.align
        return (value // align) * align

    # ------------------------------------------------------------------
    # Grid assembly
    # ------------------------------------------------------------------
    def _build_grid(
        self,
        current: np.ndarray,
        previous: Optional[np.ndarray],
        left: int,
        right: int,
        top: int,
        bottom: int,
    ) -> TileGrid:
        height, width = current.shape
        cons = self.constraints

        # Ensure a viable centre region.
        min_cw = max(cons.min_tile_width, 2 * cons.align)
        min_ch = max(cons.min_tile_height, 2 * cons.align)
        while width - left - right < min_cw and (left or right):
            if left >= right:
                left = self._shrink(left)
            else:
                right = self._shrink(right)
        while height - top - bottom < min_ch and (top or bottom):
            if top >= bottom:
                top = self._shrink(top)
            else:
                bottom = self._shrink(bottom)

        center_w = width - left - right
        center_h = height - top - bottom
        center = Tile(left, top, center_w, center_h)

        border_tiles = self._border_tiles(width, height, left, right, top, bottom)
        budget = cons.max_tiles - len(border_tiles)
        center_tiles = self._partition_center(center, current, previous, budget)
        return TileGrid(width, height, border_tiles + center_tiles)

    def _shrink(self, margin: int) -> int:
        shrunk = self._align_down(int(margin * 0.5))
        return shrunk if shrunk >= self.constraints.align else 0

    def _border_tiles(
        self, width: int, height: int, left: int, right: int, top: int, bottom: int
    ) -> List[Tile]:
        """Corner and edge tiles of the 3x3 macro layout (degenerate cells omitted)."""
        xs = [0, left, width - right, width]
        ys = [0, top, height - bottom, height]
        tiles = []
        for row in range(3):
            for col in range(3):
                if row == 1 and col == 1:
                    continue  # centre handled separately
                w = xs[col + 1] - xs[col]
                h = ys[row + 1] - ys[row]
                if w > 0 and h > 0:
                    tiles.append(Tile(xs[col], ys[row], w, h))
        return tiles

    def _partition_center(
        self,
        center: Tile,
        current: np.ndarray,
        previous: Optional[np.ndarray],
        budget: int,
    ) -> List[Tile]:
        """Split the centre into a near-square grid of similar-size tiles."""
        cons = self.constraints
        content = self.evaluator.evaluate_tile(center, current, previous)
        target = _TARGET_EDGE[content.texture]

        cols = max(1, round(center.width / target))
        rows = max(1, round(center.height / target))

        # The high-texture/high-motion area gets at least
        # ``min_center_tiles`` tiles (paper: minimum of 4).
        busy = (
            content.texture is not TextureClass.LOW
            or content.motion is MotionClass.HIGH
        )
        if busy:
            while cols * rows < cons.min_center_tiles:
                if center.width / (cols + 1) >= center.height / (rows + 1):
                    cols += 1
                else:
                    rows += 1

        # Respect the minimum tile size and the global tile budget.
        cols = min(cols, max(1, center.width // cons.min_tile_width))
        rows = min(rows, max(1, center.height // cons.min_tile_height))
        while cols * rows > max(budget, 1):
            if cols >= rows and cols > 1:
                cols -= 1
            elif rows > 1:
                rows -= 1
            else:
                break

        col_widths = split_evenly(center.width, cols, align=cons.align)
        row_heights = split_evenly(center.height, rows, align=cons.align)
        tiles = []
        y = center.y
        for rh in row_heights:
            x = center.x
            for cw in col_widths:
                tiles.append(Tile(x, y, cw, rh))
                x += cw
            y += rh
        return tiles
