"""Tile geometry.

HEVC tiles are rectangular, independently decodable regions of a frame.
The paper's content-aware re-tiling (§III-B, Fig. 3b) produces an
*irregular* rectangle partition (grown corner/border tiles plus a
partitioned centre), so :class:`TileGrid` models an arbitrary exact
rectangle partition of the frame rather than only row/column grids.
Row/column grids (used for the paper's Table I uniform tilings and by
the Khan et al. baseline) are built through
:meth:`TileGrid.from_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Tile:
    """A rectangular tile: ``x, y`` is the top-left corner (inclusive).

    Coordinates are in luma samples.  A tile must be non-degenerate.
    """

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"degenerate tile {self}")
        if self.x < 0 or self.y < 0:
            raise ValueError(f"negative tile origin {self}")

    @property
    def x_end(self) -> int:
        """One past the rightmost column."""
        return self.x + self.width

    @property
    def y_end(self) -> int:
        """One past the bottom row."""
        return self.y + self.height

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def overlaps(self, other: "Tile") -> bool:
        return not (
            self.x_end <= other.x
            or other.x_end <= self.x
            or self.y_end <= other.y
            or other.y_end <= self.y
        )

    def contains_point(self, px: int, py: int) -> bool:
        return self.x <= px < self.x_end and self.y <= py < self.y_end

    def extract(self, plane: np.ndarray) -> np.ndarray:
        """View of this tile's samples in a frame-sized plane."""
        if self.x_end > plane.shape[1] or self.y_end > plane.shape[0]:
            raise ValueError(
                f"tile {self} outside plane {plane.shape[1]}x{plane.shape[0]}"
            )
        return plane[self.y : self.y_end, self.x : self.x_end]

    def with_size(self, width: int, height: int) -> "Tile":
        return Tile(self.x, self.y, width, height)


@dataclass
class TileGrid:
    """An exact rectangle partition of a ``frame_width x frame_height`` frame.

    The constructor verifies the partition invariant: tiles are pairwise
    disjoint and cover every sample exactly once.
    """

    frame_width: int
    frame_height: int
    tiles: List[Tile] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.frame_width <= 0 or self.frame_height <= 0:
            raise ValueError("frame dimensions must be positive")
        if not self.tiles:
            raise ValueError("a tile grid needs at least one tile")
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` unless tiles exactly partition the frame."""
        total_area = 0
        for tile in self.tiles:
            if tile.x_end > self.frame_width or tile.y_end > self.frame_height:
                raise ValueError(f"tile {tile} exceeds frame bounds")
            total_area += tile.area
        if total_area != self.frame_width * self.frame_height:
            raise ValueError(
                f"tiles cover {total_area} samples, frame has "
                f"{self.frame_width * self.frame_height}"
            )
        # Area match + bounds + pairwise disjointness <=> exact cover.
        tiles = sorted(self.tiles, key=lambda t: (t.y, t.x))
        for i, a in enumerate(tiles):
            for b in tiles[i + 1 :]:
                if b.y >= a.y_end:
                    break
                if a.overlaps(b):
                    raise ValueError(f"tiles overlap: {a} and {b}")

    def __len__(self) -> int:
        return len(self.tiles)

    def __iter__(self) -> Iterator[Tile]:
        return iter(self.tiles)

    def __getitem__(self, idx: int) -> Tile:
        return self.tiles[idx]

    def tile_at(self, px: int, py: int) -> Tile:
        """Tile containing sample ``(px, py)``."""
        for tile in self.tiles:
            if tile.contains_point(px, py):
                return tile
        raise ValueError(f"point ({px},{py}) outside frame")

    def coverage_map(self) -> np.ndarray:
        """``(H, W)`` int array mapping each sample to its tile index."""
        cover = np.full((self.frame_height, self.frame_width), -1, dtype=np.int32)
        for idx, tile in enumerate(self.tiles):
            cover[tile.y : tile.y_end, tile.x : tile.x_end] = idx
        return cover

    @classmethod
    def from_grid(
        cls,
        frame_width: int,
        frame_height: int,
        col_widths: Sequence[int],
        row_heights: Sequence[int],
    ) -> "TileGrid":
        """Build a row/column grid from explicit column widths and row heights."""
        if sum(col_widths) != frame_width:
            raise ValueError(
                f"column widths {col_widths} do not sum to {frame_width}"
            )
        if sum(row_heights) != frame_height:
            raise ValueError(
                f"row heights {row_heights} do not sum to {frame_height}"
            )
        tiles = []
        y = 0
        for rh in row_heights:
            x = 0
            for cw in col_widths:
                tiles.append(Tile(x, y, cw, rh))
                x += cw
            y += rh
        return cls(frame_width, frame_height, tiles)

    @classmethod
    def single(cls, frame_width: int, frame_height: int) -> "TileGrid":
        """The trivial 1x1 tiling."""
        return cls(frame_width, frame_height, [Tile(0, 0, frame_width, frame_height)])


def split_evenly(total: int, parts: int, align: int = 1) -> List[int]:
    """Split ``total`` into ``parts`` near-equal chunks aligned to ``align``.

    All chunks are multiples of ``align`` except that the last absorbs
    ``total % align``.  When ``total`` is too small for ``parts``
    chunks at the requested alignment, the alignment is halved (down to
    1) until feasible — mirroring how HEVC encoders fall back to finer
    CTU granularity for small pictures.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < parts:
        raise ValueError(f"cannot split {total} samples into {parts} parts")
    align = max(1, align)
    while align > 1 and total < parts * align:
        align //= 2
    base = max(align, (total // parts) // align * align)
    sizes = [base] * parts
    leftover = total - base * parts
    index = 0
    while leftover >= align:
        sizes[index % parts] += align
        leftover -= align
        index += 1
    sizes[-1] += leftover
    return sizes
