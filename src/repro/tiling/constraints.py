"""Tiling constraints (paper §III: "the predefined minimum tile size and
the maximum number of tiles within a frame ensure fast ending of this
phase").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TilingConstraints:
    """Bounds on the re-tiling search.

    Attributes
    ----------
    min_tile_width, min_tile_height:
        Minimum tile dimensions in samples.  HEVC requires tiles of at
        least 256x64 luma samples for conformance; the paper encodes
        VGA frames into up to 30 tiles, so it clearly relaxes this.  We
        default to two CTUs (32 samples) per dimension.
    max_tiles:
        Maximum number of tiles within a frame.
    min_center_tiles:
        The paper limits "the minimum number of tiles used for the
        high-texture and high-motion area of the frame to 4" to keep
        parallelization high.
    growth_step:
        Corner/border tile growth factor per iteration; the paper found
        25% experimentally.
    max_margin_fraction:
        Upper bound on how far a border tile may grow into the frame,
        as a fraction of the frame dimension.  Keeps the centre region
        non-degenerate even on blank content.
    align:
        Tile boundary alignment (CTU size of the codec substrate).
    """

    min_tile_width: int = 32
    min_tile_height: int = 32
    max_tiles: int = 24
    min_center_tiles: int = 4
    growth_step: float = 0.25
    max_margin_fraction: float = 0.35
    align: int = 16

    def __post_init__(self) -> None:
        if self.min_tile_width <= 0 or self.min_tile_height <= 0:
            raise ValueError("minimum tile dimensions must be positive")
        if self.max_tiles < self.min_center_tiles + 1:
            raise ValueError(
                "max_tiles must leave room for the centre tiles plus a border"
            )
        if not 0 < self.growth_step <= 1:
            raise ValueError("growth_step must be in (0, 1]")
        if not 0 < self.max_margin_fraction < 0.5:
            raise ValueError("max_margin_fraction must be in (0, 0.5)")
        if self.align <= 0:
            raise ValueError("align must be positive")
