"""Uniform n x m tiling (paper Table I: "n x m denotes uniform tiling
where the frame width and height are divided by n and m").
"""

from __future__ import annotations

from repro.tiling.tile import TileGrid, split_evenly


def uniform_tiling(
    frame_width: int,
    frame_height: int,
    cols: int,
    rows: int,
    align: int = 16,
) -> TileGrid:
    """Divide the frame width by ``cols`` and height by ``rows``.

    Boundaries are aligned to ``align`` samples (the CTU size used by
    the codec substrate) except for the last column/row which absorbs
    the remainder, matching HEVC uniform tile spacing.
    """
    if cols <= 0 or rows <= 0:
        raise ValueError("cols and rows must be positive")
    col_widths = split_evenly(frame_width, cols, align=align)
    row_heights = split_evenly(frame_height, rows, align=align)
    return TileGrid.from_grid(frame_width, frame_height, col_widths, row_heights)


#: The uniform tilings evaluated in the paper's Table I, as (cols, rows).
TABLE1_TILINGS = [
    (1, 1), (2, 1), (2, 2), (2, 3), (2, 4), (5, 2),
    (4, 3), (5, 3), (5, 4), (4, 6), (5, 6),
]
