"""``repro bench`` — run the micro-benchmarks and record throughput.

Runs the pytest-benchmark groups of ``benchmarks/test_micro.py`` in a
subprocess, then post-processes the raw timing JSON into a compact
``BENCH_<n>.json`` at the repository root with derived throughput
numbers:

* codec benchmarks (``micro-codec``): **pixels/s** — frame area over
  mean encode time;
* motion benchmarks (``micro-motion``): **candidates/s** — the number
  of SAD candidates the algorithm actually evaluates on the benchmark
  block (measured once via ``MotionSearchResult.sad_evaluations``)
  over mean search time.

``BENCH_<n>`` auto-increments so successive optimisation passes leave
a comparable history (``--out`` overrides the path).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

#: Keyword filters selecting each benchmark group in test_micro.py.
GROUP_FILTERS = {
    "motion": "test_motion_search",
    "codec": "test_encode_intra_frame or test_encode_inter_frame",
    "analysis": "test_content_evaluation or test_content_aware_retiling",
    "generator": "test_video_generation",
}

#: Frame geometry of the micro-benchmark fixture.
_BENCH_WIDTH = 320
_BENCH_HEIGHT = 240

#: Motion benchmark ids -> (algorithm factory, window), mirroring the
#: parametrization of ``test_motion_search``.
def _motion_cases():
    from repro.motion import FullSearch, HexagonSearch, TZSearch

    return {
        "full-16": (FullSearch(), 16),
        "tz-64": (TZSearch(), 64),
        "hexagon-64": (HexagonSearch(), 64),
    }


def repo_root() -> Path:
    """The repository root (two levels above this module's package)."""
    return Path(__file__).resolve().parents[2]


#: Exactly ``BENCH_<decimal>`` — names like ``BENCH_old_3`` or
#: ``BENCH_3_backup`` are unrelated files, not history entries.
_BENCH_STEM = re.compile(r"^BENCH_(\d+)$")


def next_bench_path(root: Path) -> Path:
    """First unused ``BENCH_<n>.json`` at ``root``.

    Only stems matching ``BENCH_<decimal>`` occupy an index; any other
    suffix is ignored rather than misparsed.
    """
    taken = set()
    for p in root.glob("BENCH_*.json"):
        m = _BENCH_STEM.match(p.stem)
        if m:
            taken.add(int(m.group(1)))
    n = 0
    while n in taken:
        n += 1
    return root / f"BENCH_{n}.json"


def git_sha(root: Optional[Path] = None) -> Optional[str]:
    """The repository's current commit SHA (``None`` outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root or repo_root(), capture_output=True, text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def _bench_frames():
    from repro.video.generator import (
        BioMedicalVideoGenerator,
        ContentClass,
        GeneratorConfig,
        MotionPreset,
    )

    cfg = GeneratorConfig(
        width=_BENCH_WIDTH, height=_BENCH_HEIGHT, num_frames=2, seed=0,
        content_class=ContentClass.BRAIN, motion=MotionPreset.PAN_RIGHT,
        motion_magnitude=3.0,
    )
    v = BioMedicalVideoGenerator(cfg).generate()
    return v[0].luma, v[1].luma


def motion_candidate_counts() -> Dict[str, int]:
    """Candidates each motion benchmark evaluates per search.

    Reproduces the benchmark's context exactly (same generated frames,
    block and window) and reads ``sad_evaluations`` off the result, so
    the throughput denominator matches what the timed code really did.
    """
    from repro.motion.base import SearchContext

    prev, cur = _bench_frames()
    block = cur[112:128, 144:160]
    counts = {}
    for bench_id, (alg, window) in _motion_cases().items():
        ctx = SearchContext(prev, block, 144, 112, window, lambda_mv=4.0)
        result = alg.search(ctx)
        counts[bench_id] = result.sad_evaluations
    return counts


def run_pytest_benchmark(
    groups: List[str], json_path: Path, pytest_args: Optional[List[str]] = None
) -> None:
    """Run the selected micro-benchmark groups into ``json_path``."""
    bench_file = repo_root() / "benchmarks" / "test_micro.py"
    if not bench_file.exists():
        raise FileNotFoundError(f"benchmark suite not found: {bench_file}")
    keywords = " or ".join(GROUP_FILTERS[g] for g in groups)
    env = dict(os.environ)
    src = str(repo_root() / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "pytest", str(bench_file),
        "-q", "-p", "no:cacheprovider",
        "-k", keywords,
        "--benchmark-only",
        f"--benchmark-json={json_path}",
    ]
    cmd += pytest_args or []
    subprocess.run(cmd, check=True, env=env, cwd=repo_root())


def summarize(raw: dict, groups: List[str]) -> dict:
    """Reduce pytest-benchmark JSON to throughput records."""
    candidates = (
        motion_candidate_counts() if "motion" in groups else {}
    )
    pixels = _BENCH_WIDTH * _BENCH_HEIGHT
    records = []
    for bench in raw.get("benchmarks", []):
        group = bench.get("group")
        stats = bench["stats"]
        mean = stats["mean"]
        record = {
            "name": bench["name"],
            "group": group,
            "mean_s": mean,
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        if group == "micro-codec":
            record["pixels_per_s"] = pixels / mean
        elif group == "micro-motion":
            bench_id = bench["name"].split("[")[-1].rstrip("]")
            n = candidates.get(bench_id)
            if n is not None:
                record["candidates_per_search"] = n
                record["candidates_per_s"] = n / mean
        records.append(record)
    return {
        "machine_info": raw.get("machine_info", {}),
        "datetime": raw.get("datetime"),
        "git_sha": git_sha(),
        "groups": groups,
        "benchmarks": records,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench", description=__doc__,
    )
    parser.add_argument(
        "--groups", nargs="+", default=["motion", "codec"],
        choices=sorted(GROUP_FILTERS),
        help="benchmark groups to run (default: motion codec)",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output path (default: next free BENCH_<n>.json at the repo root)",
    )
    args = parser.parse_args(argv)
    if args.out is not None and args.out.exists():
        parser.error(f"refusing to overwrite existing {args.out}")
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "raw.json"
        run_pytest_benchmark(args.groups, raw_path)
        raw = json.loads(raw_path.read_text())
    summary = summarize(raw, args.groups)
    payload = json.dumps(summary, indent=2) + "\n"
    if args.out is not None:
        out = args.out
        try:
            with open(out, "x") as fh:
                fh.write(payload)
        except FileExistsError:
            raise SystemExit(f"refusing to overwrite existing {out}")
    else:
        # Exclusive create; on a lost race the rescan sees the new file
        # and hands out the next free index.
        while True:
            out = next_bench_path(repo_root())
            try:
                with open(out, "x") as fh:
                    fh.write(payload)
                break
            except FileExistsError:
                continue
    print(f"wrote {out}")
    for rec in summary["benchmarks"]:
        rate = rec.get("pixels_per_s") or rec.get("candidates_per_s")
        unit = "pixels/s" if "pixels_per_s" in rec else (
            "candidates/s" if "candidates_per_s" in rec else ""
        )
        extra = f"  {rate:,.0f} {unit}" if rate else ""
        print(f"  {rec['name']:<42} {rec['mean_s'] * 1e3:9.3f} ms{extra}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
