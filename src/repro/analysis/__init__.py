"""Content analysis: low-overhead texture and motion evaluation
(paper §III-A).
"""

from repro.analysis.texture import (
    TextureClass,
    TextureThresholds,
    coefficient_of_variation,
    classify_texture,
)
from repro.analysis.motion_probe import (
    MotionClass,
    MotionProbe,
    MotionProbeConfig,
)
from repro.analysis.evaluator import ContentEvaluator, TileContent
from repro.analysis.classes import (
    ContentClassifier,
    FrameFeatures,
    default_classifier,
    extract_features,
)

__all__ = [
    "ContentClassifier",
    "FrameFeatures",
    "default_classifier",
    "extract_features",
    "TextureClass",
    "TextureThresholds",
    "coefficient_of_variation",
    "classify_texture",
    "MotionClass",
    "MotionProbe",
    "MotionProbeConfig",
    "ContentEvaluator",
    "TileContent",
]
