"""Body-part content classification (paper §III-D1).

"Medical images are classifiable in very limited categories based on
part of the body that is under the study ... This feature allows us to
use the obtained LUT of one MRI or CT data [for] the rest of images in
the same class."

To *use* that property online, the server must recognise a new video's
class before its own LUT entries exist.  This module provides a
lightweight nearest-centroid classifier over cheap frame statistics —
the features are deliberately computable from the same pass that
evaluates texture (mean, CV) plus two structure cues (edge density and
a speckle index that separates ultrasound).

Centroids ship pre-fitted for the synthetic corpus but can be re-fitted
on any labelled collection via :meth:`ContentClassifier.fit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.video.frame import Frame, Video
from repro.video.generator import ContentClass


@dataclass(frozen=True)
class FrameFeatures:
    """Cheap per-frame statistics used for classification."""

    mean_luma: float
    cv: float
    edge_density: float
    speckle_index: float

    def as_vector(self) -> np.ndarray:
        return np.array([
            self.mean_luma / 255.0,
            self.cv,
            self.edge_density,
            self.speckle_index,
        ])


def extract_features(luma: np.ndarray) -> FrameFeatures:
    """Compute the classification features of one luma plane."""
    plane = np.asarray(luma, dtype=np.float64)
    if plane.size == 0:
        raise ValueError("empty frame")
    mean = float(plane.mean())
    cv = float(plane.std() / mean) if mean > 0 else 0.0
    # Edge density: fraction of strong gradients.
    gy, gx = np.gradient(plane)
    magnitude = np.hypot(gx, gy)
    edge_density = float((magnitude > 25.0).mean())
    # Speckle index: high-frequency energy relative to local mean in
    # the bright region (ultrasound speckle is multiplicative noise).
    bright = plane > 40.0
    if bright.any():
        local = plane[bright]
        highpass = magnitude[bright]
        speckle = float(np.median(highpass) / (np.median(local) + 1e-9))
    else:
        speckle = 0.0
    return FrameFeatures(mean, cv, edge_density, speckle)


class ContentClassifier:
    """Nearest-centroid classifier over :class:`FrameFeatures`."""

    def __init__(self, centroids: Optional[Dict[ContentClass, np.ndarray]] = None):
        self.centroids: Dict[ContentClass, np.ndarray] = dict(centroids or {})

    def fit(self, labelled: Iterable[Tuple[ContentClass, Video]]) -> "ContentClassifier":
        """Fit centroids from labelled videos (uses every 4th frame)."""
        buckets: Dict[ContentClass, List[np.ndarray]] = {}
        for label, video in labelled:
            for frame in video.frames[::4] or video.frames[:1]:
                buckets.setdefault(label, []).append(
                    extract_features(frame.luma).as_vector()
                )
        if not buckets:
            raise ValueError("no labelled videos supplied")
        self.centroids = {
            label: np.mean(np.stack(vectors), axis=0)
            for label, vectors in buckets.items()
        }
        return self

    def classify_frame(self, frame: Frame) -> ContentClass:
        return self._nearest(extract_features(frame.luma).as_vector())

    def classify_features(self, features: FrameFeatures) -> ContentClass:
        """Classify from pre-extracted features.

        The rendition ladder computes one :func:`extract_features` pass
        at full resolution and reuses it for classification *and* rung
        planning — this entry point is what makes that sharing
        possible without re-running the feature pass.
        """
        return self._nearest(features.as_vector())

    def classify_video(self, video: Video, stride: int = 4) -> ContentClass:
        """Majority vote over sampled frames."""
        if len(video) == 0:
            raise ValueError("empty video")
        votes: Dict[ContentClass, int] = {}
        for frame in video.frames[::stride] or video.frames[:1]:
            label = self.classify_frame(frame)
            votes[label] = votes.get(label, 0) + 1
        return max(votes.items(), key=lambda kv: (kv[1], kv[0].value))[0]

    def _nearest(self, vector: np.ndarray) -> ContentClass:
        if not self.centroids:
            raise ValueError("classifier has no centroids; call fit() first")
        best = None
        best_dist = float("inf")
        for label, centroid in self.centroids.items():
            dist = float(np.linalg.norm(vector - centroid))
            if dist < best_dist:
                best, best_dist = label, dist
        return best


def default_classifier(seed: int = 0, width: int = 160, height: int = 128) -> ContentClassifier:
    """A classifier fitted on the synthetic corpus (one video per
    class, a few frames each — fast enough to build at import site)."""
    from repro.video.generator import (
        BioMedicalVideoGenerator,
        GeneratorConfig,
        MotionPreset,
    )
    labelled = []
    for cc in ContentClass:
        video = BioMedicalVideoGenerator(GeneratorConfig(
            width=width, height=height, num_frames=4, seed=seed,
            content_class=cc, motion=MotionPreset.PAN_RIGHT,
        )).generate()
        labelled.append((cc, video))
    return ContentClassifier().fit(labelled)
