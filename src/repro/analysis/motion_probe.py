"""Low-overhead motion evaluation (paper Eq. 2 and Eq. 3).

The paper compares a *limited number of pixels* between the current
tile and the co-located tile of the previous frame: the four corners,
the centre, and the location of the maximum sample::

    M = alpha * sum_i x_i  +  beta * c  +  gamma * m

where ``x_i``, ``c`` and ``m`` are booleans that are 1 when the
corresponding pixels differ (0 when equal).  Medical images require
larger coefficients for the centre and the maximum point; the paper
chooses alpha=1, beta=3, gamma=3 and a threshold M_th = 3: a tile is
*high-motion* when ``M >= M_th``.

A small tolerance absorbs sensor noise: two samples "are equal" when
they differ by at most ``pixel_tolerance`` grey levels.  (The paper's
clinical videos are denoised DICOM exports; our synthetic videos carry
additive noise, so exact equality would classify everything as motion.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np


class MotionClass(enum.IntEnum):
    """Two motion levels (paper Eq. 3: low / high)."""

    LOW = 0
    HIGH = 1


@dataclass(frozen=True)
class MotionProbeConfig:
    """Coefficients and threshold of the motion metric (Eq. 2/3).

    ``patch_radius`` extends each probed pixel to the mean of its
    ``(2r+1) x (2r+1)`` neighbourhood.  The paper compares raw pixels
    (its clinical videos are denoised exports); our synthetic videos
    carry additive sensor noise, and a single extreme pixel — the
    max-point probe selects exactly such pixels — would flip between
    frames from noise alone.  Averaging a 3x3 patch suppresses the
    noise by 3x while leaving genuine content motion (which moves whole
    structures, not single samples) detectable.
    """

    alpha: float = 1.0
    beta: float = 3.0
    gamma: float = 3.0
    threshold: float = 3.0
    pixel_tolerance: int = 4
    patch_radius: int = 1

    def __post_init__(self) -> None:
        if min(self.alpha, self.beta, self.gamma) < 0:
            raise ValueError("coefficients must be non-negative")
        if self.pixel_tolerance < 0:
            raise ValueError("pixel_tolerance must be non-negative")
        if self.patch_radius < 0:
            raise ValueError("patch_radius must be non-negative")


class MotionProbe:
    """Pixel-to-pixel motion probe over a tile region."""

    def __init__(self, config: MotionProbeConfig = MotionProbeConfig()):
        self.config = config

    def probe_points(self, region: np.ndarray) -> Tuple[Tuple[int, int], ...]:
        """Coordinates probed within a region: 4 corners, centre, argmax."""
        h, w = region.shape
        corners = ((0, 0), (0, w - 1), (h - 1, 0), (h - 1, w - 1))
        center = (h // 2, w // 2)
        flat_idx = int(np.argmax(region))
        max_point = (flat_idx // w, flat_idx % w)
        return corners + (center, max_point)

    def score(self, current: np.ndarray, previous: np.ndarray) -> float:
        """Motion metric M of Eq. 2 for co-located tile regions.

        The maximum-point location is taken from the *current* region
        and compared against the same coordinate in the previous frame,
        implementing the paper's "the one with the maximum value".
        """
        current = np.asarray(current)
        previous = np.asarray(previous)
        if current.shape != previous.shape:
            raise ValueError(
                f"region shape mismatch {current.shape} vs {previous.shape}"
            )
        cfg = self.config
        points = self.probe_points(current)
        corners, center, max_point = points[:4], points[4], points[5]
        h, w = current.shape
        r = cfg.patch_radius

        def sample(plane: np.ndarray, pt: Tuple[int, int]) -> float:
            y, x = pt
            y0, y1 = max(0, y - r), min(h, y + r + 1)
            x0, x1 = max(0, x - r), min(w, x + r + 1)
            return float(plane[y0:y1, x0:x1].mean())

        def differs(pt: Tuple[int, int]) -> bool:
            return abs(sample(current, pt) - sample(previous, pt)) > cfg.pixel_tolerance

        corner_sum = sum(differs(pt) for pt in corners)
        return (
            cfg.alpha * corner_sum
            + cfg.beta * differs(center)
            + cfg.gamma * differs(max_point)
        )

    def classify(self, current: np.ndarray, previous: np.ndarray) -> MotionClass:
        """Low/high motion decision of Eq. 3."""
        if self.score(current, previous) >= self.config.threshold:
            return MotionClass.HIGH
        return MotionClass.LOW
