"""Combined per-tile motion & texture evaluation (the "Motion & Texture
Evaluation" block of the paper's Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.analysis.motion_probe import MotionClass, MotionProbe, MotionProbeConfig
from repro.analysis.texture import (
    TextureClass,
    TextureThresholds,
    classify_texture,
    coefficient_of_variation,
)

if TYPE_CHECKING:  # avoid a circular import with repro.tiling
    from repro.tiling.tile import Tile, TileGrid


@dataclass(frozen=True)
class TileContent:
    """Evaluated content of one tile."""

    tile: Tile
    texture: TextureClass
    motion: MotionClass
    cv: float
    motion_score: float


class ContentEvaluator:
    """Evaluates texture and motion for each tile of a frame.

    The paper notes (§III-A) that in bio-medical imaging the parts of
    the frame containing useful data move in the same direction, so
    "evaluating one initial tile for the motion can be sufficient to
    quantify the motion of all remaining tiles".  With
    ``shared_motion=True`` (the default, matching the paper), the
    motion class measured on the most central tile is propagated to
    every tile whose texture is not LOW; LOW-texture border tiles keep
    their individually-probed (typically LOW) motion.
    """

    def __init__(
        self,
        texture_thresholds: TextureThresholds = TextureThresholds(),
        motion_config: MotionProbeConfig = MotionProbeConfig(),
        shared_motion: bool = True,
    ):
        self.texture_thresholds = texture_thresholds
        self.motion_probe = MotionProbe(motion_config)
        self.shared_motion = shared_motion

    def evaluate_tile(
        self,
        tile: Tile,
        current: np.ndarray,
        previous: Optional[np.ndarray],
    ) -> TileContent:
        """Evaluate one tile. ``previous=None`` (first frame) means no motion."""
        region = tile.extract(current)
        cv = coefficient_of_variation(region)
        texture = classify_texture(region, self.texture_thresholds)
        if previous is None:
            return TileContent(tile, texture, MotionClass.LOW, cv, 0.0)
        prev_region = tile.extract(previous)
        score = self.motion_probe.score(region, prev_region)
        motion = (
            MotionClass.HIGH
            if score >= self.motion_probe.config.threshold
            else MotionClass.LOW
        )
        return TileContent(tile, texture, motion, cv, score)

    def evaluate(
        self,
        grid: TileGrid,
        current: np.ndarray,
        previous: Optional[np.ndarray],
    ) -> List[TileContent]:
        """Evaluate every tile of a grid against the previous frame."""
        contents = [self.evaluate_tile(t, current, previous) for t in grid]
        if self.shared_motion and previous is not None and contents:
            contents = self._propagate_central_motion(grid, contents)
        return contents

    def _propagate_central_motion(
        self, grid: TileGrid, contents: List[TileContent]
    ) -> List[TileContent]:
        """Propagate the central tile's motion class to textured tiles."""
        fx, fy = grid.frame_width / 2.0, grid.frame_height / 2.0
        central = min(
            contents,
            key=lambda c: (c.tile.center[0] - fx) ** 2 + (c.tile.center[1] - fy) ** 2,
        )
        out = []
        for c in contents:
            if c.texture is TextureClass.LOW or c is central:
                out.append(c)
            else:
                out.append(
                    TileContent(c.tile, c.texture, central.motion, c.cv, c.motion_score)
                )
        return out
