"""Texture evaluation via the coefficient of variation (paper Eq. 1).

The paper quantifies the texture of a tile with the coefficient of
variation (CV) of its luma samples — the ratio of the standard
deviation to the mean — and classifies it against two thresholds::

    T = low     if CV <= T_th,l
        medium  if T_th,l < CV <= T_th,h
        high    if CV > T_th,h

The thresholds are not given numerically in the paper; the defaults
below were calibrated on the synthetic video corpus so that borders of
centred anatomy classify *low* and organ interiors classify *high*
(reproducing the behaviour of Fig. 1/Fig. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class TextureClass(enum.IntEnum):
    """Ordered texture classes; higher value means more texture."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2


@dataclass(frozen=True)
class TextureThresholds:
    """CV thresholds (T_th,l and T_th,h in the paper's Eq. 1).

    ``dark_mean`` guards the CV's denominator: a near-black region
    (mean luma below ``dark_mean``) carries no diagnostic content and
    is classified LOW regardless of its CV, which would otherwise blow
    up through the tiny mean.  Medical frame borders are exactly such
    regions (paper Fig. 1).
    """

    low: float = 0.25
    high: float = 0.60
    dark_mean: float = 40.0

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(
                f"need 0 <= low <= high, got low={self.low} high={self.high}"
            )
        if self.dark_mean < 0:
            raise ValueError("dark_mean must be non-negative")


def coefficient_of_variation(samples: np.ndarray) -> float:
    """CV = standard deviation / mean of the luma samples.

    A zero-mean (all-black) region has no meaningful CV; it is reported
    as 0.0, i.e. minimal texture, which matches the intent of the
    classifier (nothing to encode there).
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("empty sample region")
    mean = float(samples.mean())
    if mean == 0.0:
        return 0.0
    return float(samples.std() / mean)


def classify_texture(
    samples: np.ndarray, thresholds: TextureThresholds = TextureThresholds()
) -> TextureClass:
    """Classify a tile's texture per the paper's Eq. 1."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("empty sample region")
    if samples.mean() < thresholds.dark_mean:
        return TextureClass.LOW
    cv = coefficient_of_variation(samples)
    if cv <= thresholds.low:
        return TextureClass.LOW
    if cv <= thresholds.high:
        return TextureClass.MEDIUM
    return TextureClass.HIGH
