"""Seeded chaos proxy for the serving path.

A TCP man-in-the-middle that sits between :mod:`repro.serving.loadgen`
and :mod:`repro.serving.server` and injects the network fault classes
an online transcoding service actually meets:

* **latency spikes** — a forwarded chunk is held for a configured
  delay (congestion, a retransmit burst),
* **connection resets** — the transport is aborted mid-stream (NAT
  timeout, a crashed middlebox; the peer sees ``ECONNRESET``),
* **payload corruption** — a byte is flipped in flight (the wire CRC
  must catch it; the protocol layer may never misparse),
* **half-open stalls** — forwarding silently pauses while the socket
  stays open (the failure mode watchdogs exist for).

All randomness flows through per-connection, per-direction
``numpy`` generators derived from ``ChaosConfig.seed`` — the same
discipline as :class:`repro.resilience.faults.FaultInjector` — so a
drill with one seed injects one reproducible fault sequence per
connection regardless of task scheduling order.

For the bit-identity resume test the rate-based faults are too coarse:
``cut_after_c2s_bytes`` cuts a connection after *exactly* that many
client-to-server payload bytes have been forwarded, and
``cut_connections`` bounds how many connections suffer the cut — set
it to 1 and the reconnect sails through the same proxy untouched.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = ["ChaosConfig", "ChaosProxy"]

_CHUNK = 65536


@dataclass(frozen=True)
class ChaosConfig:
    """Rates of each injected network fault (probabilities are per
    forwarded chunk, per direction)."""

    seed: int = 0
    latency_spike_rate: float = 0.0
    latency_spike_s: float = 0.05
    reset_rate: float = 0.0
    corrupt_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.25
    #: Deterministic cut: abort after exactly this many client->server
    #: bytes (0 disables).
    cut_after_c2s_bytes: int = 0
    #: Only the first N accepted connections are subject to the cut.
    cut_connections: int = 1

    def __post_init__(self) -> None:
        for name in ("latency_spike_rate", "reset_rate", "corrupt_rate",
                     "stall_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.latency_spike_s < 0 or self.stall_s < 0:
            raise ValueError("delays must be non-negative")
        if self.cut_after_c2s_bytes < 0 or self.cut_connections < 0:
            raise ValueError("cut parameters must be non-negative")


class ChaosProxy:
    """Asyncio TCP proxy injecting seeded faults; counts what it did.

    Usable as an async context manager::

        async with ChaosProxy("127.0.0.1", server_port, cfg) as proxy:
            ...  # connect clients to ("127.0.0.1", proxy.port)
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 config: ChaosConfig = ChaosConfig(),
                 host: str = "127.0.0.1", port: int = 0):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.config = config
        self.host = host
        self.port = port
        self.connections = 0
        #: ``fault kind -> number injected`` (deterministic given seed
        #: and traffic).
        self.counts: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None

    def _tally(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ChaosProxy":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- forwarding ----------------------------------------------------
    async def _handle(self, client_reader: asyncio.StreamReader,
                      client_writer: asyncio.StreamWriter) -> None:
        conn_index = self.connections
        self.connections += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            self._tally("upstream_refused")
            client_writer.transport.abort()
            return
        cut_budget = None
        if (self.config.cut_after_c2s_bytes > 0
                and conn_index < self.config.cut_connections):
            cut_budget = self.config.cut_after_c2s_bytes
        writers = (client_writer, up_writer)
        pumps = [
            asyncio.ensure_future(self._pump(
                client_reader, up_writer, writers,
                rng=np.random.default_rng(
                    [self.config.seed, conn_index, 0]
                ),
                cut_budget=cut_budget,
            )),
            asyncio.ensure_future(self._pump(
                up_reader, client_writer, writers,
                rng=np.random.default_rng(
                    [self.config.seed, conn_index, 1]
                ),
                cut_budget=None,
            )),
        ]
        try:
            await asyncio.gather(*pumps, return_exceptions=True)
        finally:
            for w in writers:
                try:
                    w.close()
                except RuntimeError:  # pragma: no cover - loop teardown
                    pass

    async def _pump(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter, writers,
                    rng: np.random.Generator,
                    cut_budget: Optional[int]) -> None:
        cfg = self.config
        try:
            while True:
                chunk = await reader.read(_CHUNK)
                if not chunk:
                    if writer.can_write_eof():
                        try:
                            writer.write_eof()
                        except (OSError, RuntimeError):
                            pass
                    return
                if cut_budget is not None:
                    if len(chunk) >= cut_budget:
                        # Forward exactly the budget, then die
                        # mid-message: the deterministic mid-GOP cut.
                        writer.write(chunk[:cut_budget])
                        try:
                            await writer.drain()
                        except (ConnectionError, OSError):
                            pass
                        self._tally("cut")
                        self._abort(writers)
                        return
                    cut_budget -= len(chunk)
                if cfg.reset_rate > 0 and rng.random() < cfg.reset_rate:
                    self._tally("reset")
                    self._abort(writers)
                    return
                if cfg.corrupt_rate > 0 and rng.random() < cfg.corrupt_rate:
                    self._tally("corrupt")
                    pos = int(rng.integers(0, len(chunk)))
                    damaged = bytearray(chunk)
                    damaged[pos] ^= 0xFF
                    chunk = bytes(damaged)
                if cfg.stall_rate > 0 and rng.random() < cfg.stall_rate:
                    # Half-open stall: the socket stays up, nothing
                    # moves — the peer just sees silence.
                    self._tally("stall")
                    await asyncio.sleep(cfg.stall_s)
                elif (cfg.latency_spike_rate > 0
                      and rng.random() < cfg.latency_spike_rate):
                    self._tally("latency_spike")
                    await asyncio.sleep(cfg.latency_spike_s)
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            return

    @staticmethod
    def _abort(writers) -> None:
        for w in writers:
            transport = w.transport
            if transport is not None:
                transport.abort()
