"""Pluggable externalized session state for the serving fleet.

PR 5 made a single server crash-safe by journaling every session to
disk; the journal format already makes a session *portable* — nothing
in it is bound to the process that wrote it.  This module externalizes
that state behind a small interface so **any** worker of a fleet can
adopt a RESUME token whose original owner died:

``StateStore``
    The contract a serving worker needs: token-addressed session
    journals (create/reopen/restore/discard), a shared LUT checkpoint,
    and **single-owner leases**.

``SharedDirStateStore``
    The first implementation: a shared directory of per-session
    journals (:class:`repro.serving.recovery.JournalStore`), the LUT
    checkpoint next to them, and a sidecar lease file per token.

The lease protocol is what prevents the *diverging-twin-session* race
across processes (PR 5's review fixed it within one process with the
``_attached`` map): a journal admits exactly one writer, so a worker
must hold the token's lease for the whole time its handler may append.

* **acquire** is atomic: the lease file is created with
  ``O_CREAT | O_EXCL`` under a per-token ``flock``, so two workers
  racing for one token get exactly one winner; the loser sees a typed
  :class:`~repro.resilience.errors.LeaseHeldError`.
* A lease names its owner (``"<worker>:<pid>"``) and pid.  A lease
  whose owner pid is **dead** is stale and is reclaimed in place —
  that reclaim *is* crash failover: the adopting worker takes over the
  journal exactly where the dead worker's last durable GOP left it.
* A **torn lease file** (the mid-write crash signature, mirroring the
  journal's torn-tail semantics) is crash debris, never a verdict:
  it is reclaimable by anyone.
* Acquire is idempotent for the holder: re-acquiring one's own lease
  succeeds (the in-process RESUME preemption path re-enters here).

Liveness is pid-based, which assumes the store's directory is shared
by workers of one machine (the supervisor's deployment model).  The
fleet supervisor additionally calls :meth:`break_owner` the moment it
reaps a dead worker, so adoption does not have to wait for a pid probe
to notice.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

try:  # POSIX; the serving fleet targets Linux
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.resilience.checkpoint import (
    CheckpointLoadResult,
    canonical_json,
    load_lut,
    payload_checksum,
    save_lut,
)
from repro.resilience.errors import LeaseHeldError
from repro.serving.recovery import (
    JournalStore,
    RestoredSession,
    SessionJournal,
)
from repro.storage.errors import RetryPolicy, StorageError
from repro.storage.faultfs import FileOps
from repro.workload.lut import WorkloadLut

__all__ = [
    "Lease",
    "LEASE_SUFFIX",
    "SharedDirStateStore",
    "StateStore",
    "pid_alive",
]

LEASE_SUFFIX = ".lease"
_LOCK_SUFFIX = ".lock"


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a local pid.

    ``EPERM`` means the pid exists under another uid — alive.  A pid
    that was reaped raises ``ProcessLookupError`` — dead.  (A zombie
    still counts as alive; the fleet supervisor reaps its children
    promptly and sweeps their leases via :meth:`break_owner`.)
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - cross-uid deployment
        return True
    return True


@dataclass(frozen=True)
class Lease:
    """One granted session lease."""

    token: str
    owner: str
    pid: int
    #: Owner recorded in the lease this acquire replaced: ``""`` for a
    #: fresh lease, the dead/torn previous holder for a reclaim.  A
    #: non-empty value from a *different* owner is what the server
    #: counts as a cross-worker adoption.
    previous_owner: str = ""
    #: True when the acquire reclaimed a stale (dead-owner or torn)
    #: lease rather than creating a fresh one.
    reclaimed: bool = False


class StateStore(abc.ABC):
    """What a serving worker needs from externalized session state.

    The interface is deliberately the union of what
    :class:`~repro.serving.server.NetworkServer` already consumed from
    :class:`~repro.serving.recovery.JournalStore` plus the lease and
    LUT-checkpoint operations, so a worker is indifferent to where the
    state actually lives (shared directory today; a network KV store
    would slot in behind the same contract).
    """

    # -- journals ------------------------------------------------------
    @abc.abstractmethod
    def new_token(self, session_id: int, client_id: str = "") -> str: ...

    @abc.abstractmethod
    def exists(self, token: str) -> bool: ...

    @abc.abstractmethod
    def create(self, token: str) -> SessionJournal: ...

    @abc.abstractmethod
    def reopen(self, token: str, next_seq: int,
               truncate_to: Optional[int] = None) -> SessionJournal: ...

    @abc.abstractmethod
    def restore(self, token: str,
                strict: bool = False) -> RestoredSession: ...

    @abc.abstractmethod
    def tokens(self) -> List[str]: ...

    @abc.abstractmethod
    def discard(self, token: str) -> None: ...

    # -- leases --------------------------------------------------------
    @abc.abstractmethod
    def acquire(self, token: str) -> Lease: ...

    @abc.abstractmethod
    def release(self, token: str) -> None: ...

    @abc.abstractmethod
    def lease_info(self, token: str) -> Optional[Dict[str, object]]: ...

    @abc.abstractmethod
    def break_owner(self, pid: int) -> List[str]: ...

    # -- shared LUT checkpoint -----------------------------------------
    @abc.abstractmethod
    def load_lut(self) -> CheckpointLoadResult: ...

    @abc.abstractmethod
    def save_lut(self, lut: WorkloadLut) -> None: ...


class SharedDirStateStore(JournalStore, StateStore):
    """Shared-directory state store: journals + LUT + lease sidecars.

    ``owner`` identifies this store's holder in lease records
    (convention: ``"<worker_id>:<pid>"``; defaults to the bare pid).
    ``lease`` toggles the lease protocol — ``False`` turns acquire /
    release into no-ops for single-process deployments and for the
    overhead benchmark's baseline arm.
    """

    def __init__(self, root: Union[str, os.PathLike], fsync: bool = True,
                 owner: str = "", pid: Optional[int] = None,
                 lease: bool = True, fileops: Optional[FileOps] = None,
                 retry: Optional[RetryPolicy] = None,
                 on_retry=None):
        super().__init__(root, fsync=fsync, fileops=fileops, retry=retry,
                         on_retry=on_retry)
        self.pid = os.getpid() if pid is None else int(pid)
        self.owner = owner or str(self.pid)
        self.lease_enabled = lease

    # -- lease files ---------------------------------------------------
    def lease_path(self, token: str) -> str:
        return self.path_for(token)[: -len(".journal")] + LEASE_SUFFIX

    def _lock_path(self, token: str) -> str:
        return self.path_for(token)[: -len(".journal")] + _LOCK_SUFFIX

    def _lease_body(self, token: str) -> bytes:
        body = {"token": token, "owner": self.owner, "pid": self.pid}
        body_json = canonical_json(body)
        digest = payload_checksum(body)
        line = '{"checksum":"' + digest + '",' + body_json[1:]
        return line.encode("utf-8") + b"\n"

    @staticmethod
    def _parse_lease(raw: bytes) -> Optional[Dict[str, object]]:
        """Decode a lease file; ``None`` = torn/corrupt (reclaimable).

        The torn-write semantics mirror the journal's: a lease that
        fails checksum or decode is the debris of a crash mid-write,
        not a held lease — treating it as held would wedge the token
        forever on a fault that, by construction, killed its writer.
        """
        import json

        try:
            record = json.loads(raw.decode("utf-8"))
            body = {"token": record["token"], "owner": record["owner"],
                    "pid": record["pid"]}
            if payload_checksum(body) != record["checksum"]:
                return None
            return {"token": str(body["token"]),
                    "owner": str(body["owner"]), "pid": int(body["pid"])}
        except (KeyError, TypeError, ValueError, UnicodeDecodeError):
            return None

    def lease_info(self, token: str) -> Optional[Dict[str, object]]:
        """Current lease record for ``token``; ``None`` when unleased
        or torn.  Adds ``"alive"`` (owner-pid liveness) for routers."""
        try:
            raw = self._ops.read_bytes(self.lease_path(token),
                                       point="lease.read")
        except FileNotFoundError:
            return None
        info = self._parse_lease(raw)
        if info is not None:
            info["alive"] = pid_alive(int(info["pid"]))
        return info

    def _write_lease(self, token: str, exclusive: bool) -> None:
        self._ops.write_file(
            self.lease_path(token), self._lease_body(token),
            point="lease.create" if exclusive else "lease.update",
            exclusive=exclusive, fsync=self.fsync,
        )

    def _token_lock(self, token: str):
        """Per-token critical section serializing acquire vs reclaim.

        ``O_EXCL`` alone cannot make *reclaim* atomic (two workers can
        both judge a lease stale, and unlink-then-create lets the
        second unlink destroy the first's fresh lease), so mutations go
        through a short ``flock`` on a sidecar lock file.
        """
        class _Lock:
            def __init__(self, path: str):
                self._path = path
                self._fd: Optional[int] = None

            def __enter__(self):
                if fcntl is not None:
                    self._fd = os.open(self._path,
                                       os.O_CREAT | os.O_RDWR, 0o644)
                    fcntl.flock(self._fd, fcntl.LOCK_EX)
                return self

            def __exit__(self, *exc):
                if self._fd is not None:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                    os.close(self._fd)

        return _Lock(self._lock_path(token))

    # -- lease protocol ------------------------------------------------
    def acquire(self, token: str) -> Lease:
        """Take the single-owner lease for ``token``.

        Exactly one of three things happens, atomically:

        * no lease (or our own) -> granted;
        * stale lease (dead owner pid, or a torn file) -> reclaimed,
          with the displaced owner reported in the returned
          :class:`Lease` — the adoption signal;
        * live foreign lease -> :class:`LeaseHeldError`.
        """
        if not self.lease_enabled:
            return Lease(token=token, owner=self.owner, pid=self.pid)
        path = self.lease_path(token)
        with self._token_lock(token):
            try:
                self._write_lease(token, exclusive=True)
                return Lease(token=token, owner=self.owner, pid=self.pid)
            except FileExistsError:
                pass
            try:
                info = self._parse_lease(
                    self._ops.read_bytes(path, point="lease.read")
                )
            except FileNotFoundError:  # pragma: no cover - race guard
                info = None
            if info is not None and info["owner"] == self.owner:
                return Lease(token=token, owner=self.owner, pid=self.pid)
            if info is not None and pid_alive(int(info["pid"])):
                raise LeaseHeldError(token, str(info["owner"]),
                                     int(info["pid"]))
            # Stale (dead owner) or torn: reclaim in place.
            previous = str(info["owner"]) if info is not None else ""
            self._write_lease(token, exclusive=False)
            return Lease(token=token, owner=self.owner, pid=self.pid,
                         previous_owner=previous, reclaimed=True)

    def release(self, token: str) -> None:
        """Give the lease back (only if we hold it; else a no-op)."""
        if not self.lease_enabled:
            return
        with self._token_lock(token):
            try:
                info = self._parse_lease(self._ops.read_bytes(
                    self.lease_path(token), point="lease.read"
                ))
            except FileNotFoundError:
                return
            except StorageError:
                # Best-effort: an unreadable lease stays on disk; a
                # dead holder's lease is reclaimable by liveness probe
                # anyway, so failing the caller here buys nothing.
                return
            if info is None or info["owner"] == self.owner:
                try:
                    self._ops.unlink(self.lease_path(token),
                                     point="lease.unlink")
                except StorageError:  # pragma: no cover - best effort
                    pass

    def break_owner(self, pid: int) -> List[str]:
        """Drop every lease held by ``pid`` (supervisor death sweep).

        Returns the freed tokens.  Called by the fleet supervisor the
        moment it reaps a dead worker, so surviving workers adopt the
        orphaned sessions without waiting on a pid-liveness probe (a
        not-yet-reaped child is a zombie that still probes alive).
        """
        freed: List[str] = []
        for name in os.listdir(self.root):
            if not name.endswith(LEASE_SUFFIX):
                continue
            token = name[: -len(LEASE_SUFFIX)]
            with self._token_lock(token):
                try:
                    info = self._parse_lease(self._ops.read_bytes(
                        os.path.join(self.root, name), point="lease.read"
                    ))
                except (FileNotFoundError, StorageError):
                    continue
                if info is None or int(info["pid"]) == pid:
                    try:
                        self._ops.unlink(os.path.join(self.root, name),
                                         point="lease.unlink",
                                         missing_ok=False)
                        freed.append(token)
                    except (FileNotFoundError, StorageError):
                        pass  # pragma: no cover - best effort
        return sorted(freed)

    # -- journal overrides ---------------------------------------------
    def discard(self, token: str) -> None:
        """Delete one journal and its lease/lock sidecars."""
        super().discard(token)
        try:
            self._ops.unlink(self.lease_path(token), point="lease.unlink")
        except OSError:
            pass
        try:
            # Advisory-lock debris, not durable state: plain unlink.
            os.unlink(self._lock_path(token))
        except (FileNotFoundError, OSError):
            pass

    # -- durability probe ----------------------------------------------
    def probe_durability(self) -> None:
        """Write-and-fsync a scratch file in the store directory.

        The brownout readmission path calls this to ask "does this
        volume take durable writes again?" — the probe exercises the
        same open/write/fsync surface a journal append needs, without
        touching any real session file.  Raises the usual typed
        :class:`~repro.storage.errors.StorageError` on failure.
        """
        path = os.path.join(self.root, f".durability.probe.{self.pid}")
        self._ops.write_file(path, b"probe\n", point="probe.write",
                             fsync=self.fsync)
        self._ops.unlink(path, point="probe.unlink")

    # -- shared LUT checkpoint -----------------------------------------
    def lut_path(self) -> str:
        return os.path.join(self.root, "lut.json")

    def load_lut(self) -> CheckpointLoadResult:
        return load_lut(self.lut_path(), fileops=self._ops)

    def save_lut(self, lut: WorkloadLut) -> None:
        # Concurrent workers checkpoint the same shared LUT; a fixed
        # tmp name would let two in-flight saves race ``os.replace``
        # (the loser's staging file vanishes mid-rename).  Stage under
        # a per-pid name, then publish atomically — the publish fsyncs
        # the parent directory, so a crash after ``save_lut`` returns
        # cannot roll the directory entry back to the stale LUT.
        staged = os.path.join(self.root, f"lut.json.{self.pid}")
        save_lut(lut, self.lut_path(), fileops=self._ops,
                 staging_path=staged)
