"""Network serving layer: asyncio streaming front-end for the pipeline.

The paper's system is *online*: users arrive, are admitted against the
``1/FPS`` slot budget (Algorithm 2) and stream frames continuously.
This package puts a real network path in front of the reproduction:

* :mod:`repro.serving.protocol` — length-prefixed binary wire protocol
  (HELLO/FRAME/ENCODED/STATS/BYE messages, versioned, CRC-checked);
* :mod:`repro.serving.admission` — admission controller driven by the
  workload-LUT estimator and Algorithm-2 occupancy, with a sustained-
  overload degradation ladder;
* :mod:`repro.serving.server` — asyncio server with per-client
  sessions, bounded queues and backpressure, encoding GOPs online
  through :class:`repro.transcode.pipeline.ProposedStreamSession`
  (bit-identical to the offline path);
* :mod:`repro.serving.loadgen` — load-generator client with Poisson or
  burst arrivals, a content-class mix and a latency report;
* :mod:`repro.serving.smoke` — the ``make serve-smoke`` end-to-end
  gate;
* :mod:`repro.serving.statestore` — externalised session state behind
  the pluggable :class:`~repro.serving.statestore.StateStore` interface
  (shared-directory journals + single-owner lease records);
* :mod:`repro.serving.fleet` — supervised multi-worker fleet: crash
  restarts with backoff, heartbeat monitoring and cross-worker session
  adoption (``repro serve-fleet``).
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    FleetAdmission,
    WorkerLoad,
)
from repro.serving.protocol import (
    Bye,
    Encoded,
    ErrorMsg,
    FrameMsg,
    Hello,
    HelloAck,
    MessageDecoder,
    MsgType,
    ProtocolError,
    Stats,
    encode_message,
    read_message,
    write_message,
)
from repro.serving.server import NetworkServer, ServeNetConfig
from repro.serving.loadgen import LoadGenConfig, LoadReport, run_loadgen
from repro.serving.statestore import (
    Lease,
    SharedDirStateStore,
    StateStore,
)
from repro.serving.fleet import (
    FleetConfig,
    FleetSupervisor,
    RestartPolicy,
    RestartTracker,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "Bye",
    "Encoded",
    "ErrorMsg",
    "FleetAdmission",
    "FleetConfig",
    "FleetSupervisor",
    "FrameMsg",
    "Hello",
    "HelloAck",
    "Lease",
    "LoadGenConfig",
    "LoadReport",
    "MessageDecoder",
    "MsgType",
    "NetworkServer",
    "ProtocolError",
    "RestartPolicy",
    "RestartTracker",
    "ServeNetConfig",
    "SharedDirStateStore",
    "StateStore",
    "Stats",
    "WorkerLoad",
    "encode_message",
    "read_message",
    "run_loadgen",
    "write_message",
]
