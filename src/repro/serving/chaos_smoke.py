"""Fixed-seed chaos drill gate for the recovery stack (``make chaos``).

Starts a journaled network server behind the seeded chaos proxy, cuts
the first client's connection mid-stream after a deterministic byte
budget, and drives fault-tolerant load-generator clients through the
proxy.  The gate fails loudly unless the drill ends clean: the cut was
actually injected, the severed session resumed via RESUME and finished,
every session delivered all its frames, and zero protocol errors
surfaced.  Everything derives from one fixed seed, so the drill injects
the same fault sequence on every run.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile

from repro.observability import get_registry
from repro.serving.chaos import ChaosConfig, ChaosProxy
from repro.serving.loadgen import LoadGenConfig, run_loadgen_async
from repro.serving.server import NetworkServer, ServeNetConfig

SEED = 11


async def _run(sessions: int, frames: int) -> int:
    with tempfile.TemporaryDirectory() as journal_dir:
        server = NetworkServer(ServeNetConfig(
            port=0, seed=SEED, journal_dir=journal_dir,
        ))
        await server.start()
        try:
            async with ChaosProxy(
                "127.0.0.1", server.port,
                ChaosConfig(seed=SEED, cut_after_c2s_bytes=40000,
                            cut_connections=1, latency_spike_rate=0.02),
            ) as proxy:
                report = await run_loadgen_async(LoadGenConfig(
                    port=proxy.port, sessions=sessions, frames=frames,
                    width=96, height=96, gop=4, seed=SEED,
                    arrival="poisson", rate_hz=50.0,
                    max_reconnects=4, backoff_base_s=0.02,
                ))
                counts = dict(proxy.counts)
        finally:
            await server.drain()

    print(report.summary())
    print("chaos faults injected: "
          + (", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
             or "none"))
    failures = []
    if counts.get("cut", 0) != 1:
        failures.append("deterministic mid-stream cut was not injected")
    if report.resumes == 0:
        failures.append("the severed session never resumed")
    if report.protocol_errors:
        failures.append(f"{report.protocol_errors} protocol error(s)")
    if report.errored:
        failures.append(f"{report.errored} session error(s)")
    delivered = report.frames_encoded + sum(
        s.frames_dropped for s in report.sessions
    )
    if delivered != sessions * frames:
        failures.append(
            f"delivered {delivered}/{sessions * frames} frame outcomes"
        )
    resumes = get_registry().value("repro_serving_resumes_total") or 0
    if resumes == 0:
        failures.append("server counted no resumes")
    if failures:
        print("chaos drill FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("chaos drill OK")
    return 0


def main() -> int:
    return asyncio.run(_run(sessions=3, frames=12))


if __name__ == "__main__":
    raise SystemExit(main())
