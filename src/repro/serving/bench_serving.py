"""Serving hot-path benchmark (``python -m repro.serving.bench_serving``).

Measures end-to-end serving throughput — loadgen frames in, encoded
frames out, over the loopback network path — after the zero-copy /
native-kernel hot-path work, and records the result in the
``BENCH_<n>.json`` schema used by ``repro bench``.

Two arms:

* ``serve_unpaced`` (the headline): closed-loop, ``frame_interval_s=0``
  — the client streams as fast as the socket accepts, with the ingest
  queue deepened to one GOP beyond the stream length so backpressure
  never drops a frame (every round asserts all frames were encoded).
  This is the true capacity of the serving path: wire decode,
  zero-copy ingest, encode, arena egress.
* ``serve_paced`` (the BENCH_4-comparable arm): the journal bench's
  pacing methodology (10 ms inter-frame interval), which bounds
  throughput at ``sessions / interval`` — reported to show the paced
  operating point is now entirely pacing-limited, not encode-limited.

The headline claim: unpaced serving throughput is at least 3x the
~145 frames/s the same workload measured at the BENCH_4 seed, where
frames crossed the wire through per-message ``bytes`` copies, every
push paid an executor round-trip, and the per-block hot loops ran in
pure NumPy under the GIL.

``--smoke`` runs one small unpaced round and asserts throughput stays
above the seed floor — the regression tripwire ``make check`` runs.
"""

from __future__ import annotations

import argparse
import asyncio
import datetime
import json
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.bench import git_sha, repo_root
from repro.observability import scoped
from repro.serving.loadgen import LoadGenConfig, run_loadgen_async
from repro.serving.server import NetworkServer, ServeNetConfig

_SESSIONS = 2
_FRAMES = 48
_GOP = 8
#: The paced arm reproduces BENCH_4's operating point exactly.
_PACED_INTERVAL_S = 0.01
#: Throughput of the same workload at the BENCH_4 seed (median of
#: ``serve_journal_off``), used when BENCH_4.json is not on disk.
_BASELINE_FPS = 146.1
#: Regression floor for the smoke arm: the seed's full-workload
#: throughput.  The smoke workload is smaller (startup amortizes
#: worse), so clearing the seed floor there implies a comfortable
#: margin on the real workload.
_SMOKE_FLOOR_FPS = 145.0


async def _one_round(sessions: int, frames: int,
                     frame_interval_s: float) -> float:
    """One serving run; returns throughput in frames/s.

    Unpaced rounds must encode every frame — a drop would mean the
    round measured backpressure shedding, not the encode path.
    """
    queue_frames = frames + _GOP if frame_interval_s == 0 else 16
    server = NetworkServer(ServeNetConfig(
        port=0, seed=17, queue_frames=queue_frames,
    ))
    await server.start()
    try:
        start = time.perf_counter()
        report = await run_loadgen_async(LoadGenConfig(
            port=server.port, sessions=sessions, frames=frames,
            width=96, height=96, gop=_GOP, seed=17,
            rate_hz=100.0, frame_interval_s=frame_interval_s,
        ))
        elapsed = time.perf_counter() - start
    finally:
        await server.aclose()
    if report.errored or report.protocol_errors:
        raise RuntimeError(f"benchmark run errored: {report.summary()}")
    expected = sessions * frames
    if frame_interval_s == 0 and report.frames_encoded != expected:
        raise RuntimeError(
            f"unpaced round encoded {report.frames_encoded}/{expected} "
            "frames (backpressure dropped work; results not comparable)"
        )
    return report.frames_encoded / elapsed


def _measure(rounds: int) -> dict:
    unpaced: List[float] = []
    paced: List[float] = []
    # One warmup each (kernel build/caching, LUT warm-up), then paired
    # rounds, alternating which arm runs first to cancel drift.
    with scoped():
        asyncio.run(_one_round(_SESSIONS, _FRAMES, 0.0))
    with scoped():
        asyncio.run(_one_round(_SESSIONS, _FRAMES, _PACED_INTERVAL_S))
    for i in range(rounds):
        arms = [(unpaced, 0.0), (paced, _PACED_INTERVAL_S)]
        if i % 2:
            arms.reverse()
        for sink, interval in arms:
            with scoped():
                sink.append(
                    asyncio.run(_one_round(_SESSIONS, _FRAMES, interval))
                )
    return {"unpaced": unpaced, "paced": paced}


def _baseline_fps() -> float:
    """Median serving fps at the seed, read from BENCH_4.json when
    present (the honest baseline), else the recorded constant."""
    path = repo_root() / "BENCH_4.json"
    try:
        data = json.loads(path.read_text())
        for rec in data.get("benchmarks", []):
            if rec.get("name") == "serve_journal_off":
                return float(rec["median_frames_per_s"])
    except (OSError, ValueError, KeyError):
        pass
    return _BASELINE_FPS


def _record(name: str, rates: List[float]) -> dict:
    frames = _SESSIONS * _FRAMES
    mean_rate = statistics.fmean(rates)
    return {
        "name": name,
        "group": "serving-hotpath",
        "mean_s": frames / mean_rate,
        "stddev_s": (
            statistics.stdev([frames / r for r in rates])
            if len(rates) > 1 else 0.0
        ),
        "rounds": len(rates),
        "frames_per_s": mean_rate,
        "median_frames_per_s": statistics.median(rates),
        "best_frames_per_s": max(rates),
    }


def summarize(rates: dict) -> dict:
    records = [
        _record("serve_unpaced", rates["unpaced"]),
        _record("serve_paced", rates["paced"]),
    ]
    baseline = _baseline_fps()
    med = statistics.median(rates["unpaced"])
    records.append({
        "name": "hotpath_speedup",
        "group": "serving-hotpath",
        "sessions": _SESSIONS,
        "frames_per_session": _FRAMES,
        "gop": _GOP,
        "paced_interval_s": _PACED_INTERVAL_S,
        "baseline_frames_per_s": baseline,
        "speedup_median": med / baseline,
        "speedup_best": max(rates["unpaced"]) / baseline,
        "claim": "zero-copy wire path + GIL-releasing native kernels "
                 "deliver >= 3x end-to-end serving throughput over the "
                 "BENCH_4 seed on the same workload",
    })
    return {
        "machine_info": {
            "node": platform.node(),
            "machine": platform.machine(),
            "system": platform.system(),
            "release": platform.release(),
            "python_implementation": platform.python_implementation(),
            "python_version": platform.python_version(),
        },
        "datetime": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "git_sha": git_sha(),
        "groups": ["serving-hotpath"],
        "benchmarks": records,
    }


def _smoke() -> int:
    """One tiny unpaced round; non-zero exit below the seed floor."""
    with scoped():
        asyncio.run(_one_round(2, 2 * _GOP, 0.0))  # warm the kernels
    with scoped():
        fps = asyncio.run(_one_round(2, 2 * _GOP, 0.0))
    ok = fps >= _SMOKE_FLOOR_FPS
    print(f"serving smoke: {fps:.1f} frames/s "
          f"(floor {_SMOKE_FLOOR_FPS:.0f}) {'ok' if ok else 'REGRESSION'}")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.bench_serving", description=__doc__,
    )
    parser.add_argument("--rounds", type=int, default=9,
                        help="measurement rounds per arm (default 9)")
    parser.add_argument("--smoke", action="store_true",
                        help="one small round; fail below the seed floor")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: BENCH_6.json at the "
                             "repo root; refuses to overwrite)")
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke()
    out = args.out or (repo_root() / "BENCH_6.json")
    if out.exists():
        parser.error(f"refusing to overwrite existing {out}")
    summary = summarize(_measure(args.rounds))
    with open(out, "x") as fh:
        fh.write(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {out}")
    for rec in summary["benchmarks"]:
        if "frames_per_s" in rec:
            print(f"  {rec['name']:<16} "
                  f"{rec['median_frames_per_s']:8.1f} frames/s median"
                  f"  (mean {rec['frames_per_s']:.1f},"
                  f" best {rec['best_frames_per_s']:.1f})")
        else:
            print(f"  {rec['name']:<16} "
                  f"median {rec['speedup_median']:.2f}x"
                  f"  best {rec['speedup_best']:.2f}x"
                  f"  (baseline {rec['baseline_frames_per_s']:.1f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
