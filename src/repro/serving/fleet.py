"""Supervised multi-worker serving fleet.

PR 5's :class:`~repro.serving.server.NetworkServer` is crash-safe but
single-process: one encode thread, one point of failure.  This module
removes the ceiling the ROADMAP names by running **N worker processes
under a supervisor**, with the session state they share externalized
through :mod:`repro.serving.statestore` so a worker can be SIGKILLed
mid-GOP and its sessions come back — on a *different* worker —
bit-identically.

Architecture (DESIGN.md §12):

``FleetSupervisor``
    Spawns N :func:`_worker_main` processes (``multiprocessing`` spawn
    context — no fork/asyncio/thread hazards), monitors them over a
    **heartbeat control channel** (newline-JSON over a localhost TCP
    socket: load gossip + metrics snapshots up, commands down), and
    restarts crashed workers with exponential backoff behind a
    flap-detection circuit breaker (:class:`RestartTracker`).  On a
    death it immediately sweeps the dead pid's session leases
    (:meth:`~repro.serving.statestore.SharedDirStateStore.break_owner`)
    so survivors adopt orphaned sessions without waiting for a
    pid-liveness probe.

Front door — two modes:

``router`` (default)
    The supervisor owns the public port and speaks the first message
    of each connection itself: a HELLO is *placed* by
    :class:`~repro.serving.admission.FleetAdmission` (Algorithm 2's
    min-distance-to-cap packing lifted to sessions-onto-workers,
    parking fleet-wide when every worker is saturated), a RESUME is
    routed to its lease owner's worker when that worker is alive
    (in-process preemption handles the half-open race) and to the
    least-loaded survivor otherwise (adoption).  After placement the
    router splices bytes verbatim.

``reuseport``
    Every worker binds the public port with ``SO_REUSEPORT`` and the
    kernel balances accepts.  No per-session placement — cheapest data
    path, used where the router hop matters more than packing quality.

Worker capacity is the platform divided by the fleet width: each
worker's admission controller runs the unchanged single-node
Algorithm 2 against ``utilization / N``, so the two levels compose
without double-counting cores.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Tuple

from repro.observability import get_registry, get_tracer
from repro.observability.metrics import MetricsRegistry
from repro.policy.compiler import compile_policy
from repro.policy.document import load_policy_file
from repro.serving.admission import (
    AdmissionDecision,
    FleetAdmission,
)
from repro.serving.protocol import (
    Hello,
    HelloAck,
    Message,
    ProtocolError,
    Resume,
    ResumeAck,
    encode_message,
    read_message,
    write_message,
)
from repro.serving.server import NetworkServer, ServeNetConfig
from repro.serving.statestore import SharedDirStateStore
from repro.storage.errors import StorageError

__all__ = [
    "FleetConfig",
    "FleetSupervisor",
    "RestartPolicy",
    "RestartTracker",
]

_CHUNK = 65536


# ----------------------------------------------------------------------
# Restart policy (pure logic, unit-testable without processes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RestartPolicy:
    """Backoff and flap-detection knobs of the supervisor."""

    #: First restart delay; doubles per death up to the cap.
    backoff_base_s: float = 0.25
    backoff_max_s: float = 5.0
    #: Sliding window the breaker counts deaths over.
    breaker_window_s: float = 30.0
    #: Deaths within the window that trip the breaker: the worker slot
    #: is abandoned instead of restarted (a crash loop is burning CPU
    #: a healthy worker could use — flapping is worse than down).
    breaker_threshold: int = 5

    def __post_init__(self) -> None:
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.breaker_window_s <= 0:
            raise ValueError("breaker_window_s must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")


class RestartTracker:
    """Per-worker-slot death bookkeeping: backoff + circuit breaker."""

    def __init__(self, policy: RestartPolicy = RestartPolicy()):
        self.policy = policy
        self._deaths: Deque[float] = deque()

    @property
    def deaths_in_window(self) -> int:
        return len(self._deaths)

    def record_death(self, now: float) -> Optional[float]:
        """Record one death at ``now`` (monotonic seconds).

        Returns the restart delay, or ``None`` when the breaker trips:
        this death is the ``breaker_threshold``-th inside the sliding
        window, the slot is flapping, stop restarting it.
        """
        window = self.policy.breaker_window_s
        while self._deaths and now - self._deaths[0] > window:
            self._deaths.popleft()
        self._deaths.append(now)
        if len(self._deaths) >= self.policy.breaker_threshold:
            return None
        delay = self.policy.backoff_base_s * (2 ** (len(self._deaths) - 1))
        return min(self.policy.backoff_max_s, delay)


# ----------------------------------------------------------------------
# Fleet configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetConfig:
    """Configuration of one supervised fleet."""

    workers: int = 2
    host: str = "127.0.0.1"
    #: Public port clients connect to (0 = ephemeral; resolved after
    #: :meth:`FleetSupervisor.start`).
    port: int = 0
    #: ``"router"`` (supervisor places sessions, two-level Algorithm 2)
    #: or ``"reuseport"`` (kernel-balanced ``SO_REUSEPORT`` accept
    #: group, no placement).
    mode: str = "router"
    heartbeat_s: float = 0.25
    #: Worker template.  ``journal_dir`` is mandatory — shared session
    #: state is what makes cross-worker adoption possible at all.
    server: ServeNetConfig = field(default_factory=ServeNetConfig)
    restart: RestartPolicy = field(default_factory=RestartPolicy)
    #: How long the router holds a fleet-parked HELLO for capacity.
    park_timeout_s: float = 2.0
    #: Retry hint sent when a RESUME cannot be routed yet (its lease
    #: owner's fate is unresolved or no worker is up).
    resume_retry_s: float = 0.5
    #: How long :meth:`FleetSupervisor.drain` waits for workers.
    drain_grace_s: float = 15.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mode not in ("router", "reuseport"):
            raise ValueError("mode must be 'router' or 'reuseport'")
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        if self.server.journal_dir is None:
            raise ValueError(
                "fleet requires server.journal_dir: shared journals + "
                "leases are what cross-worker adoption adopts"
            )


def _worker_config(config: FleetConfig, worker_id: str) -> ServeNetConfig:
    """Specialize the worker template for one slot.

    Router mode gives each worker a private ephemeral port (reported
    back over the control channel); reuseport mode binds the shared
    public port.  Capacity is split: ``utilization / workers`` keeps
    the fleet's aggregate admission exactly the single node's.
    """
    policy = config.server.admission
    split = replace(
        policy,
        utilization=max(1e-6, policy.utilization / config.workers),
    )
    if config.mode == "router":
        return replace(
            config.server, worker_id=worker_id, admission=split,
            host="127.0.0.1", port=0, reuse_port=False, lease=True,
        )
    return replace(
        config.server, worker_id=worker_id, admission=split,
        host=config.host, port=config.port, reuse_port=True, lease=True,
    )


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a spawned worker needs (must pickle cleanly)."""

    worker_id: str
    incarnation: int
    control_port: int
    heartbeat_s: float
    server: ServeNetConfig


def _worker_main(spec: _WorkerSpec) -> None:
    """Entry point of one worker process (spawn context)."""
    asyncio.run(_worker_async(spec))


async def _worker_async(spec: _WorkerSpec) -> None:
    server = NetworkServer(spec.server)
    await server.start()
    reader, writer = await asyncio.open_connection(
        "127.0.0.1", spec.control_port
    )

    async def send(obj: Dict[str, object]) -> None:
        writer.write(json.dumps(obj).encode("utf-8") + b"\n")
        await writer.drain()

    await send({
        "kind": "hello", "worker": spec.worker_id,
        "incarnation": spec.incarnation, "pid": os.getpid(),
        "port": server.port,
    })

    draining = asyncio.Event()

    def _on_sigterm() -> None:
        draining.set()

    loop = asyncio.get_running_loop()
    with contextlib.suppress(NotImplementedError, RuntimeError):
        loop.add_signal_handler(signal.SIGTERM, _on_sigterm)

    async def heartbeats() -> None:
        while not draining.is_set():
            await send({
                "kind": "heartbeat", "worker": spec.worker_id,
                "incarnation": spec.incarnation,
                "load": server.load_snapshot(),
                "metrics": get_registry().to_dict(),
            })
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    draining.wait(), timeout=spec.heartbeat_s
                )

    async def commands() -> None:
        while True:
            line = await reader.readline()
            if not line:
                # Control channel gone: the supervisor died.  Drain —
                # orphaned workers must not squat the shared port and
                # the session leases forever.
                draining.set()
                return
            try:
                cmd = json.loads(line.decode("utf-8"))
            except ValueError:
                continue
            if cmd.get("kind") == "drain":
                draining.set()
                return

    hb_task = asyncio.ensure_future(heartbeats())
    cmd_task = asyncio.ensure_future(commands())
    serve_task = asyncio.ensure_future(server.serve_forever())
    drain_wait = asyncio.ensure_future(draining.wait())
    try:
        # Run until told to drain — or until the serve loop dies on its
        # own (crash): either way the worker exits and the supervisor's
        # death watch decides what happens next.
        await asyncio.wait(
            {drain_wait, serve_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if draining.is_set():
            await server.drain()
    finally:
        drain_wait.cancel()
        for task in (serve_task, hb_task, cmd_task):
            task.cancel()
        await asyncio.gather(serve_task, hb_task, cmd_task,
                             return_exceptions=True)
        # Final metrics flush so counters accumulated after the last
        # heartbeat (drain, park records) reach the merged snapshot.
        with contextlib.suppress(ConnectionError, OSError):
            await send({
                "kind": "heartbeat", "worker": spec.worker_id,
                "incarnation": spec.incarnation,
                "load": server.load_snapshot(),
                "metrics": get_registry().to_dict(),
            })
            writer.close()
            await writer.wait_closed()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class _WorkerHandle:
    """Supervisor-side state of one worker slot."""

    def __init__(self, worker_id: str, policy: RestartPolicy):
        self.worker_id = worker_id
        self.incarnation = 0
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.pid: Optional[int] = None
        self.port: Optional[int] = None
        self.ready = False  # control hello received for this incarnation
        self.tracker = RestartTracker(policy)
        self.breaker_open = False
        self.restart_task: Optional[asyncio.Task] = None
        self.control_writer: Optional[asyncio.StreamWriter] = None

    @property
    def owner(self) -> str:
        return f"{self.worker_id}:{self.pid}"

    def routable(self) -> bool:
        return (self.ready and self.port is not None
                and self.process is not None and self.process.is_alive())


class FleetSupervisor:
    """Spawns, monitors, restarts and fronts N serving workers."""

    def __init__(self, config: FleetConfig):
        self.config = config
        self._store = SharedDirStateStore(
            config.server.journal_dir, fsync=config.server.journal_fsync,
            owner=f"supervisor:{os.getpid()}",
        )
        self.fleet_admission = FleetAdmission(
            platform=config.server.platform,
            policy=config.server.admission,
        )
        # Tenant policy: the worker template carries ``policy_file``
        # into every spawned worker (each enforces locally); compiling
        # it here too arms the router's fleet-wide entitlement check.
        # A broken file refuses to start the supervisor, same as a
        # single server.
        if config.server.policy_file is not None:
            self.fleet_admission.set_policy(
                compile_policy(load_policy_file(config.server.policy_file))
            )
        self._mp = multiprocessing.get_context("spawn")
        self._handles: Dict[str, _WorkerHandle] = {
            f"w{i}": _WorkerHandle(f"w{i}", config.restart)
            for i in range(config.workers)
        }
        self._control: Optional[asyncio.base_events.Server] = None
        self._control_port = 0
        self._router: Optional[asyncio.base_events.Server] = None
        self._public_port = 0
        self._monitor_task: Optional[asyncio.Task] = None
        self._draining = False
        self._capacity_changed = asyncio.Event()
        #: Latest metrics snapshot per (worker slot, incarnation).
        #: Counters in a snapshot are cumulative *within* one worker
        #: incarnation, so keeping only the latest per incarnation and
        #: summing across them merges without double counting.
        self._worker_metrics: Dict[Tuple[str, int], dict] = {}
        self._recv_max_payload = 1 << 20  # first message is small JSON

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        """Public port clients connect to."""
        if self._public_port == 0:
            raise RuntimeError("fleet not started")
        return self._public_port

    def handle(self, worker_id: str) -> Optional["_WorkerHandle"]:
        """Supervision handle of one worker slot (drills and tests)."""
        return self._handles.get(worker_id)

    async def start(self) -> None:
        self._control = await asyncio.start_server(
            self._handle_control, "127.0.0.1", 0
        )
        self._control_port = self._control.sockets[0].getsockname()[1]
        if self.config.mode == "router":
            self._router = await asyncio.start_server(
                self._handle_client, self.config.host, self.config.port
            )
            self._public_port = self._router.sockets[0].getsockname()[1]
        else:
            # Workers share the configured port via SO_REUSEPORT; an
            # explicit port is required (0 would scatter them).
            if self.config.port == 0:
                raise ValueError("reuseport mode requires an explicit port")
            self._public_port = self.config.port
        for handle in self._handles.values():
            self._spawn(handle)
        self._monitor_task = asyncio.ensure_future(self._monitor())
        get_registry().set_gauge(
            "repro_serving_fleet_workers", len(self._handles),
            help="Configured worker slots",
        )

    def _spawn(self, handle: _WorkerHandle) -> None:
        handle.incarnation += 1
        handle.ready = False
        handle.port = None
        worker_cfg = _worker_config(self.config, handle.worker_id)
        if self.config.mode == "reuseport":
            worker_cfg = replace(worker_cfg, port=self._public_port
                                 or self.config.port)
        spec = _WorkerSpec(
            worker_id=handle.worker_id, incarnation=handle.incarnation,
            control_port=self._control_port,
            heartbeat_s=self.config.heartbeat_s, server=worker_cfg,
        )
        process = self._mp.Process(
            target=_worker_main, args=(spec,),
            name=f"repro-{handle.worker_id}", daemon=True,
        )
        process.start()
        handle.process = process
        handle.pid = process.pid
        get_tracer().event(
            "fleet.spawn", worker=handle.worker_id,
            incarnation=handle.incarnation, pid=process.pid,
        )

    async def wait_ready(self, timeout_s: float = 30.0) -> None:
        """Block until every non-breakered worker slot is routable and
        (router mode) has gossiped a first load snapshot — before that
        the placement table prices it at zero capacity."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s

        def pending(handle: _WorkerHandle) -> bool:
            if handle.breaker_open:
                return False
            if not handle.routable():
                return True
            if self.config.mode != "router":
                return False
            load = self.fleet_admission.workers.get(handle.worker_id)
            return load is None or not load.accepts_sessions()

        while loop.time() < deadline:
            if not any(pending(h) for h in self._handles.values()):
                return
            await asyncio.sleep(0.02)
        raise TimeoutError("fleet workers did not become ready")

    async def drain(self) -> None:
        """Graceful fleet shutdown: drain every worker, then close."""
        if self._draining:
            return
        self._draining = True
        if self._router is not None:
            self._router.close()
        for handle in self._handles.values():
            if handle.restart_task is not None:
                handle.restart_task.cancel()
            writer = handle.control_writer
            if writer is not None:
                with contextlib.suppress(ConnectionError, OSError):
                    writer.write(b'{"kind": "drain"}\n')
                    await writer.drain()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_grace_s
        for handle in self._handles.values():
            process = handle.process
            if process is None:
                continue
            while process.is_alive() and loop.time() < deadline:
                await asyncio.sleep(0.05)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        await self.aclose()

    async def aclose(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            await asyncio.gather(self._monitor_task, return_exceptions=True)
            self._monitor_task = None
        for handle in self._handles.values():
            if handle.restart_task is not None:
                handle.restart_task.cancel()
            process = handle.process
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for server in (self._router, self._control):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._router = self._control = None

    # -- control channel -----------------------------------------------
    async def _handle_control(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        handle: Optional[_WorkerHandle] = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    msg = json.loads(line.decode("utf-8"))
                except ValueError:
                    continue
                kind = msg.get("kind")
                worker_id = str(msg.get("worker", ""))
                current = self._handles.get(worker_id)
                if current is None:
                    continue
                incarnation = int(msg.get("incarnation", -1))
                if incarnation != current.incarnation:
                    continue  # a ghost from a replaced incarnation
                if kind == "hello":
                    handle = current
                    handle.pid = int(msg.get("pid", handle.pid or 0))
                    handle.port = int(msg["port"])
                    handle.ready = True
                    handle.control_writer = writer
                    self.fleet_admission.register(worker_id, 0.0)
                    get_tracer().event(
                        "fleet.worker_ready", worker=worker_id,
                        incarnation=incarnation, port=handle.port,
                    )
                elif kind == "heartbeat":
                    load = msg.get("load", {})
                    self.fleet_admission.update(worker_id, load)
                    metrics = msg.get("metrics")
                    if isinstance(metrics, dict):
                        self._worker_metrics[
                            (worker_id, incarnation)
                        ] = metrics
                    self._capacity_changed.set()
        except (ConnectionError, OSError):
            return
        finally:
            if handle is not None and handle.control_writer is writer:
                handle.control_writer = None
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    # -- death watch / restart -----------------------------------------
    async def _monitor(self) -> None:
        poll = max(0.02, self.config.heartbeat_s / 2)
        while True:
            await asyncio.sleep(poll)
            # Workers exiting during a drain are the drain working, not
            # crashes — no death counter, no lease sweep, no restart.
            if self._draining:
                continue
            for handle in self._handles.values():
                process = handle.process
                if (process is None or process.is_alive()
                        or handle.restart_task is not None
                        or handle.breaker_open):
                    continue
                self._reap(handle)

    def _reap(self, handle: _WorkerHandle) -> None:
        """A worker died: reap it, free its leases, plan the restart."""
        registry = get_registry()
        process = handle.process
        exitcode = process.exitcode if process is not None else None
        if process is not None:
            process.join(timeout=0)
        registry.inc("repro_serving_worker_deaths_total",
                     help="Worker processes that exited unexpectedly")
        handle.ready = False
        self.fleet_admission.mark_dead(handle.worker_id)
        freed: List[str] = []
        if handle.pid is not None:
            # The moment of adoption: every session lease the dead pid
            # held is broken so any surviving worker's RESUME path can
            # take it over without waiting out a liveness probe.
            try:
                freed = self._store.break_owner(handle.pid)
            except (StorageError, OSError) as exc:
                # A faulting store directory must not take the
                # supervisor down with the worker: the leases stay on
                # disk, stale, and workers reclaim them by pid-liveness
                # probe instead.
                get_tracer().event(
                    "fleet.lease_sweep_failed",
                    worker=handle.worker_id, error=str(exc),
                )
        get_tracer().event(
            "fleet.worker_death", worker=handle.worker_id,
            incarnation=handle.incarnation, exitcode=exitcode,
            leases_freed=len(freed),
        )
        now = time.monotonic()
        delay = handle.tracker.record_death(now)
        if delay is None:
            handle.breaker_open = True
            registry.inc(
                "repro_serving_worker_breaker_trips_total",
                help="Worker slots abandoned by the flap breaker",
            )
            get_tracer().event(
                "fleet.breaker_open", worker=handle.worker_id,
                deaths_in_window=handle.tracker.deaths_in_window,
            )
            return
        handle.restart_task = asyncio.ensure_future(
            self._restart_later(handle, delay)
        )

    async def _restart_later(self, handle: _WorkerHandle,
                             delay: float) -> None:
        try:
            await asyncio.sleep(delay)
            if self._draining:
                return
            self._spawn(handle)
            get_registry().inc(
                "repro_serving_worker_restarts_total",
                help="Worker processes restarted by the supervisor",
            )
        finally:
            handle.restart_task = None

    # -- router front door ---------------------------------------------
    def _live_handles(self) -> List[_WorkerHandle]:
        return [h for h in self._handles.values() if h.routable()]

    def _pick_for_resume(self, token: str) -> Optional[_WorkerHandle]:
        """Route a RESUME: the lease owner's live worker wins (its
        in-process preemption resolves the half-open race); otherwise
        the least-loaded survivor adopts."""
        live = self._live_handles()
        if not live:
            return None
        info = None
        with contextlib.suppress(Exception):
            info = self._store.lease_info(token)
        if info is not None:
            owner = str(info["owner"])
            worker_id = owner.rsplit(":", 1)[0]
            holder = self._handles.get(worker_id)
            if (holder is not None and holder.routable()
                    and int(info["pid"]) == holder.pid):
                return holder
        loads = self.fleet_admission.workers
        return max(
            live,
            key=lambda h: loads[h.worker_id].free_cores
            if h.worker_id in loads else 0.0,
        )

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            await self._route(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        except ProtocolError:
            get_registry().inc("repro_serving_protocol_errors_total",
                               help="Wire-protocol violations")
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _route(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        cfg = self.config
        first = await asyncio.wait_for(
            read_message(reader, max_payload=self._recv_max_payload),
            timeout=cfg.server.hello_timeout_s,
        )
        if isinstance(first, Hello):
            await self._route_hello(first, reader, writer)
        elif isinstance(first, Resume):
            await self._route_resume(first, reader, writer)
        else:
            raise ProtocolError(
                f"expected HELLO or RESUME, got {first.type.name}"
            )

    async def _route_hello(self, hello: Hello,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        deadline = loop.time() + cfg.park_timeout_s
        parked = False
        while True:
            decision, worker_id, reason = self.fleet_admission.place(hello)
            if decision is AdmissionDecision.ACCEPT:
                handle = self._handles.get(worker_id)
                if handle is None or not handle.routable():
                    # Chose a worker that died since its last gossip;
                    # drop it from the table and re-place.
                    self.fleet_admission.mark_dead(worker_id or "")
                    continue
                if await self._splice_to(handle, hello, reader, writer):
                    return
                self.fleet_admission.mark_dead(worker_id)
                continue
            if decision is AdmissionDecision.REJECT:
                # "No live workers" during a restart window is not a
                # verdict — hold the client like a park and let the
                # respawn's first heartbeat release it.
                transient = (not self.fleet_admission.live_workers
                             and not self._draining)
                if not transient:
                    await write_message(writer, HelloAck(
                        decision="reject", reason=reason,
                    ))
                    return
            # PARK: hold the client while the fleet is saturated; any
            # heartbeat (load gossip) may free capacity.
            if not parked:
                parked = True
                await write_message(writer, HelloAck(
                    decision="park", reason=reason,
                ))
            remaining = deadline - loop.time()
            if remaining <= 0 or self._draining:
                self.fleet_admission.abandon_park()
                await write_message(writer, HelloAck(
                    decision="reject", reason="fleet park timeout",
                ))
                return
            self._capacity_changed.clear()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._capacity_changed.wait(), timeout=remaining
                )

    async def _route_resume(self, resume: Resume,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        handle = self._pick_for_resume(resume.resume_token)
        if handle is None:
            # No routable worker *right now* — a restart is in flight;
            # tell the client to come back rather than giving up.
            await write_message(writer, ResumeAck(
                decision="reject", reason="no live worker; fleet restarting",
                retry_after_s=self.config.resume_retry_s,
            ))
            return
        if not await self._splice_to(handle, resume, reader, writer):
            await write_message(writer, ResumeAck(
                decision="reject", reason="worker went down during routing",
                retry_after_s=self.config.resume_retry_s,
            ))

    async def _splice_to(self, handle: _WorkerHandle, first: Message,
                         reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> bool:
        """Forward ``first`` to the worker, then splice bytes verbatim.

        ``False`` when the worker could not be connected (it died
        between selection and connect) — the caller re-routes.
        """
        try:
            up_reader, up_writer = await asyncio.open_connection(
                "127.0.0.1", handle.port
            )
        except OSError:
            return False
        get_registry().inc(
            "repro_serving_fleet_routed_total",
            kind=first.type.name.lower(), worker=handle.worker_id,
            help="Connections spliced to workers by first message",
        )
        writers = (writer, up_writer)
        try:
            up_writer.write(encode_message(first))
            await up_writer.drain()
            pumps = [
                asyncio.ensure_future(self._pump(reader, up_writer)),
                asyncio.ensure_future(self._pump(up_reader, writer)),
            ]
            await asyncio.gather(*pumps, return_exceptions=True)
        finally:
            for w in writers:
                with contextlib.suppress(RuntimeError):
                    w.close()
        return True

    @staticmethod
    async def _pump(reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                chunk = await reader.read(_CHUNK)
                if not chunk:
                    if writer.can_write_eof():
                        with contextlib.suppress(OSError, RuntimeError):
                            writer.write_eof()
                    return
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            return

    # -- observability -------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """One merged registry snapshot: the supervisor's own counters
        plus the latest heartbeat snapshot of every worker incarnation
        (counters are cumulative per incarnation, so latest-per-
        incarnation sums across restarts without double counting)."""
        merged = MetricsRegistry()
        merged.merge(get_registry().to_dict())
        for snapshot in self._worker_metrics.values():
            merged.merge(snapshot)
        return merged.to_dict()
