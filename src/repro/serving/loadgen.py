"""Load generator: many concurrent clients against the network server.

Sessions arrive by a configurable process (Poisson inter-arrivals or
synchronized bursts), draw a content class from a weighted mix, stream
a synthetic bio-medical video over the wire protocol and collect a
client-side report: admission outcomes, end-to-end frame latency
percentiles and the server-reported deadline-miss counts.  Everything
stochastic — arrivals, content mix, video synthesis, retry jitter —
derives from one seed, so a run is reproducible end to end.

With ``max_reconnects > 0`` each client is fault tolerant: a lost
connection (or a drain-parked session) is retried with exponential
backoff plus seeded jitter, and when the server handed out a resume
token the client reattaches with RESUME and continues from the
server's ``next_frame_index`` — duplicate outcomes from the replay are
deduplicated by frame index, so the report counts each frame once.
The report distinguishes *connection refusals* (the server was not
accepting — it never saw the session) from *mid-stream disconnects*
(an established session lost its transport), and counts reconnect
attempts per session.
"""

from __future__ import annotations

import asyncio
import functools
import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.protocol import (
    DEFAULT_DECODER_MAX_PAYLOAD,
    MAX_PAYLOAD,
    Bye,
    Encoded,
    ErrorMsg,
    Hello,
    HelloAck,
    ProtocolError,
    Resume,
    ResumeAck,
    Stats,
    encode_frame_into,
    read_message,
    write_message,
)
from repro.video.generator import ContentClass, generate_video

__all__ = ["LoadGenConfig", "LoadReport", "SessionReport", "run_loadgen"]

#: Default content-class mix (uniform over three common modalities).
DEFAULT_MIX: Tuple[Tuple[ContentClass, float], ...] = (
    (ContentClass.BRAIN, 1.0),
    (ContentClass.BONE, 1.0),
    (ContentClass.LUNG, 1.0),
)


@dataclass(frozen=True)
class LoadGenConfig:
    """Configuration of one load-generator run."""

    host: str = "127.0.0.1"
    port: int = 0
    sessions: int = 3
    #: Frames each session streams (default: two GOPs at gop=8).
    frames: int = 16
    width: int = 96
    height: int = 96
    fps: float = 24.0
    gop: int = 8
    #: Arrival process: ``"poisson"`` (exponential inter-arrivals at
    #: ``rate_hz``) or ``"burst"`` (groups of ``burst_size`` arriving
    #: together, groups separated by ``1/rate_hz``).
    arrival: str = "poisson"
    #: Mean session arrival rate (sessions/second).
    rate_hz: float = 20.0
    burst_size: int = 4
    #: Inter-frame pacing within a session; 0 streams as fast as the
    #: socket accepts (exercises ingest backpressure).
    frame_interval_s: float = 0.0
    #: Weighted content-class mix sessions draw from.
    mix: Tuple[Tuple[ContentClass, float], ...] = DEFAULT_MIX
    seed: int = 0
    #: Per-session wall-clock budget before the client gives up.
    timeout_s: float = 120.0
    #: Reconnect budget per session (0 = give up on the first loss;
    #: classification counters are still recorded).
    max_reconnects: int = 0
    #: Exponential backoff between reconnects: first wait, cap, and
    #: the fraction of each wait randomized as jitter (seeded).
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    backoff_jitter: float = 0.5
    #: Rendition ladder to request in the HELLO (``(width, height)``
    #: pairs, largest first; empty = ordinary single-rendition
    #: sessions).  Ladder clients collect per-rung outcomes keyed by
    #: ``(rung, frame_index)``.
    ladder: Tuple[Tuple[int, int], ...] = ()
    #: Weighted tenant mix sessions draw their HELLO ``tenant`` from
    #: (empty = no tenant key on the wire, pre-policy behaviour).
    tenants: Tuple[Tuple[str, float], ...] = ()
    #: Load shape: ``""`` (plain arrival process), ``"surge"`` (half
    #: the sessions arrive by the base process, the rest land together
    #: mid-run as a mixed-tenant surge drawn from ``surge_tenants``),
    #: or ``"diurnal"`` (hospital shifts: the arrival rate alternates
    #: between day ``rate_hz`` and night ``rate_hz * night_fraction``
    #: every ``shift_s`` seconds).
    scenario: str = ""
    #: Tenant mix of the surge cohort (defaults to ``tenants``) — skew
    #: it toward low-priority tenants to drive a brownout.
    surge_tenants: Tuple[Tuple[str, float], ...] = ()
    shift_s: float = 2.0
    night_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.arrival not in ("poisson", "burst"):
            raise ValueError("arrival must be 'poisson' or 'burst'")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if not self.mix:
            raise ValueError("content mix must be non-empty")
        if self.max_reconnects < 0:
            raise ValueError("max_reconnects must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        for w, h in self.ladder:
            if w < 1 or h < 1:
                raise ValueError("ladder rungs must be positive")
        if self.scenario not in ("", "surge", "diurnal"):
            raise ValueError("scenario must be '', 'surge' or 'diurnal'")
        for name, weight in (*self.tenants, *self.surge_tenants):
            if not name:
                raise ValueError("tenant names must be non-empty")
            if weight <= 0:
                raise ValueError("tenant weights must be positive")
        if self.shift_s <= 0:
            raise ValueError("shift_s must be positive")
        if not 0.0 < self.night_fraction <= 1.0:
            raise ValueError("night_fraction must be in (0, 1]")


@dataclass
class SessionReport:
    """Client-side outcome of one session."""

    session: int
    content_class: str
    #: Tenant this session billed to ("" = no tenant key on the wire).
    tenant: str = ""
    decision: str = "error"
    reason: str = ""
    parked: bool = False
    frames_sent: int = 0
    frames_encoded: int = 0
    frames_dropped: int = 0
    latencies_s: List[float] = field(default_factory=list)
    server_stats: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    #: Connection attempts refused before a transport was established
    #: (the server was down or not accepting).
    connect_refusals: int = 0
    #: Refusals while already holding a resume token: the *worker*
    #: serving this session is down (a fleet restart window), not an
    #: admission verdict — fleet drills assert these retry cleanly and
    #: that ``connect_refusals`` proper stays zero.
    retryable_restarts: int = 0
    #: RESUMEs transiently rejected because the session's lease was
    #: held by a worker whose fate the fleet had not yet resolved
    #: (retried after the server's ``retry_after_s`` hint).
    lease_retries: int = 0
    #: Established connections lost before the session completed.
    mid_stream_disconnects: int = 0
    #: Reconnects actually attempted after a refusal or disconnect.
    reconnect_attempts: int = 0
    #: Successful RESUME handshakes.
    resumes: int = 0
    #: Outcomes replayed from the server's journal across all resumes.
    replayed: int = 0
    resume_token: str = ""
    #: Replayed outcomes whose reconstructed plane differed from what
    #: this client already received for the same frame index — any
    #: non-zero value is a bit-identity violation.
    divergent_replays: int = 0
    #: CRC-32 digest of the session's decoded output, folded over frame
    #: indices in order: equal digests == bit-identical delivery.
    output_digest: Optional[int] = None
    #: Rungs the HELLO_ACK granted a ladder session, as
    #: ``(rung_id, width, height)`` (empty for ordinary sessions).
    rungs: Tuple[Tuple[int, int, int], ...] = ()


def _percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (no numpy needed for the report)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class LoadReport:
    """Aggregate outcome of a load-generator run."""

    sessions: List[SessionReport] = field(default_factory=list)
    protocol_errors: int = 0
    wall_clock_s: float = 0.0

    @property
    def accepted(self) -> int:
        return sum(1 for s in self.sessions if s.decision == "accept")

    @property
    def rejected(self) -> int:
        return sum(1 for s in self.sessions if s.decision == "reject")

    @property
    def errored(self) -> int:
        return sum(1 for s in self.sessions if s.error is not None)

    @property
    def parked(self) -> int:
        return sum(1 for s in self.sessions if s.parked)

    @property
    def latencies_s(self) -> List[float]:
        return [x for s in self.sessions for x in s.latencies_s]

    @property
    def deadline_misses(self) -> int:
        return sum(
            int(s.server_stats.get("deadline_misses", 0))
            for s in self.sessions if s.server_stats
        )

    @property
    def frames_encoded(self) -> int:
        return sum(s.frames_encoded for s in self.sessions)

    @property
    def connect_refusals(self) -> int:
        return sum(s.connect_refusals for s in self.sessions)

    @property
    def retryable_restarts(self) -> int:
        return sum(s.retryable_restarts for s in self.sessions)

    @property
    def lease_retries(self) -> int:
        return sum(s.lease_retries for s in self.sessions)

    @property
    def divergent_replays(self) -> int:
        return sum(s.divergent_replays for s in self.sessions)

    @property
    def mid_stream_disconnects(self) -> int:
        return sum(s.mid_stream_disconnects for s in self.sessions)

    @property
    def reconnect_attempts(self) -> int:
        return sum(s.reconnect_attempts for s in self.sessions)

    @property
    def resumes(self) -> int:
        return sum(s.resumes for s in self.sessions)

    def by_tenant(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant rollup (empty when no session carried a tenant)."""
        rollup: Dict[str, Dict[str, int]] = {}
        for s in self.sessions:
            if not s.tenant:
                continue
            row = rollup.setdefault(s.tenant, {
                "sessions": 0, "accepted": 0, "rejected": 0, "parked": 0,
                "frames_encoded": 0, "frames_dropped": 0,
                "policy_drops": 0,
            })
            row["sessions"] += 1
            if s.decision == "accept":
                row["accepted"] += 1
            elif s.decision == "reject":
                row["rejected"] += 1
            if s.parked:
                row["parked"] += 1
            row["frames_encoded"] += s.frames_encoded
            row["frames_dropped"] += s.frames_dropped
            if s.server_stats:
                dropped = s.server_stats.get("dropped", {})
                if isinstance(dropped, dict):
                    row["policy_drops"] += int(dropped.get("policy", 0))
        return rollup

    def to_dict(self) -> Dict[str, object]:
        lat = self.latencies_s
        encoded = self.frames_encoded
        return {
            "sessions": len(self.sessions),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "parked": self.parked,
            "errors": self.errored,
            "protocol_errors": self.protocol_errors,
            "frames_sent": sum(s.frames_sent for s in self.sessions),
            "frames_encoded": encoded,
            "frames_dropped": sum(s.frames_dropped for s in self.sessions),
            "latency_p50_s": _percentile(lat, 0.50),
            "latency_p95_s": _percentile(lat, 0.95),
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": (
                self.deadline_misses / encoded if encoded else None
            ),
            "connect_refusals": self.connect_refusals,
            "retryable_restarts": self.retryable_restarts,
            "lease_retries": self.lease_retries,
            "mid_stream_disconnects": self.mid_stream_disconnects,
            "reconnect_attempts": self.reconnect_attempts,
            "resumes": self.resumes,
            "divergent_replays": self.divergent_replays,
            "wall_clock_s": self.wall_clock_s,
            "by_tenant": self.by_tenant(),
        }

    def summary(self) -> str:
        d = self.to_dict()
        p50 = d["latency_p50_s"]
        p95 = d["latency_p95_s"]
        miss = d["deadline_miss_rate"]
        lines = [
            "loadgen report",
            f"  sessions     : {d['sessions']} "
            f"(accepted {d['accepted']}, rejected {d['rejected']}, "
            f"parked {d['parked']}, errors {d['errors']})",
            f"  frames       : sent {d['frames_sent']}, "
            f"encoded {d['frames_encoded']}, dropped {d['frames_dropped']}",
            f"  latency      : p50 "
            f"{f'{p50 * 1e3:.1f} ms' if p50 is not None else 'n/a'}, p95 "
            f"{f'{p95 * 1e3:.1f} ms' if p95 is not None else 'n/a'}",
            f"  deadline miss: {d['deadline_misses']} "
            f"({f'{miss:.1%}' if miss is not None else 'n/a'})",
            f"  connectivity : refused {d['connect_refusals']}, "
            f"restart-retries {d['retryable_restarts']}, "
            f"lease-retries {d['lease_retries']}, "
            f"mid-stream lost {d['mid_stream_disconnects']}, "
            f"reconnects {d['reconnect_attempts']}, "
            f"resumes {d['resumes']}",
            f"  protocol errs: {d['protocol_errors']}",
            f"  wall clock   : {d['wall_clock_s']:.2f} s",
        ]
        for name, row in sorted(d["by_tenant"].items()):
            lines.append(
                f"  tenant {name:>6s}: {row['sessions']} sessions "
                f"(accepted {row['accepted']}, rejected {row['rejected']}, "
                f"parked {row['parked']}), encoded "
                f"{row['frames_encoded']}, dropped "
                f"{row['frames_dropped']} "
                f"({row['policy_drops']} by policy)"
            )
        return "\n".join(lines)


def _arrival_delays(config: LoadGenConfig, rng: random.Random) -> List[float]:
    """Absolute start offset of each session, per the arrival process."""
    delays: List[float] = []
    t = 0.0
    if config.arrival == "poisson":
        for _ in range(config.sessions):
            delays.append(t)
            t += rng.expovariate(config.rate_hz)
    else:  # burst
        for i in range(config.sessions):
            if i > 0 and i % config.burst_size == 0:
                t += 1.0 / config.rate_hz
            delays.append(t)
    return delays


def _pick_tenants(config: LoadGenConfig, rng: random.Random,
                  surge_from: int) -> List[str]:
    """Tenant of each session (empty strings when no mix is set).

    Sessions at index >= ``surge_from`` are the surge cohort and draw
    from ``surge_tenants`` when provided.
    """
    if not config.tenants:
        return [""] * config.sessions
    names = [n for n, _ in config.tenants]
    weights = [w for _, w in config.tenants]
    surge_mix = config.surge_tenants or config.tenants
    picks: List[str] = []
    for i in range(config.sessions):
        if i >= surge_from:
            picks.append(rng.choices(
                [n for n, _ in surge_mix], [w for _, w in surge_mix],
            )[0])
        else:
            picks.append(rng.choices(names, weights)[0])
    return picks


def _scenario_plan(
    config: LoadGenConfig, rng: random.Random,
) -> Tuple[List[float], List[str]]:
    """Arrival offsets + tenant picks, shaped by ``scenario``.

    * ``"surge"``: the first half of the sessions arrive by the base
      process; the rest land *together* halfway through that ramp — a
      mixed-tenant spike sized to drive the policy over its budget.
    * ``"diurnal"``: exponential inter-arrivals whose rate alternates
      between day (``rate_hz``) and night (``rate_hz *
      night_fraction``) every ``shift_s`` seconds — the hospital-shift
      load the paper's traces motivate.
    """
    if config.scenario == "surge":
        calm = max(1, config.sessions - config.sessions // 2)
        delays: List[float] = []
        t = 0.0
        for _ in range(calm):
            delays.append(t)
            t += rng.expovariate(config.rate_hz)
        surge_at = (delays[-1] if delays else 0.0) * 0.5
        delays.extend(surge_at for _ in range(config.sessions - calm))
        return delays, _pick_tenants(config, rng, surge_from=calm)
    if config.scenario == "diurnal":
        delays = []
        t = 0.0
        for _ in range(config.sessions):
            delays.append(t)
            day = int(t / config.shift_s) % 2 == 0
            rate = config.rate_hz * (1.0 if day else config.night_fraction)
            t += rng.expovariate(rate)
        return delays, _pick_tenants(config, rng,
                                     surge_from=config.sessions)
    return (
        _arrival_delays(config, rng),
        _pick_tenants(config, rng, surge_from=config.sessions),
    )


class _SessionState:
    """Client-side progress that survives reconnects."""

    def __init__(self) -> None:
        #: frame index -> drop reason (``None`` = encoded), deduplicated
        #: across resume replays.
        self.outcomes: Dict[int, Optional[str]] = {}
        #: frame index -> CRC-32 of the delivered reconstruction: the
        #: bit-identity evidence (a replay disagreeing with what this
        #: client already holds is a divergence, counted not merged).
        self.luma_crc: Dict[int, int] = {}
        self.send_times: Dict[int, float] = {}
        self.next_send = 0
        self.complete = False

    def digest(self) -> int:
        """CRC-32 folded over outcomes in frame order."""
        crc = 0
        for index in sorted(self.outcomes):
            reason = self.outcomes[index] or ""
            crc = zlib.crc32(
                f"{index}:{reason}:{self.luma_crc.get(index, 0)}".encode(),
                crc,
            )
        return crc

    @property
    def have_below(self) -> int:
        """Contiguous-delivery watermark: every index below it has an
        outcome."""
        have = 0
        while have in self.outcomes:
            have += 1
        return have


def _sync_counts(report: SessionReport, state: _SessionState) -> None:
    report.frames_encoded = sum(
        1 for v in state.outcomes.values() if v is None
    )
    report.frames_dropped = sum(
        1 for v in state.outcomes.values() if v is not None
    )
    report.output_digest = state.digest()


class _TransientResumeReject(ConnectionError):
    """A RESUME was rejected with a ``retry_after_s`` hint: the lease
    owner's fate is unresolved (or the fleet is mid-restart) — retry
    the same token, don't give up."""

    def __init__(self, retry_after_s: float, reason: str):
        super().__init__(f"resume deferred: {reason}")
        self.retry_after_s = retry_after_s


async def _session_attempt(config: LoadGenConfig, index: int,
                           content: ContentClass, video,
                           report: SessionReport,
                           state: _SessionState) -> None:
    """One connection's worth of a session: handshake (HELLO or
    RESUME), stream the remaining frames, collect outcomes until BYE.

    Sets ``state.complete`` when the server closed the session cleanly;
    a drain-parked BYE leaves it unset so the caller reconnects.
    """
    reader, writer = await asyncio.open_connection(config.host, config.port)
    # Reader allocation bound: ENCODED carries one reconstructed plane
    # of the session's geometry; never loosen beyond the wire ceiling.
    recv_max = min(MAX_PAYLOAD, max(DEFAULT_DECODER_MAX_PAYLOAD,
                                    config.width * config.height + 1024))
    try:
        if report.resume_token:
            await write_message(writer, Resume(
                resume_token=report.resume_token,
                have_below=state.have_below,
                client_id=f"loadgen-{index}",
            ))
            ack = await read_message(reader, max_payload=recv_max)
            if not isinstance(ack, ResumeAck):
                raise ProtocolError(
                    f"expected RESUME_ACK, got {ack.type.name}"
                )
            if ack.decision != "accept":
                if ack.retry_after_s > 0:
                    raise _TransientResumeReject(
                        ack.retry_after_s, ack.reason
                    )
                raise ProtocolError(f"resume rejected: {ack.reason}")
            report.resumes += 1
            report.replayed += ack.replayed
            report.resume_token = ack.resume_token or report.resume_token
            state.next_send = ack.next_frame_index
        else:
            await write_message(writer, Hello(
                width=config.width, height=config.height, fps=config.fps,
                num_frames=config.frames, gop=config.gop,
                content_class=content.value, client_id=f"loadgen-{index}",
                ladder=config.ladder or None,
                tenant=report.tenant,
            ))
            ack = await read_message(reader, max_payload=recv_max)
            while isinstance(ack, HelloAck) and ack.decision == "park":
                report.parked = True
                ack = await read_message(reader, max_payload=recv_max)
            if not isinstance(ack, HelloAck):
                raise ProtocolError(
                    f"expected HELLO_ACK, got {ack.type.name}"
                )
            report.decision = ack.decision
            report.reason = ack.reason
            report.resume_token = ack.resume_token
            report.rungs = ack.rungs
            if ack.decision != "accept":
                state.complete = True
                return

        bye_reason: List[str] = []

        async def sender() -> None:
            # Zero-copy send: each luma plane is serialized once into
            # a reusable arena (no tobytes(), no payload concat); the
            # transport either sends synchronously or copies what it
            # could not, so the arena is reusable after write().
            arena = bytearray()
            for frame in video.frames[state.next_send:]:
                state.send_times[frame.index] = time.perf_counter()
                del arena[:]
                encode_frame_into(
                    arena, frame.index, config.width, config.height,
                    frame.luma,
                )
                writer.write(arena)
                await writer.drain()
                report.frames_sent += 1
                if config.frame_interval_s > 0:
                    await asyncio.sleep(config.frame_interval_s)
            await write_message(writer, Bye("done"))

        async def receiver() -> None:
            while True:
                msg = await read_message(reader, max_payload=recv_max)
                if isinstance(msg, Encoded):
                    # Ladder sessions interleave rungs on one wire;
                    # outcomes are deduplicated per (rung, frame).
                    key = ((msg.rung, msg.frame_index) if config.ladder
                           else msg.frame_index)
                    first = key not in state.outcomes
                    if first:
                        state.outcomes[key] = msg.dropped
                        if msg.dropped is None:
                            state.luma_crc[key] = zlib.crc32(
                                msg.luma
                            )
                            sent = (state.send_times.get(msg.frame_index)
                                    if msg.rung == 0 else None)
                            if sent is not None:
                                report.latencies_s.append(
                                    time.perf_counter() - sent
                                )
                    elif (msg.dropped is None
                          and key in state.luma_crc
                          and zlib.crc32(msg.luma)
                          != state.luma_crc[key]):
                        # A resume replayed this frame with different
                        # bytes than the original delivery: the exact
                        # divergence the journal exists to prevent.
                        report.divergent_replays += 1
                elif isinstance(msg, Stats):
                    report.server_stats = msg.data
                elif isinstance(msg, Bye):
                    bye_reason.append(msg.reason)
                    return
                elif isinstance(msg, ErrorMsg):
                    raise ProtocolError(
                        f"server error [{msg.code}]: {msg.detail}"
                    )
                else:
                    raise ProtocolError(
                        f"unexpected {msg.type.name} from server"
                    )

        await asyncio.wait_for(
            asyncio.gather(sender(), receiver()), timeout=config.timeout_s
        )
        # A draining server says goodbye without completing the
        # session; everything else is a clean finish.
        if not (bye_reason and bye_reason[0].startswith("server draining")):
            state.complete = True
    finally:
        _sync_counts(report, state)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@functools.lru_cache(maxsize=8)
def _cached_video(content: ContentClass, width: int, height: int,
                  num_frames: int, seed: int):
    """Synthesis is deterministic in its arguments and clients only
    read the frames, so repeated runs (benchmark rounds, retries)
    replay the cached payload instead of re-synthesizing it inside
    the measured window."""
    return generate_video(
        content_class=content, width=width, height=height,
        num_frames=num_frames, seed=seed,
    )


async def _run_session(config: LoadGenConfig, index: int,
                       content: ContentClass, seed: int,
                       report: SessionReport) -> None:
    video = _cached_video(
        content, config.width, config.height, config.frames, seed,
    )
    rng = random.Random((seed << 1) ^ 0x5EED)
    state = _SessionState()
    attempts_left = config.max_reconnects
    backoff = config.backoff_base_s

    async def retry_or_raise(exc: BaseException) -> None:
        nonlocal attempts_left, backoff
        if attempts_left <= 0:
            raise exc
        attempts_left -= 1
        report.reconnect_attempts += 1
        jitter = 1.0 + config.backoff_jitter * (2 * rng.random() - 1)
        await asyncio.sleep(max(0.0, backoff * jitter))
        backoff = min(config.backoff_max_s, backoff * 2 or 0.01)

    while True:
        try:
            await _session_attempt(
                config, index, content, video, report, state
            )
        except _TransientResumeReject as exc:
            # The server itself asked for a retry (lease held by a
            # worker whose death is not yet confirmed, or a fleet
            # mid-restart): honour its hint, then the normal backoff.
            report.lease_retries += 1
            await asyncio.sleep(exc.retry_after_s)
            await retry_or_raise(exc)
            continue
        except (ConnectionRefusedError,) as exc:
            if report.resume_token:
                # Refused while holding a token: the worker that owed
                # us a session is restarting — retryable, and distinct
                # from an admission-level refusal.
                report.retryable_restarts += 1
            else:
                report.connect_refusals += 1
            await retry_or_raise(exc)
            continue
        except (ConnectionError, asyncio.IncompleteReadError,
                OSError) as exc:
            if isinstance(exc, TimeoutError):
                # Client-side deadline, not a transport fault: the
                # session overran ``timeout_s`` — report, don't retry.
                raise
            report.mid_stream_disconnects += 1
            # Only a journaling server can continue the session; a lost
            # session without a token restarts from scratch... which
            # the deduplicated outcome map does not model — give up.
            if not report.resume_token:
                raise
            await retry_or_raise(exc)
            continue
        if state.complete:
            return
        # Parked by a drain: back off and reattach.
        await retry_or_raise(
            ConnectionError("session parked by server drain")
        )


async def run_loadgen_async(config: LoadGenConfig) -> LoadReport:
    """Run the configured load against ``config.host:config.port``."""
    rng = random.Random(config.seed)
    classes = [c for c, _ in config.mix]
    weights = [w for _, w in config.mix]
    picks = rng.choices(classes, weights=weights, k=config.sessions)
    delays, tenant_picks = _scenario_plan(config, rng)
    seeds = [rng.randrange(2**31) for _ in range(config.sessions)]
    report = LoadReport()
    report.sessions = [
        SessionReport(session=i, content_class=picks[i].value,
                      tenant=tenant_picks[i])
        for i in range(config.sessions)
    ]

    async def one(i: int) -> None:
        if delays[i] > 0:
            await asyncio.sleep(delays[i])
        try:
            await _run_session(
                config, i, picks[i], seeds[i], report.sessions[i]
            )
        except ProtocolError as exc:
            report.protocol_errors += 1
            report.sessions[i].error = str(exc)
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, OSError) as exc:
            report.sessions[i].error = f"{type(exc).__name__}: {exc}"

    start = time.perf_counter()
    await asyncio.gather(*(one(i) for i in range(config.sessions)))
    report.wall_clock_s = time.perf_counter() - start
    return report


def run_loadgen(config: LoadGenConfig) -> LoadReport:
    """Synchronous entry point (used by the CLI)."""
    return asyncio.run(run_loadgen_async(config))
