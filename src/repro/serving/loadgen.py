"""Load generator: many concurrent clients against the network server.

Sessions arrive by a configurable process (Poisson inter-arrivals or
synchronized bursts), draw a content class from a weighted mix, stream
a synthetic bio-medical video over the wire protocol and collect a
client-side report: admission outcomes, end-to-end frame latency
percentiles and the server-reported deadline-miss counts.  Everything
stochastic — arrivals, content mix, video synthesis — derives from one
seed, so a run is reproducible end to end.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.protocol import (
    Bye,
    Encoded,
    ErrorMsg,
    FrameMsg,
    Hello,
    HelloAck,
    ProtocolError,
    Stats,
    read_message,
    write_message,
)
from repro.video.generator import ContentClass, generate_video

__all__ = ["LoadGenConfig", "LoadReport", "SessionReport", "run_loadgen"]

#: Default content-class mix (uniform over three common modalities).
DEFAULT_MIX: Tuple[Tuple[ContentClass, float], ...] = (
    (ContentClass.BRAIN, 1.0),
    (ContentClass.BONE, 1.0),
    (ContentClass.LUNG, 1.0),
)


@dataclass(frozen=True)
class LoadGenConfig:
    """Configuration of one load-generator run."""

    host: str = "127.0.0.1"
    port: int = 0
    sessions: int = 3
    #: Frames each session streams (default: two GOPs at gop=8).
    frames: int = 16
    width: int = 96
    height: int = 96
    fps: float = 24.0
    gop: int = 8
    #: Arrival process: ``"poisson"`` (exponential inter-arrivals at
    #: ``rate_hz``) or ``"burst"`` (groups of ``burst_size`` arriving
    #: together, groups separated by ``1/rate_hz``).
    arrival: str = "poisson"
    #: Mean session arrival rate (sessions/second).
    rate_hz: float = 20.0
    burst_size: int = 4
    #: Inter-frame pacing within a session; 0 streams as fast as the
    #: socket accepts (exercises ingest backpressure).
    frame_interval_s: float = 0.0
    #: Weighted content-class mix sessions draw from.
    mix: Tuple[Tuple[ContentClass, float], ...] = DEFAULT_MIX
    seed: int = 0
    #: Per-session wall-clock budget before the client gives up.
    timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.arrival not in ("poisson", "burst"):
            raise ValueError("arrival must be 'poisson' or 'burst'")
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if not self.mix:
            raise ValueError("content mix must be non-empty")


@dataclass
class SessionReport:
    """Client-side outcome of one session."""

    session: int
    content_class: str
    decision: str = "error"
    reason: str = ""
    parked: bool = False
    frames_sent: int = 0
    frames_encoded: int = 0
    frames_dropped: int = 0
    latencies_s: List[float] = field(default_factory=list)
    server_stats: Optional[Dict[str, object]] = None
    error: Optional[str] = None


def _percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (no numpy needed for the report)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class LoadReport:
    """Aggregate outcome of a load-generator run."""

    sessions: List[SessionReport] = field(default_factory=list)
    protocol_errors: int = 0
    wall_clock_s: float = 0.0

    @property
    def accepted(self) -> int:
        return sum(1 for s in self.sessions if s.decision == "accept")

    @property
    def rejected(self) -> int:
        return sum(1 for s in self.sessions if s.decision == "reject")

    @property
    def errored(self) -> int:
        return sum(1 for s in self.sessions if s.error is not None)

    @property
    def parked(self) -> int:
        return sum(1 for s in self.sessions if s.parked)

    @property
    def latencies_s(self) -> List[float]:
        return [x for s in self.sessions for x in s.latencies_s]

    @property
    def deadline_misses(self) -> int:
        return sum(
            int(s.server_stats.get("deadline_misses", 0))
            for s in self.sessions if s.server_stats
        )

    @property
    def frames_encoded(self) -> int:
        return sum(s.frames_encoded for s in self.sessions)

    def to_dict(self) -> Dict[str, object]:
        lat = self.latencies_s
        encoded = self.frames_encoded
        return {
            "sessions": len(self.sessions),
            "accepted": self.accepted,
            "rejected": self.rejected,
            "parked": self.parked,
            "errors": self.errored,
            "protocol_errors": self.protocol_errors,
            "frames_sent": sum(s.frames_sent for s in self.sessions),
            "frames_encoded": encoded,
            "frames_dropped": sum(s.frames_dropped for s in self.sessions),
            "latency_p50_s": _percentile(lat, 0.50),
            "latency_p95_s": _percentile(lat, 0.95),
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": (
                self.deadline_misses / encoded if encoded else None
            ),
            "wall_clock_s": self.wall_clock_s,
        }

    def summary(self) -> str:
        d = self.to_dict()
        p50 = d["latency_p50_s"]
        p95 = d["latency_p95_s"]
        miss = d["deadline_miss_rate"]
        lines = [
            "loadgen report",
            f"  sessions     : {d['sessions']} "
            f"(accepted {d['accepted']}, rejected {d['rejected']}, "
            f"parked {d['parked']}, errors {d['errors']})",
            f"  frames       : sent {d['frames_sent']}, "
            f"encoded {d['frames_encoded']}, dropped {d['frames_dropped']}",
            f"  latency      : p50 "
            f"{f'{p50 * 1e3:.1f} ms' if p50 is not None else 'n/a'}, p95 "
            f"{f'{p95 * 1e3:.1f} ms' if p95 is not None else 'n/a'}",
            f"  deadline miss: {d['deadline_misses']} "
            f"({f'{miss:.1%}' if miss is not None else 'n/a'})",
            f"  protocol errs: {d['protocol_errors']}",
            f"  wall clock   : {d['wall_clock_s']:.2f} s",
        ]
        return "\n".join(lines)


def _arrival_delays(config: LoadGenConfig, rng: random.Random) -> List[float]:
    """Absolute start offset of each session, per the arrival process."""
    delays: List[float] = []
    t = 0.0
    if config.arrival == "poisson":
        for _ in range(config.sessions):
            delays.append(t)
            t += rng.expovariate(config.rate_hz)
    else:  # burst
        for i in range(config.sessions):
            if i > 0 and i % config.burst_size == 0:
                t += 1.0 / config.rate_hz
            delays.append(t)
    return delays


async def _run_session(config: LoadGenConfig, index: int,
                       content: ContentClass, seed: int,
                       report: SessionReport) -> None:
    video = generate_video(
        content_class=content, width=config.width, height=config.height,
        num_frames=config.frames, seed=seed,
    )
    reader, writer = await asyncio.open_connection(config.host, config.port)
    try:
        await write_message(writer, Hello(
            width=config.width, height=config.height, fps=config.fps,
            num_frames=config.frames, gop=config.gop,
            content_class=content.value, client_id=f"loadgen-{index}",
        ))
        ack = await read_message(reader)
        while isinstance(ack, HelloAck) and ack.decision == "park":
            report.parked = True
            ack = await read_message(reader)
        if not isinstance(ack, HelloAck):
            raise ProtocolError(f"expected HELLO_ACK, got {ack.type.name}")
        report.decision = ack.decision
        report.reason = ack.reason
        if ack.decision != "accept":
            return

        send_times: Dict[int, float] = {}

        async def sender() -> None:
            for frame in video.frames:
                send_times[frame.index] = time.perf_counter()
                await write_message(writer, FrameMsg(
                    frame_index=frame.index, width=config.width,
                    height=config.height, luma=frame.luma.tobytes(),
                ))
                report.frames_sent += 1
                if config.frame_interval_s > 0:
                    await asyncio.sleep(config.frame_interval_s)
            await write_message(writer, Bye("done"))

        async def receiver() -> None:
            while True:
                msg = await read_message(reader)
                if isinstance(msg, Encoded):
                    if msg.dropped is None:
                        report.frames_encoded += 1
                        sent = send_times.get(msg.frame_index)
                        if sent is not None:
                            report.latencies_s.append(
                                time.perf_counter() - sent
                            )
                    else:
                        report.frames_dropped += 1
                elif isinstance(msg, Stats):
                    report.server_stats = msg.data
                elif isinstance(msg, Bye):
                    return
                elif isinstance(msg, ErrorMsg):
                    raise ProtocolError(
                        f"server error [{msg.code}]: {msg.detail}"
                    )
                else:
                    raise ProtocolError(
                        f"unexpected {msg.type.name} from server"
                    )

        await asyncio.wait_for(
            asyncio.gather(sender(), receiver()), timeout=config.timeout_s
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_loadgen_async(config: LoadGenConfig) -> LoadReport:
    """Run the configured load against ``config.host:config.port``."""
    rng = random.Random(config.seed)
    classes = [c for c, _ in config.mix]
    weights = [w for _, w in config.mix]
    picks = rng.choices(classes, weights=weights, k=config.sessions)
    delays = _arrival_delays(config, rng)
    seeds = [rng.randrange(2**31) for _ in range(config.sessions)]
    report = LoadReport()
    report.sessions = [
        SessionReport(session=i, content_class=picks[i].value)
        for i in range(config.sessions)
    ]

    async def one(i: int) -> None:
        if delays[i] > 0:
            await asyncio.sleep(delays[i])
        try:
            await _run_session(
                config, i, picks[i], seeds[i], report.sessions[i]
            )
        except ProtocolError as exc:
            report.protocol_errors += 1
            report.sessions[i].error = str(exc)
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError, OSError) as exc:
            report.sessions[i].error = f"{type(exc).__name__}: {exc}"

    start = time.perf_counter()
    await asyncio.gather(*(one(i) for i in range(config.sessions)))
    report.wall_clock_s = time.perf_counter() - start
    return report


def run_loadgen(config: LoadGenConfig) -> LoadReport:
    """Synchronous entry point (used by the CLI)."""
    return asyncio.run(run_loadgen_async(config))
