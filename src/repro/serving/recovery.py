"""Per-session journal and restore path for the serving layer.

The serving fault-tolerance story (DESIGN.md §11) rests on one
invariant: **everything the encoder needs to continue a session
bit-identically is durable at every GOP boundary**.  This module owns
that durability layer:

``SessionJournal``
    An append-only JSONL file of checksummed records.  Each line is a
    self-contained JSON object ``{"seq", "kind", "payload",
    "checksum"}`` whose checksum is the SHA-256 of the canonical JSON
    of ``{"seq", "kind", "payload"}`` — the same canonicalisation the
    LUT checkpoint uses (:mod:`repro.resilience.checkpoint`), so the
    two on-disk formats verify identically.  Appends ``flush`` +
    ``fsync`` by default; the server journals once per GOP, which is
    what keeps the overhead within the <2 % budget (BENCH_4.json).

``read_journal`` / ``restore_session``
    Crash-tolerant loaders.  A *truncated tail* — the final line cut
    short by a mid-write crash — is expected and silently discarded;
    the journal is authoritative up to its last intact record.
    Anything else (checksum mismatch, undecodable body, sequence gap)
    is corruption: :class:`~repro.resilience.errors.JournalCorruptionError`
    in strict mode, a best-effort prefix otherwise.

Record kinds, in the order a journal accumulates them:

``admit``
    Written once at admission: the client's HELLO fields plus the
    encoder configuration the admission controller chose (``qp``,
    ``window``) — a resumed session must re-derive the *same*
    pipeline or bit-identity is lost.
``gop``
    Written at every GOP boundary: the stream's cross-GOP state
    snapshot (:meth:`ProposedStreamSession.export_state`) and the
    GOP's per-frame outcomes, reconstruction planes included
    (zlib-compressed) so a reconnecting client can be replayed
    outcomes its previous connection never delivered.
``park``
    Written by graceful drain when a session is interrupted mid-GOP:
    the raw frames pushed since the last boundary plus anything still
    queued, so a restarted server re-feeds them and the GOP
    structure — hence the output bytes — match an uninterrupted run.
    Also carries any outcomes egressed since the last boundary that no
    ``gop`` record covers (watchdog drops), so replay classification
    matches the original delivery.
``resume``
    A marker written when a reconnecting client reattaches; it
    invalidates any earlier ``park`` record (its frames were
    re-fed and will reappear in later ``gop`` records).
``tombstone``
    Best-effort terminal marker written when a durability brownout
    retires the session's resume token (DESIGN.md §16): the journal is
    no longer a faithful history (appends started failing), so any
    later RESUME against it must be refused rather than replayed.

Every filesystem touch goes through an injectable
:class:`~repro.storage.faultfs.FileOps` seam; a failed append rolls
the file back to its pre-write length before any retry, so a partial
line is never welded to a later complete record (which would read as
mid-file corruption instead of a repairable torn tail).
"""

from __future__ import annotations

import base64
import hashlib
import io
import os
import re
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.resilience.checkpoint import canonical_json, payload_checksum
from repro.resilience.errors import JournalCorruptionError
from repro.serving.protocol import Encoded
from repro.storage.errors import (
    RetryPolicy,
    StorageError,
    run_with_retries,
)
from repro.storage.faultfs import FileOps, REAL_FILEOPS

__all__ = [
    "JOURNAL_SUFFIX",
    "JournalReadResult",
    "JournalStore",
    "RestoredSession",
    "SessionJournal",
    "frame_output_record",
    "pack_plane",
    "unpack_plane",
    "read_journal",
    "replay_messages",
    "restore_session",
]

JOURNAL_SUFFIX = ".journal"

_RECORD_KINDS = ("admit", "gop", "park", "resume", "tombstone")
_TOKEN_RE = re.compile(r"[^A-Za-z0-9_.-]")


# ----------------------------------------------------------------------
# ndarray <-> JSON-safe packing
# ----------------------------------------------------------------------
def pack_plane(plane: np.ndarray) -> Dict[str, object]:
    """Pack one uint8 luma plane into a JSON-safe dict.

    zlib over the raw bytes: bio-medical planes (smooth gradients,
    static backgrounds) compress well, which is most of why per-GOP
    journaling stays cheap.
    """
    arr = np.ascontiguousarray(plane, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D plane, got shape {arr.shape}")
    return {
        "shape": [int(arr.shape[0]), int(arr.shape[1])],
        "zlib": base64.b64encode(zlib.compress(arr.tobytes(), 6)).decode(
            "ascii"
        ),
    }


def unpack_plane(obj: Dict[str, object]) -> np.ndarray:
    """Inverse of :func:`pack_plane`."""
    try:
        height, width = (int(v) for v in obj["shape"])
        raw = zlib.decompress(base64.b64decode(obj["zlib"]))
    except (KeyError, TypeError, ValueError, zlib.error) as exc:
        raise JournalCorruptionError(f"undecodable plane: {exc}") from exc
    if len(raw) != width * height:
        raise JournalCorruptionError(
            f"plane byte length {len(raw)} != {width}x{height}"
        )
    return np.frombuffer(raw, dtype=np.uint8).reshape(height, width).copy()


def frame_output_record(out) -> Dict[str, object]:
    """Serialize one :class:`~repro.transcode.pipeline.FrameOutput`
    into a journal-safe dict mirroring the wire ENCODED message."""
    if out.dropped is not None:
        return {
            "frame_index": int(out.frame_index),
            "dropped": out.dropped,
            "frame_type": "",
            "bits": 0,
            "psnr": 0.0,
            "recon": None,
        }
    record = out.record
    psnr = float(np.mean([t.psnr for t in record.tiles]))
    return {
        "frame_index": int(out.frame_index),
        "dropped": None,
        "frame_type": out.frame_type.value,
        "bits": int(record.bits),
        "psnr": psnr,
        "recon": pack_plane(out.reconstruction),
    }


def encoded_from_record(rec: Dict[str, object]) -> Encoded:
    """Rebuild the wire ENCODED message for one journaled outcome."""
    if rec.get("dropped") is not None:
        return Encoded(
            frame_index=int(rec["frame_index"]), frame_type="",
            dropped=str(rec["dropped"]),
        )
    plane = unpack_plane(rec["recon"])
    return Encoded(
        frame_index=int(rec["frame_index"]),
        frame_type=str(rec["frame_type"]),
        width=int(plane.shape[1]), height=int(plane.shape[0]),
        bits=int(rec["bits"]), psnr=float(rec["psnr"]),
        luma=plane.tobytes(),
    )


# ----------------------------------------------------------------------
# Journal writer
# ----------------------------------------------------------------------
class SessionJournal:
    """Append-only checksummed JSONL journal for one session.

    Opened in append mode, so a resumed session keeps extending the
    same file its predecessor wrote — the journal is the session's
    full history across any number of reconnects.
    """

    def __init__(self, path: Union[str, os.PathLike], fsync: bool = True,
                 next_seq: int = 0, fileops: Optional[FileOps] = None,
                 retry: Optional[RetryPolicy] = None,
                 on_retry=None):
        self.path = os.fspath(path)
        self.fsync = fsync
        self._seq = next_seq
        self._ops = fileops or REAL_FILEOPS
        self._retry = retry
        self._on_retry = on_retry
        self._fh: Optional[io.FileIO] = self._ops.append_open(
            self.path, point="journal.create"
        )
        #: Bytes of intact records on disk — the rollback anchor: a
        #: failed append truncates back to this before any retry.
        self._size = os.path.getsize(self.path)
        self.appends = 0

    @property
    def next_seq(self) -> int:
        return self._seq

    @property
    def closed(self) -> bool:
        return self._fh is None

    def append(self, kind: str, payload: Dict[str, object]) -> int:
        """Append one record; returns its sequence number.

        The record is written and (by default) fsync'd before
        returning: once ``append`` returns, the record survives a
        crash.  A crash *during* the write leaves at most a truncated
        final line, which loaders discard.

        Storage faults surface as the typed
        :class:`~repro.storage.errors.StorageError` taxonomy.
        Transient faults are retried under the journal's
        :class:`~repro.storage.errors.RetryPolicy` — but only after
        rolling the file back to its pre-write length, so a partial
        line is never followed by a complete record (that would read
        as *mid-file corruption*, not a repairable torn tail).  A
        rollback that itself fails marks the fault persistent: the
        file's tail state is unknowable and further appends would
        make it worse.
        """
        if self._fh is None:
            raise ValueError(f"journal {self.path!r} is closed")
        if kind not in _RECORD_KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        body = {"seq": self._seq, "kind": kind, "payload": payload}
        # Serialize the (possibly large) body once: checksum the
        # canonical body JSON, then splice the checksum field in front.
        # ``canonical_json`` sorts keys and "checksum" sorts before
        # "kind"/"payload"/"seq", so the spliced line is byte-identical
        # to ``canonical_json({**body, "checksum": ...})``.
        body_json = canonical_json(body)
        digest = hashlib.sha256(body_json.encode("utf-8")).hexdigest()
        line = '{"checksum":"' + digest + '",' + body_json[1:]
        data = line.encode("utf-8") + b"\n"

        def write_record() -> None:
            try:
                self._ops.append(self._fh, data, point="journal.append")
                if self.fsync:
                    # fdatasync is durability-equivalent for an
                    # append-only record (it flushes the data and the
                    # file size) and avoids the unrelated-metadata
                    # stalls full fsync can incur.
                    self._ops.fsync_handle(self._fh, point="journal.fsync")
            except StorageError as exc:
                try:
                    self._ops.truncate_handle(self._fh, self._size,
                                              point="journal.rollback")
                except StorageError as rollback_exc:
                    rollback_exc.transient = False
                    raise rollback_exc from exc
                raise

        run_with_retries(write_record, self._retry, on_retry=self._on_retry)
        self._size += len(data)
        self._seq += 1
        self.appends += 1
        return self._seq - 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SessionJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Journal reader
# ----------------------------------------------------------------------
@dataclass
class JournalReadResult:
    """Outcome of scanning one journal file."""

    records: List[Tuple[str, Dict[str, object]]] = field(
        default_factory=list
    )  #: intact ``(kind, payload)`` pairs, in sequence order
    truncated: bool = False  #: a partial final line was discarded
    reason: str = "ok"  #: "ok", "truncated tail", or corruption detail
    #: Byte offset just past the last intact record (newline included).
    #: When ``truncated``, the file must be cut back to this offset
    #: before any further append — appending onto a torn tail would
    #: weld the next record to the partial line and corrupt the file.
    intact_bytes: int = 0

    @property
    def next_seq(self) -> int:
        return len(self.records)


def _decode_record(line: bytes, expect_seq: int) -> Tuple[str, dict]:
    import json

    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ValueError(f"undecodable record: {exc}") from exc
    if not isinstance(record, dict):
        raise ValueError("record is not a JSON object")
    try:
        body = {"seq": record["seq"], "kind": record["kind"],
                "payload": record["payload"]}
        declared = record["checksum"]
    except KeyError as exc:
        raise ValueError(f"record missing field {exc}") from exc
    if payload_checksum(body) != declared:
        raise ValueError(f"checksum mismatch at seq {record.get('seq')}")
    if body["seq"] != expect_seq:
        raise ValueError(
            f"sequence gap: expected {expect_seq}, found {body['seq']}"
        )
    kind = body["kind"]
    if kind not in _RECORD_KINDS or not isinstance(body["payload"], dict):
        raise ValueError(f"malformed record of kind {kind!r}")
    return kind, body["payload"]


def read_journal(path: Union[str, os.PathLike],
                 strict: bool = False,
                 fileops: Optional[FileOps] = None) -> JournalReadResult:
    """Scan a journal, verifying every record.

    A bad *final* line is the mid-write crash signature: discarded,
    ``truncated=True``, never an error.  A bad line with intact
    records after it cannot be a torn write — that is corruption:
    :class:`JournalCorruptionError` when ``strict``, else the intact
    prefix with ``reason`` describing the damage.
    """
    raw = (fileops or REAL_FILEOPS).read_bytes(path, point="journal.read")
    result = JournalReadResult()
    lines = raw.split(b"\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else is a torn final record.
    tail_torn = lines and lines[-1] != b""
    body_lines = lines[:-1]
    for i, line in enumerate(body_lines):
        try:
            kind, payload = _decode_record(line, expect_seq=i)
        except ValueError as exc:
            last = i == len(body_lines) - 1 and not tail_torn
            if last:
                # Torn write that still got its newline out.
                result.truncated = True
                result.reason = "truncated tail"
                return result
            if strict:
                raise JournalCorruptionError(
                    f"corrupt journal {os.fspath(path)!r}: {exc}"
                ) from exc
            result.reason = str(exc)
            return result
        result.records.append((kind, payload))
        result.intact_bytes += len(line) + 1
    if tail_torn:
        result.truncated = True
        result.reason = "truncated tail"
    return result


# ----------------------------------------------------------------------
# Session restore
# ----------------------------------------------------------------------
@dataclass
class RestoredSession:
    """Everything a server needs to reattach a journaled session."""

    token: str
    #: HELLO fields + chosen encoder config from the ``admit`` record.
    admit: Dict[str, object]
    #: Latest GOP-boundary pipeline snapshot, ``previous_original``
    #: already unpacked to an ndarray — ready for
    #: :meth:`ProposedStreamSession.import_state`.  ``None`` when the
    #: session never completed a GOP.
    state: Optional[Dict[str, object]]
    #: Journaled per-frame outcomes keyed by frame index (replay pool).
    outputs: Dict[int, Dict[str, object]]
    #: Raw frames parked by a graceful drain: ``(index, plane)`` in
    #: push order.  Empty unless the last record is an active ``park``.
    pending: List[Tuple[int, np.ndarray]]
    #: Index the client must resend from (== the server's restored
    #: ``next_index`` once ``pending`` has been re-fed).
    next_frame_index: int
    #: True when the session was parked by a drain (vs cut mid-GOP).
    parked: bool
    #: Number of times this session has already been resumed.
    resumes: int
    #: Sequence number the continuing journal must start at.
    next_seq: int
    #: Owner id (``"<worker>:<pid>"``) recorded by the last admit or
    #: resume record — who was appending when the journal went quiet.
    #: A worker resuming a journal whose ``last_owner`` differs from
    #: its own id is *adopting* a dead peer's session.  ``""`` for
    #: journals written before owner tracking existed.
    last_owner: str = ""
    truncated: bool = False
    #: Byte offset of the end of the last intact record; a continuing
    #: journal must be truncated to this before appending when
    #: ``truncated`` (see :meth:`JournalStore.reopen`).
    intact_bytes: int = 0
    #: True when a durability brownout retired this journal's token (a
    #: ``tombstone`` record): RESUME must refuse it with a typed
    #: reject — the journal stopped being a faithful history the
    #: moment its appends started failing.
    tombstoned: bool = False


def restore_session(path: Union[str, os.PathLike],
                    strict: bool = False,
                    fileops: Optional[FileOps] = None) -> RestoredSession:
    """Fold a journal into the state needed to reattach its session."""
    scan = read_journal(path, strict=strict, fileops=fileops)
    if not scan.records:
        raise JournalCorruptionError(
            f"journal {os.fspath(path)!r} holds no intact records"
        )
    kind0, admit = scan.records[0]
    if kind0 != "admit":
        raise JournalCorruptionError(
            f"journal {os.fspath(path)!r} does not start with an "
            f"admit record (found {kind0!r})"
        )
    state: Optional[Dict[str, object]] = None
    outputs: Dict[int, Dict[str, object]] = {}
    pending: List[Tuple[int, np.ndarray]] = []
    next_frame_index = 0
    parked = False
    resumes = 0
    tombstoned = False
    last_owner = str(admit.get("owner", ""))
    for kind, payload in scan.records[1:]:
        if kind == "gop":
            state = dict(payload["state"])
            previous = state.get("previous_original")
            state["previous_original"] = (
                unpack_plane(previous) if previous is not None else None
            )
            for rec in payload["outputs"]:
                outputs[int(rec["frame_index"])] = rec
            next_frame_index = int(payload["next_frame_index"])
            pending = []
            parked = False
        elif kind == "park":
            pending = [
                (int(f["frame_index"]), unpack_plane(f["plane"]))
                for f in payload.get("frames", [])
            ]
            # Outcomes egressed outside a gop record (watchdog drops)
            # ride along in the park record so a replay classifies
            # them identically to the original delivery.
            for rec in payload.get("outputs", []):
                outputs[int(rec["frame_index"])] = rec
            next_frame_index = int(payload["next_frame_index"])
            parked = True
        elif kind == "resume":
            pending = []
            parked = False
            resumes += 1
            last_owner = str(payload.get("owner", last_owner))
        elif kind == "tombstone":
            tombstoned = True
            last_owner = str(payload.get("owner", last_owner))
    token = str(admit.get("token", ""))
    return RestoredSession(
        token=token, admit=dict(admit), state=state, outputs=outputs,
        pending=pending, next_frame_index=next_frame_index, parked=parked,
        resumes=resumes, next_seq=scan.next_seq, last_owner=last_owner,
        truncated=scan.truncated, intact_bytes=scan.intact_bytes,
        tombstoned=tombstoned,
    )


def replay_messages(restored: RestoredSession,
                    have_below: int) -> List[Encoded]:
    """Build the replay stream for a reconnecting client.

    Every journaled outcome with ``frame_index >= have_below`` is
    replayed in index order.  Indices below ``next_frame_index`` that
    are neither journaled nor parked were consumed by ingest
    backpressure before ever reaching the encoder; they are
    synthesised as backpressure drops so the client's
    contiguous-delivery watermark never wedges on a hole.  Parked
    indices are skipped — re-feeding encodes them afresh.
    """
    pending_indices = {index for index, _ in restored.pending}
    out: List[Encoded] = []
    for index in range(max(0, have_below), restored.next_frame_index):
        if index in pending_indices:
            continue
        rec = restored.outputs.get(index)
        if rec is not None:
            out.append(encoded_from_record(rec))
        else:
            out.append(Encoded(frame_index=index, frame_type="",
                               dropped="backpressure"))
    return out


# ----------------------------------------------------------------------
# Journal store (token -> file mapping)
# ----------------------------------------------------------------------
class JournalStore:
    """Directory of session journals, one file per resume token.

    Tokens are minted by the server (``new_token``) from the session
    id plus entropy; they double as capability secrets — knowing the
    token is what authorises a RESUME — so they are unguessable, and
    they are sanitised before ever touching the filesystem.
    """

    def __init__(self, root: Union[str, os.PathLike], fsync: bool = True,
                 fileops: Optional[FileOps] = None,
                 retry: Optional[RetryPolicy] = None,
                 on_retry=None):
        self.root = os.fspath(root)
        self.fsync = fsync
        self._ops = fileops or REAL_FILEOPS
        self._retry = retry
        self._on_retry = on_retry
        os.makedirs(self.root, exist_ok=True)

    def new_token(self, session_id: int, client_id: str = "") -> str:
        prefix = _TOKEN_RE.sub("", client_id)[:16] or "session"
        return f"{prefix}-{session_id}-{os.urandom(6).hex()}"

    def path_for(self, token: str) -> str:
        safe = _TOKEN_RE.sub("", token)
        if not safe or safe != token:
            raise JournalCorruptionError(
                f"malformed resume token {token!r}"
            )
        return os.path.join(self.root, safe + JOURNAL_SUFFIX)

    def exists(self, token: str) -> bool:
        try:
            return os.path.exists(self.path_for(token))
        except JournalCorruptionError:
            return False

    def create(self, token: str) -> SessionJournal:
        """Open a *fresh* journal for a newly admitted session."""
        path = self.path_for(token)
        if os.path.exists(path):
            raise ValueError(f"journal for token {token!r} already exists")
        return SessionJournal(path, fsync=self.fsync, fileops=self._ops,
                              retry=self._retry, on_retry=self._on_retry)

    def reopen(self, token: str, next_seq: int,
               truncate_to: Optional[int] = None) -> SessionJournal:
        """Reopen an existing journal for appending (resume path).

        ``truncate_to`` is the restore's ``intact_bytes``: when a
        mid-append crash left a torn final line, the file is cut back
        to the last intact record *before* the append handle opens —
        otherwise the next record would be welded onto the partial
        line, turning a benign truncation into mid-file corruption
        that makes every later strict restore fail.
        """
        path = self.path_for(token)
        if truncate_to is not None and os.path.getsize(path) > truncate_to:
            self._ops.truncate(path, truncate_to, point="journal.repair")
        return SessionJournal(path, fsync=self.fsync, next_seq=next_seq,
                              fileops=self._ops, retry=self._retry,
                              on_retry=self._on_retry)

    def restore(self, token: str, strict: bool = False) -> RestoredSession:
        return restore_session(self.path_for(token), strict=strict,
                               fileops=self._ops)

    def tokens(self) -> List[str]:
        """Tokens of every journal in the store, sorted."""
        out = []
        for name in os.listdir(self.root):
            if name.endswith(JOURNAL_SUFFIX):
                out.append(name[: -len(JOURNAL_SUFFIX)])
        return sorted(out)

    def discard(self, token: str) -> None:
        """Delete one journal (session completed cleanly)."""
        try:
            self._ops.unlink(self.path_for(token), point="journal.unlink")
        except (FileNotFoundError, JournalCorruptionError):
            pass
