"""Fixed-seed fleet failover drill (``make fleet-chaos``).

Starts a supervised 2-worker fleet over a shared state directory, runs
an uninterrupted reference pass to record each session's output digest,
then repeats the identical workload while SIGKILLing the busiest worker
mid-stream.  The gate fails loudly unless the drill ends clean:

* every session completed — the killed worker's sessions were adopted
  by the survivor (``repro_serving_sessions_adopted_total`` > 0);
* the supervisor reaped the death and restarted the slot with backoff
  (``worker_deaths`` and ``worker_restarts`` both non-zero);
* delivery was bit-identical to the uninterrupted reference run (equal
  per-session CRC digests, zero divergent replays);
* no hard connection refusals — restart-window refusals are retried
  and classified separately (``retryable_restarts``).

Everything derives from one fixed seed, so both passes stream the same
frames and the comparison is exact.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
import tempfile
from typing import Dict, Optional, Tuple

from repro.serving.fleet import FleetConfig, FleetSupervisor, RestartPolicy
from repro.serving.loadgen import LoadGenConfig, LoadReport, run_loadgen_async
from repro.serving.server import ServeNetConfig

SEED = 23
WORKERS = 2
SESSIONS = 4
FRAMES = 24
GOP = 4


def _loadgen_config(port: int) -> LoadGenConfig:
    return LoadGenConfig(
        port=port, sessions=SESSIONS, frames=FRAMES,
        width=64, height=64, gop=GOP, seed=SEED,
        arrival="burst", burst_size=SESSIONS, rate_hz=100.0,
        # Paced frames: the stream is long enough to kill a worker in
        # the middle of it, and the bounded queues never overflow, so
        # zero frames drop and the digest comparison is exact.
        frame_interval_s=0.05,
        max_reconnects=8, backoff_base_s=0.05, timeout_s=120.0,
    )


async def _run_pass(
    journal_dir: str, kill: bool
) -> Tuple[LoadReport, Dict[str, float], bool]:
    """One fleet pass; returns (report, fleet counters, restarted)."""
    config = FleetConfig(
        workers=WORKERS,
        heartbeat_s=0.15,
        restart=RestartPolicy(backoff_base_s=0.2),
        server=ServeNetConfig(
            gop=GOP, seed=SEED, journal_dir=journal_dir,
            journal_fsync=False,
        ),
    )
    supervisor = FleetSupervisor(config)
    await supervisor.start()
    restarted = False
    try:
        await supervisor.wait_ready(30.0)
        task = asyncio.ensure_future(run_loadgen_async(
            _loadgen_config(supervisor.port)
        ))
        victim: Optional[str] = None
        if kill:
            victim = await _kill_busiest_worker(supervisor)
        report = await task
        if kill and victim is not None:
            restarted = await _wait_restarted(supervisor, victim, 20.0)
        counters = _fleet_counters(supervisor.metrics_snapshot())
    finally:
        await supervisor.drain()
    return report, counters, restarted


async def _kill_busiest_worker(supervisor: FleetSupervisor) -> Optional[str]:
    """SIGKILL the worker carrying the most sessions, mid-stream."""
    deadline = asyncio.get_running_loop().time() + 15.0
    while asyncio.get_running_loop().time() < deadline:
        loads = [
            (load.active_sessions, worker_id)
            for worker_id, load in supervisor.fleet_admission.workers.items()
            if load.alive and load.active_sessions > 0
        ]
        # Best-fit placement packs sessions onto as few workers as
        # possible, so "busiest worker streaming" is the mid-stream
        # signal — the survivor may start the drill idle and inherit
        # everything through adoption.
        if loads:
            _, victim = max(loads)
            handle = supervisor.handle(victim)
            if handle is not None and handle.pid is not None:
                print(f"killing worker {handle.owner} "
                      f"(sessions per worker: {sorted(loads)})", flush=True)
                os.kill(handle.pid, signal.SIGKILL)
                return victim
        await asyncio.sleep(0.05)
    return None


async def _wait_restarted(
    supervisor: FleetSupervisor, worker_id: str, timeout_s: float
) -> bool:
    deadline = asyncio.get_running_loop().time() + timeout_s
    while asyncio.get_running_loop().time() < deadline:
        handle = supervisor.handle(worker_id)
        if handle is not None and handle.routable():
            return True
        await asyncio.sleep(0.1)
    return False


def _fleet_counters(snapshot: dict) -> Dict[str, float]:
    wanted = {
        "repro_serving_sessions_adopted_total": "adopted",
        "repro_serving_worker_deaths_total": "deaths",
        "repro_serving_worker_restarts_total": "restarts",
        "repro_serving_lease_conflicts_total": "lease_conflicts",
    }
    out = {name: 0.0 for name in wanted.values()}
    for fam in snapshot.get("metrics", []):
        key = wanted.get(fam["name"])
        if key is not None:
            out[key] = sum(s["value"] for s in fam["samples"])
    return out


def _digests(report: LoadReport) -> Dict[int, Optional[int]]:
    return {s.session: s.output_digest for s in report.sessions}


async def _run() -> int:
    with tempfile.TemporaryDirectory() as ref_dir:
        print("reference pass (uninterrupted)", flush=True)
        reference, _, _ = await _run_pass(ref_dir, kill=False)
    print(reference.summary())
    with tempfile.TemporaryDirectory() as drill_dir:
        print("drill pass (SIGKILL one worker mid-stream)", flush=True)
        drilled, counters, restarted = await _run_pass(drill_dir, kill=True)
    print(drilled.summary())
    print("fleet counters: "
          + ", ".join(f"{k}={v:g}" for k, v in sorted(counters.items())))

    failures = []
    for name, report in (("reference", reference), ("drill", drilled)):
        if report.accepted != SESSIONS:
            failures.append(f"{name}: accepted {report.accepted}/{SESSIONS}")
        if report.errored:
            failures.append(f"{name}: {report.errored} session error(s)")
        if report.protocol_errors:
            failures.append(
                f"{name}: {report.protocol_errors} protocol error(s)"
            )
        dropped = sum(s.frames_dropped for s in report.sessions)
        if dropped:
            failures.append(
                f"{name}: {dropped} dropped frame(s) — "
                "digest comparison void"
            )
        if report.divergent_replays:
            failures.append(
                f"{name}: {report.divergent_replays} divergent replay(s)"
            )
    if drilled.connect_refusals:
        failures.append(
            f"drill: {drilled.connect_refusals} hard connection refusal(s)"
        )
    if drilled.resumes == 0:
        failures.append("drill: the killed worker's sessions never resumed")
    if counters["adopted"] == 0:
        failures.append("drill: no session was adopted by a survivor")
    if counters["deaths"] == 0:
        failures.append("drill: the supervisor never reaped the kill")
    if counters["restarts"] == 0:
        failures.append("drill: the dead worker slot was never restarted")
    if not restarted:
        failures.append("drill: the restarted worker never became routable")
    ref_digests, drill_digests = _digests(reference), _digests(drilled)
    mismatched = [
        session for session in sorted(ref_digests)
        if ref_digests[session] != drill_digests.get(session)
    ]
    if mismatched:
        failures.append(
            "drill: output diverged from the uninterrupted reference for "
            f"session(s) {mismatched}"
        )
    if failures:
        print("fleet drill FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(f"fleet drill OK: {SESSIONS} sessions bit-identical, "
          f"{counters['adopted']:g} adopted, worker restarted")
    return 0


def main() -> int:
    return asyncio.run(_run())


if __name__ == "__main__":
    raise SystemExit(main())
