"""Asyncio streaming front-end for the transcoding pipeline.

One TCP connection is one session: HELLO -> admission decision ->
frame ingest -> encoded-bitstream egress -> STATS/BYE.  Per session
the server runs three tasks:

* **ingest** reads FRAME messages off the socket and feeds a *bounded*
  queue; when the client outruns the encoder and the queue is full,
  the incoming frame is dropped (an ENCODED notice with
  ``dropped="backpressure"`` tells the client) instead of growing RAM;
* **encode** pulls frames in order and pushes them through a
  :class:`repro.transcode.pipeline.ProposedStreamSession` on a
  dedicated executor thread, so the event loop never blocks on CPU
  work (with ``parallel_workers`` set, the tile process pool of
  :mod:`repro.parallel.executor` carries the heavy per-tile encode out
  of the GIL entirely);
* **egress** writes ENCODED messages from a second bounded queue; a
  slow reader causes the *oldest* undelivered frame to be coalesced
  away (newest results win — a viewer wants the current frame, not a
  backlog).

Admission (:mod:`repro.serving.admission`) prices each HELLO with the
shared workload-LUT estimator and admits against Algorithm 2's slot
capacity; parked sessions wait bounded time for capacity to free.  All
sessions share one estimator, so the LUT a session warms speeds up
admission pricing and allocation for every later user of the same
content class — the paper's cross-user reuse, now end to end.

Every admission decision, queue depth, drop and end-to-end frame
latency lands in :mod:`repro.observability`.

**Fault tolerance** (DESIGN.md §11).  With ``journal_dir`` set, every
session writes a checksummed journal (:mod:`repro.serving.recovery`)
fsync'd at GOP granularity: admission state, cross-GOP pipeline
snapshots and the encoded outcomes themselves.  A client that loses
its connection reattaches with RESUME and continues *bit-identically* —
the journal restores the encoder to the last GOP boundary and replays
any outcomes the old connection never delivered.  ``watchdog_multiple``
arms an encode watchdog: a push that exceeds the deadline multiple is
abandoned (the executor is replaced), the stream is rebuilt from the
in-memory GOP-boundary snapshot, the wedged frame is dropped as
``"watchdog"``, the degradation ladder climbs one rung, and the
allocator re-packs around the presumed-sick core.  :meth:`drain`
(SIGTERM) stops admissions, finishes or parks in-flight GOPs,
checkpoints the LUT and exits cleanly; parked sessions survive a full
server restart.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codec.config import EncoderConfig, GopConfig
from repro.observability import get_registry, get_tracer
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.platform.power import PowerModel
from repro.policy.compiler import CompiledPolicy
from repro.policy.energy import EnergyBudgetScheduler
from repro.policy.manager import PolicyManager
from repro.resilience.errors import (
    CorruptFrameError,
    JournalCorruptionError,
    LeaseHeldError,
)
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.resilience.degradation import ResilienceConfig
# Submodule imports (not the repro.ladder package) keep the
# ladder <-> serving import cycle unwound: repro.ladder.segments
# imports repro.serving.protocol, which initializes this package.
from repro.ladder.config import LadderConfig, LadderRung
from repro.ladder.session import LadderSession
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.serving.protocol import (
    MAX_PAYLOAD,
    Bye,
    Encoded,
    ErrorMsg,
    FrameMsg,
    Hello,
    HelloAck,
    Message,
    ProtocolError,
    Resume,
    ResumeAck,
    Stats,
    encode_encoded_into,
    read_message,
    write_message,
)
from repro.serving.recovery import (
    RestoredSession,
    SessionJournal,
    frame_output_record,
    pack_plane,
    replay_messages,
)
from repro.serving.statestore import SharedDirStateStore
from repro.storage import FileOps, RetryPolicy, StorageError
from repro.storage.brownout import DurabilityMonitor
from repro.transcode.pipeline import (
    FrameOutput,
    PipelineConfig,
    StreamTranscoder,
)
from repro.video.frame import Frame
from repro.video.generator import ContentClass
from repro.workload.estimator import WorkloadEstimator

__all__ = ["NetworkServer", "ServeNetConfig", "SessionStats"]


@dataclass(frozen=True)
class ServeNetConfig:
    """Configuration of the network server."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral
    fps: float = 24.0
    gop: int = 8
    #: Seed for every stochastic serving component (currently the
    #: optional CPU-time fault injection below).
    seed: int = 0
    #: Bound of the per-session ingest queue (frames awaiting encode).
    queue_frames: int = 16
    #: Bound of the per-session egress queue (encoded frames awaiting
    #: a slow reader).
    egress_frames: int = 32
    #: How long a parked session waits for capacity before rejection.
    park_timeout_s: float = 2.0
    #: Handshake timeout (connection to first HELLO).
    hello_timeout_s: float = 10.0
    max_frame_width: int = 4096
    max_frame_height: int = 4096
    #: Tile pool per session (``None`` = serial encode).
    parallel_workers: Optional[int] = None
    #: Tile pool backend.  Serving defaults to ``"thread"``: session
    #: frames are zero-copy views of socket buffers, which threads can
    #: share directly (a fork/pickle pool would copy them right back),
    #: and the native kernels release the GIL for the hot loops.
    parallel_backend: str = "thread"
    #: Size of the shared encode thread pool (one GOP flush runs per
    #: thread; per-session pushes stay strictly ordered regardless).
    #: ``None`` derives the size from the Algorithm-2 core grant: the
    #: admission controller's core capacity, bounded by the host's
    #: cores — on a single-core host this collapses to the classic
    #: single encode thread.
    encode_workers: Optional[int] = None
    #: Per-stream resilience (degradation ladder, corrupt-frame drops).
    resilience: Optional[ResilienceConfig] = field(
        default_factory=ResilienceConfig
    )
    #: Seeded CPU-time spike injection (0 disables); reproducible from
    #: ``seed``.
    fault_spike_rate: float = 0.0
    fault_spike_factor: float = 8.0
    admission: AdmissionPolicy = AdmissionPolicy()
    platform: MpsocConfig = XEON_E5_2667
    #: Directory of per-session journals (``None`` disables journaled
    #: resume, graceful parking and the warm LUT checkpoint).
    journal_dir: Optional[str] = None
    #: fsync each journal append (off only for benchmarks that want to
    #: isolate the serialization cost from the disk).
    journal_fsync: bool = True
    #: Encode watchdog: a single ``push`` call (at most one GOP encode)
    #: exceeding ``watchdog_multiple`` x GOP x ``1/FPS`` wall seconds is
    #: declared wedged and cancelled (0 disables).
    watchdog_multiple: float = 0.0
    #: Floor of the watchdog timeout, so high-FPS streams on slow CI
    #: machines are not watchdogged spuriously.
    watchdog_min_s: float = 0.25
    #: How long :meth:`NetworkServer.drain` waits for in-flight
    #: sessions to finish or park before closing anyway.
    drain_grace_s: float = 10.0
    #: Fleet worker identity, recorded in lease records and journal
    #: admit/resume records (``""`` = standalone single-server mode).
    worker_id: str = ""
    #: Bind with ``SO_REUSEPORT`` so N workers share one listen port
    #: (the fleet's kernel-balanced accept group).
    reuse_port: bool = False
    #: Single-owner session leases (:mod:`repro.serving.statestore`):
    #: required for multi-worker deployments sharing one journal dir;
    #: harmless (one file create/unlink per session) standalone.  Off
    #: only for the lease-overhead benchmark's baseline arm.
    lease: bool = True
    #: RESUME retry hint sent when a session's lease is held by a
    #: worker not yet confirmed dead (transient reject).
    lease_retry_s: float = 0.5
    #: Wall-clock floor per encoder push, modelling a heavier codec
    #: tier: the encode thread sleeps up to the floor after the real
    #: push.  This is what the fleet scaling bench uses to measure the
    #: architecture's session-concurrency ceiling (one encode thread
    #: per worker process) independently of this machine's core count.
    encode_floor_s: float = 0.0
    #: Tenant policy document (``None`` = pre-policy behaviour: no
    #: tenants, no energy budget, bit-identical to a policy-less build).
    policy_file: Optional[str] = None
    #: Seconds between policy-file mtime polls for hot reload (0
    #: disables reload; the startup load still happens).
    policy_reload_s: float = 0.0
    #: Injectable filesystem seam for every durable write (journals,
    #: leases, LUT checkpoints, policy reads).  ``None`` = the real
    #: filesystem; tests and the torture harness pass a
    #: :class:`repro.storage.faultfs.FaultFS`.
    fileops: Optional[FileOps] = None
    #: Bounded retry for *transient* journal-append faults (total
    #: tries; 1 disables retry) and the backoff base of the schedule.
    journal_retry_attempts: int = 3
    journal_retry_backoff_s: float = 0.005
    #: Consecutive successful durability probes required to leave
    #: brownout (hysteresis: one lucky write must not re-enable
    #: journaling on a flapping volume).
    durability_readmit_successes: int = 3
    #: Seconds between durability probes while browned out.
    durability_probe_s: float = 0.25


@dataclass
class SessionStats:
    """Per-session counters, summarized into the STATS message."""

    session_id: int
    frames_received: int = 0
    frames_encoded: int = 0
    dropped_backpressure: int = 0
    dropped_egress: int = 0
    dropped_corrupt: int = 0
    dropped_deadline: int = 0
    dropped_watchdog: int = 0
    dropped_policy: int = 0
    deadline_misses: int = 0
    total_bits: int = 0
    psnr_sum: float = 0.0
    peak_ingest_depth: int = 0
    peak_egress_depth: int = 0
    latencies_s: List[float] = field(default_factory=list)
    #: Recovery counters: how many times this session has reattached,
    #: how many journaled outcomes the last resume replayed, and how
    #: often the encode watchdog fired on it.
    resumes: int = 0
    replayed: int = 0
    watchdog_fires: int = 0
    parked: bool = False

    def to_dict(self, queue_frames: int) -> Dict[str, object]:
        dropped = {
            "backpressure": self.dropped_backpressure,
            "egress": self.dropped_egress,
            "corrupt": self.dropped_corrupt,
            "deadline": self.dropped_deadline,
            "watchdog": self.dropped_watchdog,
        }
        if self.dropped_policy:
            # Only present when a policy actually dropped frames, so a
            # no-policy run's STATS payload is byte-identical to the
            # pre-policy wire form.
            dropped["policy"] = self.dropped_policy
        return {
            "session_id": self.session_id,
            "frames_received": self.frames_received,
            "frames_encoded": self.frames_encoded,
            "frames_dropped": dropped,
            "recovery": {
                "resumes": self.resumes,
                "replayed": self.replayed,
                "watchdog_fires": self.watchdog_fires,
                "parked": self.parked,
            },
            "deadline_misses": self.deadline_misses,
            "total_bits": self.total_bits,
            "psnr_avg": (
                self.psnr_sum / self.frames_encoded
                if self.frames_encoded else None
            ),
            "peak_ingest_depth": self.peak_ingest_depth,
            "peak_egress_depth": self.peak_egress_depth,
            "queue_frames": queue_frames,
        }


_BYE_SENTINEL = object()
_DRAIN_SENTINEL = object()


class _EncodedOut:
    """Egress-queue stand-in for a successful ENCODED frame.

    Carries the reconstruction plane *by reference*; the egress loop
    serializes it straight into the session's reusable wire arena
    (:func:`encode_encoded_into`), so the plane's pixels are copied
    exactly once — into the socket — instead of ``tobytes()`` +
    payload concat + header concat.  Drops and control messages keep
    using the regular dataclasses (their payloads are tiny).
    """

    __slots__ = ("frame_index", "frame_type", "width", "height",
                 "bits", "psnr", "recon", "rung")

    def __init__(self, frame_index: int, frame_type: str, width: int,
                 height: int, bits: int, psnr: float, recon: np.ndarray,
                 rung: int = 0):
        self.frame_index = frame_index
        self.frame_type = frame_type
        self.width = width
        self.height = height
        self.bits = bits
        self.psnr = psnr
        self.recon = recon
        self.rung = rung


class _Session:
    """Mutable state of one accepted client session.

    ``restored`` rebuilds the session from its journal: the pipeline is
    restored to the last GOP-boundary snapshot, parked in-flight frames
    are staged in ``prefeed`` for the encode loop to re-push, and the
    encoder configuration (``qp``/``window``) comes from the journaled
    admit record rather than the *current* overload ladder — the same
    config the original admission chose is what bit-identity requires.
    """

    def __init__(self, session_id: int, hello: Hello,
                 server: "NetworkServer", resume_token: str = "",
                 journal: Optional[SessionJournal] = None,
                 restored: Optional[RestoredSession] = None,
                 rungs: Tuple[Tuple[int, int], ...] = ()):
        cfg = server.config
        self.session_id = session_id
        self.hello = hello
        self.stats = SessionStats(session_id=session_id)
        self.ingest: asyncio.Queue = asyncio.Queue(maxsize=cfg.queue_frames)
        self.egress: asyncio.Queue = asyncio.Queue(maxsize=cfg.egress_frames)
        self.arrival_s: Dict[int, float] = {}
        self.next_index = 0
        content = None
        if hello.content_class:
            try:
                content = ContentClass(hello.content_class)
            except ValueError:
                content = None
        #: Resolved policy tenant this session bills to ("" = no policy).
        self.tenant = server.resolve_tenant(hello)
        if restored is not None:
            qp = int(restored.admit["qp"])
            window = int(restored.admit["window"])
        else:
            qp, window = server.admission.lighten(
                32, 64, tenant=hello.tenant
            )
        self.qp = qp
        self.window = window
        pipeline = PipelineConfig(
            fps=hello.fps if hello.fps > 0 else cfg.fps,
            gop=GopConfig(max(1, hello.gop)),
            base_config=EncoderConfig(qp=qp, search="hexagon",
                                      search_window=window),
            content_class=content,
            resilience=server.resilience_for(hello),
            platform=cfg.platform,
            parallel_tiles=cfg.parallel_workers is not None,
            parallel_workers=cfg.parallel_workers or None,
            parallel_backend=cfg.parallel_backend,
        )
        injector = None
        if cfg.fault_spike_rate > 0:
            injector = FaultInjector(FaultConfig(
                seed=cfg.seed + session_id,
                time_spike_rate=cfg.fault_spike_rate,
                time_spike_factor=cfg.fault_spike_factor,
            ))
        #: Rendition-ladder mode (``rungs`` non-empty): one shared
        #: analysis pass feeds per-rung pipeline sessions; outputs are
        #: rung-tagged on the wire.  The rung set is the *admitted*
        #: ladder (a prefix of the HELLO's request), so the planner's
        #: own content pruning is disabled — the client receives
        #: exactly the rungs the HELLO_ACK promised.  Ladder sessions
        #: are not journaled and run without the encode watchdog (no
        #: cross-rung snapshot exists yet); see DESIGN.md §14.
        self.ladder: Optional[LadderSession] = None
        self.transcoder: Optional[StreamTranscoder] = None
        self.stream = None
        if rungs:
            self.ladder = LadderSession(
                base_config=pipeline,
                ladder=LadderConfig(
                    rungs=tuple(LadderRung(w, h) for w, h in rungs),
                    prune=False,
                ),
                estimator=server.estimator,
            )
        else:
            self.transcoder = StreamTranscoder(
                pipeline, estimator=server.estimator,
                fault_injector=injector,
            )
            self.stream = self.transcoder.open_session()
        self.slot_s = 1.0 / pipeline.fps
        self.gop_size = max(1, hello.gop)
        # -- recovery state --------------------------------------------
        self.resume_token = resume_token
        self.journal = journal
        #: Bumped by the watchdog; cooperative cancellation hook for
        #: anything (tests, instrumented encoders) polling it.
        self.epoch = 0
        #: Raw frames pushed since the last GOP boundary — the watchdog
        #: rebuild and the drain park record re-feed from here.
        self.replay_frames: List[Frame] = []
        #: In-memory copy of the last GOP-boundary snapshot.
        self.last_state: Optional[Dict[str, object]] = None
        #: Outcomes egressed outside the GOP flush (watchdog drops),
        #: awaiting durability in the next ``gop``/``park`` record so a
        #: resume replays them with their original classification.
        self.pending_drops: List[Dict[str, object]] = []
        #: Parked frames a resume must re-push before reading the wire.
        self.prefeed: List[Frame] = []
        #: Ordered hand-off from the encode loop to the emit loop:
        #: ``(append_future_or_None, outputs)`` pairs.  Bounded so the
        #: encoder stays at most a few GOPs ahead of durable emission
        #: (deep enough to ride out an occasional slow fsync).
        self.emit_queue: asyncio.Queue = asyncio.Queue(maxsize=4)
        #: Reusable egress serialization buffer (one wire frame at a
        #: time; the selector transport either sends synchronously or
        #: copies the unsent remainder, so reuse after write is safe).
        self.wire_arena = bytearray()
        self.completed = False
        if restored is not None:
            if restored.state is not None:
                self.stream.import_state(restored.state)
                self.last_state = restored.state
            self.next_index = restored.next_frame_index
            self.prefeed = [
                Frame(plane, index=index)
                for index, plane in restored.pending
            ]

    # -- uniform encode surface (plain stream or ladder) ---------------
    def encode_push(self, frame: Frame) -> List[FrameOutput]:
        if self.ladder is not None:
            return self.ladder.push(frame)
        return self.stream.push(frame)

    def encode_finish(self) -> List[FrameOutput]:
        if self.ladder is not None:
            return self.ladder.finish()
        return self.stream.finish()

    def close_encoder(self) -> None:
        if self.ladder is not None:
            self.ladder.close()
        else:
            self.transcoder.close()


class NetworkServer:
    """The asyncio serving front-end."""

    def __init__(
        self,
        config: ServeNetConfig = ServeNetConfig(),
        estimator: Optional[WorkloadEstimator] = None,
        admission: Optional[AdmissionController] = None,
    ):
        self.config = config
        self.estimator = estimator or WorkloadEstimator(
            quantile=config.admission.quantile
        )
        self._owner = f"{config.worker_id or 'solo'}:{os.getpid()}"
        self._journal_store: Optional[SharedDirStateStore] = None
        #: Durability health latch (DESIGN.md §16): ``healthy`` gates
        #: journaling for new admits; the probe loop readmits it
        #: hysteretically after a brownout.
        self._durability = DurabilityMonitor(
            readmit_successes=config.durability_readmit_successes
        )
        self._durability_task: Optional[asyncio.Task] = None
        #: Resume tokens invalidated by a durability brownout.  The
        #: in-memory set is authoritative for this process; the
        #: journaled tombstone record is best-effort (the disk was
        #: failing when it was written).
        self._tombstoned: set = set()
        if config.journal_dir is not None:
            self._journal_store = SharedDirStateStore(
                config.journal_dir, fsync=config.journal_fsync,
                owner=self._owner, lease=config.lease,
                fileops=config.fileops,
                retry=RetryPolicy(
                    attempts=max(1, config.journal_retry_attempts),
                    backoff_s=config.journal_retry_backoff_s,
                ),
                on_retry=self._on_journal_retry,
            )
            # Warm-start the shared LUT from the drain checkpoint, if
            # an intact one survived the previous run.
            loaded = self._journal_store.load_lut()
            if loaded.recovered:
                self.estimator.lut = loaded.lut
        self.admission = admission or AdmissionController(
            estimator=self.estimator,
            platform=config.platform,
            policy=config.admission,
        )
        #: Tenant policy plumbing (all ``None`` without --policy; every
        #: policy hook below degrades to a single branch).
        self.policy_manager: Optional[PolicyManager] = None
        self.energy: Optional[EnergyBudgetScheduler] = None
        self._power_model: Optional[PowerModel] = None
        if config.policy_file is not None:
            # A broken policy file refuses to start the server (the
            # manager's initial load is strict); hot-reload failures
            # later keep the active policy and count an error.
            self.policy_manager = PolicyManager(config.policy_file,
                                                fileops=config.fileops)
            self._apply_policy(self.policy_manager.active)
            self.policy_manager.on_apply(
                lambda policy, plan, rev: self._apply_policy(policy)
            )
        self._policy_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.base_events.Server] = None
        # The encode pool: CPU work leaves the event loop here.  Each
        # session awaits every push before issuing the next, so one
        # session never runs on two threads at once; cross-session
        # parallelism is bounded by the Algorithm-2 core grant (the
        # shared estimator serializes its own LUT updates).
        self._encode_pool = self._new_encode_pool()
        # Journal writes (plane packing, checksumming, fsync) get their
        # own single writer thread so durability work overlaps with the
        # encode thread instead of stealing its time.  Egress for a GOP
        # still *awaits* the append, preserving journal-before-egress;
        # per-journal ordering holds because each session awaits its
        # append before issuing the next.  The watchdog only swaps the
        # encode pool, so pending appends survive a wedged encode.
        self._journal_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-journal"
        )
        self._capacity_freed = asyncio.Event()
        self._next_session_id = 0
        self._active_handlers = 0
        self._draining = False
        self._drain_event = asyncio.Event()
        # resume_token -> the connection-handler task currently serving
        # that journal.  A RESUME for an attached token preempts the
        # old handler (half-open TCP: the client is gone but the server
        # side has not noticed) so two sessions never append to one
        # journal concurrently.
        self._attached: Dict[str, asyncio.Task] = {}
        # Per-message allocation bound for reads: sized to the largest
        # FRAME the configured geometry ceiling permits (plus framing
        # slack), never beyond the wire-format ceiling — a client
        # cannot make the server commit to a 32 MiB buffer by inflating
        # the declared length.
        self._recv_max_payload = min(
            MAX_PAYLOAD,
            max(65536,
                config.max_frame_width * config.max_frame_height + 1024),
        )

    # -- tenant policy -------------------------------------------------
    def _apply_policy(self, policy: CompiledPolicy) -> None:
        """Make a compiled policy live: fresh energy scheduler (the
        ledger restarts — an edited cap judges only post-edit draw) and
        a re-wired admission controller on the clamped platform."""
        self.energy = EnergyBudgetScheduler(policy)
        self._power_model = PowerModel()
        self.admission.set_policy(policy, self.energy)

    @property
    def compiled_policy(self) -> Optional[CompiledPolicy]:
        return self.policy_manager.active if self.policy_manager else None

    def resolve_tenant(self, hello: Hello) -> str:
        policy = self.compiled_policy
        if policy is None:
            return ""
        return policy.resolve_name(hello.tenant)

    def resilience_for(self, hello: Hello) -> Optional[ResilienceConfig]:
        """Per-stream resilience bounded by the tenant's QoS floor."""
        policy = self.compiled_policy
        if policy is None:
            return self.config.resilience
        return policy.resilience_for(hello.tenant, self.config.resilience)

    async def _policy_loop(self) -> None:
        """Housekeeping tick: energy-budget checks plus (optionally)
        policy-file hot reload."""
        cfg = self.config
        loop = asyncio.get_running_loop()
        interval = 0.05
        if self.energy is not None:
            interval = max(
                0.05, min(1.0, self.energy.policy.energy_window_s / 4)
            )
        next_reload = (loop.time() + cfg.policy_reload_s
                       if cfg.policy_reload_s > 0 else None)
        while True:
            await asyncio.sleep(interval)
            if self.energy is not None:
                events = self.energy.check(loop.time())
                if any(e.kind in ("readmit", "unthrottle")
                       for e in events):
                    # Readmission frees admission headroom for tenants
                    # parked behind the brownout gate.
                    self._capacity_freed.set()
            if (next_reload is not None and loop.time() >= next_reload
                    and self.policy_manager is not None):
                next_reload = loop.time() + cfg.policy_reload_s
                self.policy_manager.maybe_reload()

    # -- durability brownout (DESIGN.md §16) ---------------------------
    def _on_journal_retry(self, exc: StorageError) -> None:
        """Metrics hook for transient journal-append retries.  Runs on
        the journal writer thread; the registry lock makes it safe."""
        get_registry().inc(
            "repro_serving_journal_retries_total",
            help="Transient journal-write faults retried",
        )

    def _note_durability_failure(self, error: BaseException) -> None:
        """Record a durable-write failure; on the healthy->browned
        transition, count the episode and start the readmission probe.
        """
        if not self._durability.record_failure(error):
            return
        registry = get_registry()
        registry.inc(
            "repro_serving_durability_brownouts_total",
            help="Durability brownout episodes (journaling disabled)",
        )
        registry.set_gauge(
            "repro_serving_durability",
            0, help="1 while journal storage is healthy, 0 in brownout",
        )
        get_tracer().event(
            "serving.durability_brownout", error=str(error),
            point=getattr(error, "point", ""),
        )
        self._ensure_durability_probe()

    def _ensure_durability_probe(self) -> None:
        if self._durability_task is None or self._durability_task.done():
            self._durability_task = asyncio.ensure_future(
                self._durability_loop()
            )

    async def _durability_loop(self) -> None:
        """Probe the journal volume while browned out; readmit
        journaling after ``durability_readmit_successes`` consecutive
        clean probes (hysteresis against a flapping disk)."""
        registry = get_registry()
        loop = asyncio.get_running_loop()
        store = self._journal_store
        while store is not None and not self._durability.healthy:
            await asyncio.sleep(self.config.durability_probe_s)
            try:
                # The probe shares the journal writer thread, so a
                # stalled volume delays probes instead of piling them.
                await loop.run_in_executor(
                    self._journal_pool, store.probe_durability
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self._durability.record_failure(exc)
                continue
            if self._durability.record_success():
                registry.inc(
                    "repro_serving_durability_readmits_total",
                    help="Brownout episodes ended by clean probes",
                )
                registry.set_gauge(
                    "repro_serving_durability",
                    1,
                    help="1 while journal storage is healthy, "
                         "0 in brownout",
                )
                get_tracer().event("serving.durability_readmit")

    async def _durability_brownout(self, session: "_Session",
                                   error: BaseException) -> None:
        """A durable write for ``session`` failed beyond retry: keep
        the session alive but stop journaling it.

        The resume token is invalidated (in memory, authoritatively;
        on disk via a best-effort tombstone record — the disk was
        failing, so the append may not land) and the journal handle is
        closed on the writer thread, *behind* any appends the session
        already queued.  The connection itself never notices: frames
        keep flowing, only crash-resumability is lost.
        """
        token = session.resume_token
        journal, session.journal = session.journal, None
        session.resume_token = ""
        if token:
            self._tombstoned.add(token)
            self._attached.pop(token, None)
        if journal is not None:
            def tombstone() -> None:
                try:
                    journal.append("tombstone", {
                        "token": token, "reason": str(error),
                        "owner": self._owner,
                    })
                except Exception:
                    pass  # best effort by design
                finally:
                    try:
                        journal.close()
                    except Exception:
                        pass
            try:
                await asyncio.get_running_loop().run_in_executor(
                    self._journal_pool, tombstone
                )
            except RuntimeError:
                # The writer pool itself is gone (thread death /
                # shutdown) — the very fault being handled.  Close the
                # handle inline; the tombstone stays memory-only.
                try:
                    journal.close()
                except Exception:
                    pass
        if token and self._journal_store is not None:
            try:
                self._journal_store.release(token)
            except (StorageError, OSError):
                pass
        self._note_durability_failure(error)

    def _encode_pool_size(self) -> int:
        """Encode threads granted to this server.

        Explicit ``encode_workers`` wins; otherwise the grant is the
        admission controller's core capacity (the Algorithm-2 budget
        sessions are packed into) clamped to the physical host.
        """
        if self.config.encode_workers is not None:
            return max(1, int(self.config.encode_workers))
        grant = max(1, int(self.admission.capacity_cores))
        return min(grant, os.cpu_count() or 1)

    def _new_encode_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self._encode_pool_size(),
            thread_name_prefix="repro-encode",
        )

    @property
    def parked_tokens(self) -> List[str]:
        """Resume tokens with a journal on disk (including sessions
        parked by a previous run's drain)."""
        if self._journal_store is None:
            return []
        return self._journal_store.tokens()

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def owner(self) -> str:
        """Lease-owner identity of this server (``worker:pid``)."""
        return self._owner

    def load_snapshot(self) -> Dict[str, float]:
        """Point-in-time load for the fleet's utilization gossip."""
        snapshot = {
            "active_sessions": float(self.admission.active_sessions),
            "occupancy_cores": float(self.admission.occupancy_cores),
            "capacity_cores": float(self.admission.capacity_cores),
            "active_handlers": float(self._active_handlers),
            "draining": 1.0 if self._draining else 0.0,
        }
        if self.compiled_policy is not None:
            for name, cores in self.admission.tenant_occupancies().items():
                snapshot[f"tenant_cores.{name}"] = cores
        return snapshot

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port,
            reuse_port=self.config.reuse_port or None,
        )
        if self.policy_manager is not None and self._policy_task is None:
            self._policy_task = asyncio.ensure_future(self._policy_loop())
        get_registry().set_gauge(
            "repro_serving_listening", 1, help="1 while the server accepts",
        )
        if self._journal_store is not None:
            get_registry().set_gauge(
                "repro_serving_durability",
                1 if self._durability.healthy else 0,
                help="1 while journal storage is healthy, 0 in brownout",
            )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._policy_task is not None:
            self._policy_task.cancel()
            await asyncio.gather(self._policy_task, return_exceptions=True)
            self._policy_task = None
        if self._durability_task is not None:
            self._durability_task.cancel()
            await asyncio.gather(self._durability_task,
                                 return_exceptions=True)
            self._durability_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._encode_pool.shutdown(wait=True)
        self._journal_pool.shutdown(wait=True)
        get_registry().set_gauge(
            "repro_serving_listening", 0, help="1 while the server accepts",
        )

    async def drain(self) -> None:
        """Graceful shutdown (the SIGTERM path).

        Stops accepting connections and admissions, signals every
        in-flight session to finish (journal-less) or park (journaled —
        the in-flight GOP's raw frames land in the journal so a
        restarted server can resume the session bit-identically), waits
        up to ``drain_grace_s`` for sessions to flush their STATS/BYE,
        checkpoints the shared LUT next to the journals, and closes.
        Idempotent; concurrent callers share one drain.
        """
        if self._draining:
            return
        self._draining = True
        registry = get_registry()
        registry.inc("repro_serving_drains_total",
                     help="Graceful drains initiated")
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
        self._drain_event.set()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_grace_s
        while self._active_handlers > 0 and loop.time() < deadline:
            await asyncio.sleep(0.02)
        if self._journal_store is not None:
            try:
                self._journal_store.save_lut(self.estimator.lut)
            except (StorageError, OSError) as exc:
                # The LUT is an accuracy warm-start, never correctness:
                # a failed checkpoint must not block the drain.
                get_tracer().event("serving.lut_checkpoint_failed",
                                   error=str(exc))
        await self.aclose()

    # -- connection handling -------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        registry = get_registry()
        self._active_handlers += 1
        registry.set_gauge(
            "repro_serving_active_connections", self._active_handlers,
            help="Open client connections",
        )
        try:
            await self._run_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            registry.inc("repro_serving_connection_resets_total",
                         help="Connections lost mid-session")
        except ProtocolError as exc:
            registry.inc("repro_serving_protocol_errors_total",
                         help="Wire-protocol violations")
            await self._try_send(writer, ErrorMsg("protocol", str(exc)))
        finally:
            self._active_handlers -= 1
            registry.set_gauge(
                "repro_serving_active_connections", self._active_handlers,
                help="Open client connections",
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _try_send(self, writer: asyncio.StreamWriter,
                        msg: Message) -> None:
        try:
            await write_message(writer, msg)
        except (ConnectionError, OSError):
            pass

    async def _run_connection(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        cfg = self.config
        registry = get_registry()
        msg = await asyncio.wait_for(
            read_message(reader, max_payload=self._recv_max_payload),
            timeout=cfg.hello_timeout_s,
        )
        if isinstance(msg, Resume):
            await self._resume_connection(msg, reader, writer)
            return
        if not isinstance(msg, Hello):
            raise ProtocolError(
                f"expected HELLO or RESUME, got {msg.type.name}"
            )
        hello = msg
        if not (0 < hello.width <= cfg.max_frame_width
                and 0 < hello.height <= cfg.max_frame_height):
            await write_message(writer, HelloAck(
                decision="reject", reason=(
                    f"geometry {hello.width}x{hello.height} outside "
                    f"1..{cfg.max_frame_width} x 1..{cfg.max_frame_height}"
                ),
            ))
            return
        session_id = self._next_session_id
        self._next_session_id += 1
        if hello.ladder is not None:
            await self._run_ladder_connection(
                session_id, hello, reader, writer
            )
            return
        decision, reason = self.admission.decide(session_id, hello)
        if decision is AdmissionDecision.PARK:
            await write_message(writer, HelloAck(
                decision="park", session_id=session_id, reason=reason,
            ))
            decision, reason = await self._wait_parked(session_id, hello)
        if decision is not AdmissionDecision.ACCEPT:
            await write_message(writer, HelloAck(
                decision="reject", session_id=session_id, reason=reason,
            ))
            return
        resume_token = ""
        journal: Optional[SessionJournal] = None
        # Brownout gate: while the journal volume is failing, new
        # sessions are admitted journal-less (degrade, never crash);
        # the probe loop re-enables journaling hysteretically.
        if self._journal_store is not None and self._durability.healthy:
            try:
                resume_token = self._journal_store.new_token(
                    session_id, hello.client_id
                )
                # A fresh token is uncontended, but taking its lease
                # here makes the invariant uniform: a journal with an
                # appender always has a lease naming that appender.
                self._journal_store.acquire(resume_token)
                journal = self._journal_store.create(resume_token)
            except StorageError as exc:
                if resume_token:
                    try:
                        self._journal_store.release(resume_token)
                    except (StorageError, OSError):
                        pass
                resume_token, journal = "", None
                self._note_durability_failure(exc)
        session = _Session(session_id, hello, self,
                           resume_token=resume_token, journal=journal)
        if journal is not None:
            admit_payload = {
                "token": resume_token, "session_id": session_id,
                "width": hello.width, "height": hello.height,
                "fps": hello.fps, "num_frames": hello.num_frames,
                "gop": hello.gop, "content_class": hello.content_class,
                "client_id": hello.client_id,
                "qp": session.qp, "window": session.window,
                "owner": self._owner,
            }
            if hello.tenant:
                admit_payload["tenant"] = hello.tenant
            try:
                await asyncio.get_running_loop().run_in_executor(
                    self._journal_pool, journal.append, "admit",
                    admit_payload,
                )
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Journal dead on arrival (ENOSPC, writer-thread death,
                # ...): the session continues journal-less.
                await self._durability_brownout(session, exc)
        await write_message(writer, HelloAck(
            decision="accept", session_id=session_id, reason=reason,
            queue_frames=cfg.queue_frames,
            # A brownout above clears the session's token; the ACK
            # must advertise what the session actually has.
            resume_token=session.resume_token,
        ))
        await self._serve_admitted(session, reader, writer)

    async def _run_ladder_connection(
        self, session_id: int, hello: Hello,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """HELLO-with-ladder handshake.

        Admission prices the *whole* ladder (sum of per-rung LUT
        estimates) and may drop low rungs before parking or rejecting
        the session; the HELLO_ACK's ``rungs`` list is the contract —
        exactly those rungs arrive on the wire, each ENCODED tagged
        with its rung id in the header flags.  Ladder sessions are not
        journaled (no resume token) and the encode watchdog is
        disarmed; see DESIGN.md §14 for the limitation.
        """
        cfg = self.config
        decision, reason, kept = self.admission.decide_ladder(
            session_id, hello
        )
        if decision is AdmissionDecision.PARK:
            await write_message(writer, HelloAck(
                decision="park", session_id=session_id, reason=reason,
            ))
            decision, reason, kept = await self._wait_parked_ladder(
                session_id, hello
            )
        if decision is not AdmissionDecision.ACCEPT:
            await write_message(writer, HelloAck(
                decision="reject", session_id=session_id, reason=reason,
            ))
            return
        session = _Session(session_id, hello, self, rungs=kept)
        get_registry().inc(
            "repro_serving_ladder_sessions_total",
            help="Rendition-ladder sessions admitted by the server",
        )
        await write_message(writer, HelloAck(
            decision="accept", session_id=session_id, reason=reason,
            queue_frames=cfg.queue_frames,
            rungs=tuple(
                (i, w, h) for i, (w, h) in enumerate(kept)
            ),
        ))
        await self._serve_admitted(session, reader, writer)

    async def _wait_parked_ladder(self, session_id: int, hello: Hello):
        """Ladder variant of :meth:`_wait_parked`."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.park_timeout_s
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                self.admission.abandon_park()
                return AdmissionDecision.REJECT, "park timeout", ()
            self._capacity_freed.clear()
            try:
                await asyncio.wait_for(
                    self._capacity_freed.wait(), timeout=remaining
                )
            except asyncio.TimeoutError:
                self.admission.abandon_park()
                return AdmissionDecision.REJECT, "park timeout", ()
            decision, reason, kept = self.admission.unpark_ladder(
                session_id, hello
            )
            if decision is not AdmissionDecision.PARK:
                return decision, reason, kept

    async def _resume_connection(self, msg: Resume,
                                 reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """RESUME handshake: restore the journaled session, replay the
        outcomes the client lacks, and hand over to the normal loops."""
        cfg = self.config
        registry = get_registry()
        started = time.perf_counter()
        store = self._journal_store
        if store is None or not store.exists(msg.resume_token):
            await write_message(writer, ResumeAck(
                decision="reject", reason="unknown resume token",
            ))
            return
        if msg.resume_token in self._tombstoned:
            # Invalidated by a durability brownout: the journal on disk
            # (if any survived) is not trusted to be complete, so the
            # token is refused cleanly instead of resuming a session
            # that would silently miss its tail.
            registry.inc(
                "repro_serving_tombstone_rejects_total",
                help="RESUMEs refused: token tombstoned by a brownout",
            )
            await write_message(writer, ResumeAck(
                decision="reject",
                reason="resume token invalidated by durability brownout",
            ))
            return
        # Half-open TCP: the client timed out and reconnected while the
        # old handler is still alive (e.g. a chaos-proxy stall).  The
        # journal admits one writer, so preempt the old handler —
        # cancel it and wait for its teardown (which closes its journal
        # handle) before reading the journal.
        old = self._attached.get(msg.resume_token)
        if old is not None and not old.done():
            registry.inc("repro_serving_resume_preemptions_total",
                         help="Attached sessions preempted by a RESUME")
            old.cancel()
            await asyncio.wait({old}, timeout=cfg.hello_timeout_s)
            if not old.done():
                await write_message(writer, ResumeAck(
                    decision="reject",
                    reason="session still attached; preemption timed out",
                ))
                return
        # Cross-process exclusion: take the token's single-owner lease.
        # In-process preemption (above) already cleared our own path,
        # so a held lease here names *another worker* — alive means
        # its session is still appending (transient reject: the client
        # should retry after the fleet confirms the worker's fate);
        # dead means we adopt, which is the crash-failover headline.
        try:
            lease = store.acquire(msg.resume_token)
        except LeaseHeldError as exc:
            registry.inc("repro_serving_lease_conflicts_total",
                         help="RESUMEs rejected: lease held by a live peer")
            await write_message(writer, ResumeAck(
                decision="reject",
                reason=f"session lease held by {exc.owner}",
                retry_after_s=cfg.lease_retry_s,
            ))
            return
        except StorageError as exc:
            # The lease write itself failed: storage trouble, not
            # contention.  Transient reject (the client may retry) and
            # note the failure against the durability latch.
            self._note_durability_failure(exc)
            await write_message(writer, ResumeAck(
                decision="reject", reason=f"session store fault: {exc}",
                retry_after_s=cfg.lease_retry_s,
            ))
            return
        # Claim the token before touching the journal so a concurrent
        # RESUME for the same token preempts *this* handler instead of
        # racing it to the reopen.
        self._attached[msg.resume_token] = asyncio.current_task()
        # Barrier through the single journal-writer thread: any append
        # the old session scheduled before teardown has now either
        # landed in the file or failed against the closed handle, so
        # the restore below reads the journal's final state.
        try:
            await asyncio.get_running_loop().run_in_executor(
                self._journal_pool, lambda: None
            )
        except RuntimeError:
            # Writer pool dead: journaling is gone for this process, so
            # a resume cannot be served safely.  Clean typed refusal.
            self._attached.pop(msg.resume_token, None)
            store.release(msg.resume_token)
            await write_message(writer, ResumeAck(
                decision="reject", reason="journal writer unavailable",
                retry_after_s=cfg.lease_retry_s,
            ))
            return
        try:
            restored = store.restore(msg.resume_token, strict=True)
        except JournalCorruptionError as exc:
            registry.inc("repro_serving_journal_corruptions_total",
                         help="Journals rejected by integrity checks")
            store.release(msg.resume_token)
            await write_message(writer, ResumeAck(
                decision="reject", reason=f"journal corrupt: {exc}",
            ))
            return
        except StorageError as exc:
            # An unreadable journal is a *transient* reject, distinct
            # from corruption: the bytes may be fine, the read failed.
            store.release(msg.resume_token)
            await write_message(writer, ResumeAck(
                decision="reject", reason=f"journal unreadable: {exc}",
                retry_after_s=cfg.lease_retry_s,
            ))
            return
        if restored.tombstoned:
            # A previous run browned this session out and its
            # tombstone record did land: same clean refusal as the
            # in-memory set, surviving restarts.
            registry.inc(
                "repro_serving_tombstone_rejects_total",
                help="RESUMEs refused: token tombstoned by a brownout",
            )
            self._attached.pop(msg.resume_token, None)
            store.release(msg.resume_token)
            await write_message(writer, ResumeAck(
                decision="reject",
                reason="resume token invalidated by durability brownout",
            ))
            return
        adopted = restored.last_owner not in ("", self._owner)
        if adopted:
            registry.inc(
                "repro_serving_sessions_adopted_total",
                help="Journaled sessions adopted from a dead worker",
            )
            get_tracer().event(
                "serving.adopt", token=msg.resume_token,
                previous_owner=restored.last_owner, owner=self._owner,
                reclaimed=lease.reclaimed,
            )
        admit = restored.admit
        hello = Hello(
            width=int(admit["width"]), height=int(admit["height"]),
            fps=float(admit["fps"]),
            num_frames=int(admit.get("num_frames", 0)),
            gop=int(admit["gop"]),
            content_class=admit.get("content_class"),
            client_id=msg.client_id or str(admit.get("client_id", "")),
            tenant=str(admit.get("tenant", "")),
        )
        session_id = self._next_session_id
        self._next_session_id += 1
        # A resumed session re-charges admission capacity like any
        # other: its old ticket died with its old connection.
        decision, reason = self.admission.decide(session_id, hello)
        if decision is AdmissionDecision.PARK:
            decision, reason = await self._wait_parked(session_id, hello)
        if decision is not AdmissionDecision.ACCEPT:
            store.release(msg.resume_token)
            await write_message(writer, ResumeAck(
                decision="reject", session_id=session_id, reason=reason,
            ))
            return
        # A mid-append crash leaves a torn final line; cut the file back
        # to its last intact record before appending, or the next
        # record would merge with the partial line mid-file and poison
        # every later strict restore.
        try:
            journal = store.reopen(msg.resume_token, restored.next_seq,
                                   truncate_to=restored.intact_bytes)
        except StorageError as exc:
            self.admission.release(session_id)
            store.release(msg.resume_token)
            self._note_durability_failure(exc)
            await write_message(writer, ResumeAck(
                decision="reject", reason=f"session store fault: {exc}",
                retry_after_s=cfg.lease_retry_s,
            ))
            return
        session = _Session(session_id, hello, self,
                           resume_token=msg.resume_token, journal=journal,
                           restored=restored)
        session.stats.resumes = restored.resumes + 1
        try:
            await asyncio.get_running_loop().run_in_executor(
                self._journal_pool, journal.append, "resume", {
                    "have_below": msg.have_below,
                    "next_frame_index": restored.next_frame_index,
                    "session_id": session_id,
                    "owner": self._owner,
                },
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # The restored state is already in memory; serve the
            # session journal-less rather than failing the resume.
            await self._durability_brownout(session, exc)
        replay = replay_messages(restored, msg.have_below)
        session.stats.replayed = len(replay)
        await write_message(writer, ResumeAck(
            decision="accept", session_id=session_id,
            next_frame_index=restored.next_frame_index,
            replayed=len(replay), reason=reason,
            queue_frames=cfg.queue_frames,
            resume_token=session.resume_token,
        ))
        for encoded in replay:
            await write_message(writer, encoded)
            registry.inc("repro_serving_frames_total", direction="out",
                         help="Frames crossing the wire by direction")
            registry.inc("repro_serving_bytes_total", len(encoded.luma),
                         direction="out",
                         help="Payload bytes crossing the wire by direction")
        registry.inc("repro_serving_resumes_total",
                     help="Sessions reattached via RESUME")
        registry.observe(
            "repro_serving_resume_latency_seconds",
            time.perf_counter() - started,
            help="RESUME to RESUME_ACK (journal restore + replay)",
        )
        get_tracer().event(
            "serving.resume", session=session_id,
            token=msg.resume_token, replayed=len(replay),
            next_frame_index=restored.next_frame_index,
        )
        await self._serve_admitted(session, reader, writer)

    async def _serve_admitted(self, session: "_Session",
                              reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        registry = get_registry()
        span = get_tracer().span(
            "serving.session", session=session.session_id,
            width=session.hello.width, height=session.hello.height,
        )
        task = asyncio.current_task()
        if session.resume_token:
            self._attached[session.resume_token] = task
        try:
            with span:
                await self._run_session(session, reader, writer)
            registry.inc("repro_serving_sessions_total", outcome="completed",
                         help="Finished sessions by outcome")
        except BaseException:
            registry.inc("repro_serving_sessions_total", outcome="aborted",
                         help="Finished sessions by outcome")
            raise
        finally:
            holds_token = self._attached.get(session.resume_token) is task
            if holds_token:
                del self._attached[session.resume_token]
            session.close_encoder()
            if session.journal is not None:
                session.journal.close()
                try:
                    if (session.completed
                            and self._journal_store is not None):
                        # Clean BYE: the journal has served its purpose
                        # (discard removes the lease with it).
                        self._journal_store.discard(session.resume_token)
                    elif holds_token and self._journal_store is not None:
                        # Interrupted (disconnect, park, preemption
                        # target already re-leased the token — hence
                        # holds_token): free the lease so *any* worker
                        # can resume it.
                        self._journal_store.release(session.resume_token)
                except StorageError as exc:
                    # Teardown is best-effort: an undeletable journal
                    # or lease is garbage a later sweep reclaims, not
                    # a reason to abort the teardown path.
                    self._note_durability_failure(exc)
            self.admission.release(session.session_id)
            self._capacity_freed.set()

    async def _wait_parked(self, session_id: int, hello: Hello):
        """Hold a parked session until capacity frees or the park
        timeout elapses."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.park_timeout_s
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                self.admission.abandon_park()
                return AdmissionDecision.REJECT, "park timeout"
            self._capacity_freed.clear()
            try:
                await asyncio.wait_for(
                    self._capacity_freed.wait(), timeout=remaining
                )
            except asyncio.TimeoutError:
                self.admission.abandon_park()
                return AdmissionDecision.REJECT, "park timeout"
            decision, reason = self.admission.unpark(session_id, hello)
            if decision is not AdmissionDecision.PARK:
                return decision, reason

    # -- session tasks -------------------------------------------------
    async def _run_session(self, session: _Session,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        ingest_task = asyncio.ensure_future(
            self._ingest_loop(session, reader)
        )
        encode_task = asyncio.ensure_future(self._encode_loop(session))
        emit_task = asyncio.ensure_future(self._emit_loop(session))
        egress_task = asyncio.ensure_future(
            self._egress_loop(session, writer)
        )
        tasks = [ingest_task, encode_task, emit_task, egress_task]
        try:
            await asyncio.gather(*tasks)
        finally:
            for t in tasks:
                if not t.done():
                    t.cancel()
            # Reap cancellations and secondary errors so no task dies
            # with an unretrieved exception.
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _ingest_loop(self, session: _Session,
                           reader: asyncio.StreamReader) -> None:
        cfg = self.config
        registry = get_registry()
        hello = session.hello
        drain_wait = asyncio.ensure_future(self._drain_event.wait())
        try:
            while True:
                read_task = asyncio.ensure_future(
                    read_message(reader, max_payload=self._recv_max_payload)
                )
                await asyncio.wait(
                    {read_task, drain_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not read_task.done():
                    # Drain signalled mid-read: stop ingesting; the
                    # encode loop parks or flushes what is in flight.
                    read_task.cancel()
                    await asyncio.gather(read_task, return_exceptions=True)
                    await session.ingest.put(_DRAIN_SENTINEL)
                    return
                msg = read_task.result()
                if isinstance(msg, Bye):
                    await session.ingest.put(_BYE_SENTINEL)
                    return
                if not isinstance(msg, FrameMsg):
                    raise ProtocolError(
                        f"expected FRAME or BYE, got {msg.type.name}"
                    )
                if (msg.width, msg.height) != (hello.width, hello.height):
                    raise ProtocolError(
                        f"FRAME geometry {msg.width}x{msg.height} disagrees "
                        f"with HELLO {hello.width}x{hello.height}"
                    )
                registry.inc("repro_serving_frames_total", direction="in",
                             help="Frames crossing the wire by direction")
                registry.inc(
                    "repro_serving_bytes_total", len(msg.luma),
                    direction="in",
                    help="Payload bytes crossing the wire by direction",
                )
                index = session.next_index
                session.next_index += 1
                session.stats.frames_received += 1
                if session.ingest.full():
                    # Backpressure: the client outruns the encoder.  The
                    # incoming frame is dropped (never buffered), keeping
                    # the queue depth at its configured bound.
                    session.stats.dropped_backpressure += 1
                    registry.inc(
                        "repro_serving_frames_dropped_total",
                        reason="backpressure",
                        help="Frames dropped by the serving layer, by reason",
                    )
                    await self._egress_put(session, Encoded(
                        frame_index=index, frame_type="",
                        dropped="backpressure",
                    ))
                    continue
                # Zero-copy ingest: the wire payload backs the frame
                # directly (read_message hands out an immutable view,
                # so frombuffer yields a read-only plane — the encoder
                # only ever reads the original).  A writable buffer
                # means something mutable backs the view; snapshot it
                # and surface the copy in metrics so hot-path copy
                # regressions are visible.
                luma = np.frombuffer(msg.luma, dtype=np.uint8).reshape(
                    msg.height, msg.width
                )
                if luma.flags.writeable:
                    luma = luma.copy()
                    registry.inc(
                        "repro_serving_frame_copies_total", path="ingest",
                        help="Hot-path pixel copies (0 when zero-copy holds)",
                    )
                session.arrival_s[index] = time.perf_counter()
                session.ingest.put_nowait(Frame(luma, index=index))
                depth = session.ingest.qsize()
                if depth > session.stats.peak_ingest_depth:
                    session.stats.peak_ingest_depth = depth
                    registry.set_gauge(
                        "repro_serving_queue_depth_peak", depth,
                        queue="ingest",
                        help="Highest per-session queue depth observed",
                    )
                if cfg.queue_frames and depth > cfg.queue_frames:
                    raise RuntimeError(
                        "ingest queue exceeded its bound"
                    )  # pragma: no cover - guarded by maxsize
        finally:
            drain_wait.cancel()
            await asyncio.gather(drain_wait, return_exceptions=True)

    def _watchdog_timeout(self, session: _Session) -> Optional[float]:
        """Wall-clock budget for one ``push`` (at most one GOP encode),
        or ``None`` when the watchdog is disarmed."""
        multiple = self.config.watchdog_multiple
        if multiple <= 0 or session.ladder is not None:
            return None
        return max(self.config.watchdog_min_s,
                   multiple * session.slot_s * session.gop_size)

    def _tracks_gop_state(self, session: _Session) -> bool:
        return (session.journal is not None
                or self._watchdog_timeout(session) is not None)

    async def _encode_loop(self, session: _Session) -> None:
        loop = asyncio.get_running_loop()
        # Re-push frames parked by a previous drain before touching the
        # wire queue: they carry their original indices, so the resumed
        # GOP is built from exactly the frames the old run accepted.
        prefeed, session.prefeed = session.prefeed, []
        for frame in prefeed:
            outputs = await self._push_frame(session, frame)
            await self._queue_boundary(session, outputs)
        while True:
            item = await session.ingest.get()
            if item is _BYE_SENTINEL:
                # Let every queued GOP become durable and reach the
                # wire before the tail flush and BYE.
                await session.emit_queue.join()
                outputs = await loop.run_in_executor(
                    self._encode_pool, session.encode_finish
                )
                await self._emit_outputs(session, outputs)
                session.completed = True
                await self._egress_put(
                    session,
                    Stats(session.stats.to_dict(self.config.queue_frames)),
                    coalesce=False,
                )
                await self._egress_put(
                    session, Bye("session complete"), coalesce=False
                )
                await session.egress.put(_BYE_SENTINEL)
                await session.emit_queue.put(_BYE_SENTINEL)
                return
            if item is _DRAIN_SENTINEL:
                await session.emit_queue.join()
                await self._park_session(session)
                await session.emit_queue.put(_BYE_SENTINEL)
                return
            if (self.energy is not None
                    and not self.energy.serves(session.tenant)):
                # Brownout: the tenant is shed — the connection stays up
                # but frames degrade to policy drops until readmission.
                session.stats.dropped_policy += 1
                session.arrival_s.pop(item.index, None)
                get_registry().inc(
                    "repro_serving_frames_dropped_total", reason="policy",
                    help="Frames dropped by the serving layer, by reason",
                )
                await self._egress_put(session, Encoded(
                    frame_index=item.index, frame_type="",
                    dropped="policy",
                ))
                continue
            outputs = await self._push_frame(session, item)
            await self._queue_boundary(session, outputs)

    async def _push_frame(self, session: _Session,
                          frame: Frame) -> List[FrameOutput]:
        """One encoder push, watchdog-guarded when armed."""
        loop = asyncio.get_running_loop()
        if self._tracks_gop_state(session):
            session.replay_frames.append(frame)
        floor = self.config.encode_floor_s
        if (floor <= 0 and session.ladder is None
                and session.stream.pending_frames + 1 < session.gop_size):
            # Mid-GOP push: validate-and-buffer only (no encode), so
            # run it inline instead of paying an executor round-trip —
            # the thread pool is reserved for GOP flushes.  Ladder
            # pushes always take the executor: every push box-downscales
            # the frame once per rung, real work the event loop should
            # not absorb.
            try:
                return session.stream.push(frame)
            except CorruptFrameError as exc:
                raise ProtocolError(f"unencodable frame: {exc}") from exc
        if floor > 0:
            def timed_push() -> List[FrameOutput]:
                t0 = time.perf_counter()
                outs = session.encode_push(frame)
                remaining = floor - (time.perf_counter() - t0)
                if remaining > 0:
                    time.sleep(remaining)
                return outs

            future = loop.run_in_executor(self._encode_pool, timed_push)
        else:
            future = loop.run_in_executor(
                self._encode_pool, session.encode_push, frame
            )
        timeout = self._watchdog_timeout(session)
        try:
            if timeout is None:
                return await future
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except CorruptFrameError as exc:
            raise ProtocolError(f"unencodable frame: {exc}") from exc
        except asyncio.TimeoutError:
            # The executor thread is wedged; Python cannot kill it, so
            # swallow whatever it eventually produces and move on.
            future.add_done_callback(lambda f: f.exception())
            await self._fire_watchdog(session, frame)
            return []

    async def _fire_watchdog(self, session: _Session,
                             frame: Frame) -> None:
        """A push exceeded its deadline multiple: abandon it, rebuild
        the stream at the last GOP boundary, drop the wedged frame,
        degrade, and re-pack the allocator around the sick core."""
        registry = get_registry()
        session.stats.watchdog_fires += 1
        session.stats.dropped_watchdog += 1
        registry.inc("repro_serving_watchdog_fires_total",
                     help="Encode watchdog firings")
        registry.inc("repro_serving_frames_dropped_total", reason="watchdog",
                     help="Frames dropped by the serving layer, by reason")
        session.epoch += 1
        # Replace the shared executor: its single worker thread is
        # stuck inside the wedged push.  Sessions with work queued on
        # the old pool see a cancellation and abort — their journals
        # (when enabled) let them resume; head-of-line blocking behind
        # a wedged thread would stall them forever anyway.
        old_pool = self._encode_pool
        self._encode_pool = self._new_encode_pool()
        old_pool.shutdown(wait=False, cancel_futures=True)
        # Rebuild the stream from the in-memory GOP-boundary snapshot
        # and re-buffer the interrupted GOP minus the wedged frame.
        replay = [f for f in session.replay_frames
                  if f.index != frame.index]
        session.replay_frames = []
        stream = session.transcoder.open_session()
        if session.last_state is not None:
            stream.import_state(session.last_state)
        session.stream = stream
        loop = asyncio.get_running_loop()
        for f in replay:
            session.replay_frames.append(f)
            # Mid-GOP pushes only validate and buffer (encoding happens
            # at the flush), so re-feeding is cheap and cannot wedge.
            await loop.run_in_executor(self._encode_pool, stream.push, f)
        stream.bump_degradation(frame.index)
        self.admission.replan_after_stall(
            session.session_id, 1.0 / session.slot_s
        )
        session.arrival_s.pop(frame.index, None)
        if session.journal is not None:
            # The drop is egressed here, outside any GOP flush, so it
            # rides in the next gop/park record — a resume must replay
            # it as "watchdog", not re-synthesize it as backpressure.
            session.pending_drops.append({
                "frame_index": int(frame.index), "dropped": "watchdog",
                "frame_type": "", "bits": 0, "psnr": 0.0, "recon": None,
            })
        await self._egress_put(session, Encoded(
            frame_index=frame.index, frame_type="", dropped="watchdog",
        ))
        get_tracer().event(
            "serving.watchdog", session=session.session_id,
            frame=frame.index, epoch=session.epoch,
        )

    async def _queue_boundary(self, session: _Session,
                              outputs: List[FrameOutput]) -> None:
        """Hand one push's outputs to the emit loop.

        At a GOP boundary the cross-GOP state is captured *here*,
        synchronously (``export_state`` builds a small dict and borrows
        the previous-original plane without copying), so the watchdog
        and drain paths always see current recovery state.  The
        expensive durability work — plane packing, checksumming, the
        fsync'd append — is scheduled on the journal writer thread and
        the resulting future queued alongside the outputs: the encode
        thread moves straight on to the next frame while
        :meth:`_emit_loop` awaits the append before letting the GOP
        reach egress (journal-before-egress is what makes everything
        the client ever saw replayable)."""
        if not outputs:
            return
        append = None
        if self._tracks_gop_state(session):
            state = session.stream.export_state()
            session.last_state = state
            session.replay_frames = []
            journal = session.journal
            if journal is not None:
                # Claim already-egressed watchdog drops synchronously:
                # they become durable with this GOP record.
                drops, session.pending_drops = session.pending_drops, []

                def persist() -> None:
                    packed_state = dict(state)
                    previous = packed_state.get("previous_original")
                    packed_state["previous_original"] = (
                        pack_plane(previous) if previous is not None
                        else None
                    )
                    journal.append("gop", {
                        "gop_index": int(state["gop_index"]) - 1,
                        "state": packed_state,
                        "outputs": drops + [
                            frame_output_record(o) for o in outputs
                        ],
                        "next_frame_index": max(
                            [o.frame_index for o in outputs]
                            + [int(d["frame_index"]) for d in drops]
                        ) + 1,
                    })

                try:
                    append = asyncio.get_running_loop().run_in_executor(
                        self._journal_pool, persist
                    )
                except RuntimeError as exc:
                    # Writer pool dead (thread death / shutdown): same
                    # contract as a failed append — emit anyway, brown
                    # the session out.
                    append = None
                    await self._durability_brownout(session, exc)
                else:
                    # The emit loop awaits this; retrieve defensively
                    # too, for sessions torn down with an append still
                    # queued.
                    append.add_done_callback(
                        lambda f: f.cancelled() or f.exception()
                    )
        await session.emit_queue.put((append, outputs))

    async def _emit_loop(self, session: _Session) -> None:
        """Per-session emitter: for each queued GOP, await its journal
        append (when journaling) and only then emit the outputs.  Runs
        concurrently with the encode loop so durability work overlaps
        encode work instead of stalling it."""
        while True:
            item = await session.emit_queue.get()
            if item is _BYE_SENTINEL:
                session.emit_queue.task_done()
                return
            append, outputs = item
            try:
                if append is not None:
                    try:
                        await append
                    except asyncio.CancelledError:
                        raise
                    except Exception as exc:
                        # The GOP cannot be made durable: emit it
                        # anyway and brown the session out —
                        # availability over resumability.
                        await self._durability_brownout(session, exc)
                    else:
                        get_registry().inc(
                            "repro_serving_journal_gops_total",
                            help="GOP records made durable by session "
                                 "journals",
                        )
                await self._emit_outputs(session, outputs)
            finally:
                session.emit_queue.task_done()

    async def _park_session(self, session: _Session) -> None:
        """Drain-path exit: journal the in-flight GOP's raw frames (a
        ``park`` record) so a restarted server resumes bit-identically,
        or — journal-less — flush the partial GOP the classic way."""
        loop = asyncio.get_running_loop()
        if session.journal is not None:
            journal = session.journal
            frames = list(session.replay_frames)
            next_index = session.next_index
            drops, session.pending_drops = session.pending_drops, []

            def park() -> None:
                journal.append("park", {
                    "next_frame_index": next_index,
                    "frames": [
                        {"frame_index": f.index,
                         "plane": pack_plane(f.luma)}
                        for f in frames
                    ],
                    "outputs": drops,
                })

            try:
                await loop.run_in_executor(self._journal_pool, park)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                await self._durability_brownout(session, exc)
            else:
                session.stats.parked = True
                get_registry().inc(
                    "repro_serving_sessions_parked_total",
                    help="Sessions parked to their journal by a drain",
                )
        if session.stats.parked:
            reason = "server draining; session parked for resume"
        else:
            # Journal-less (or the park record failed to land — the
            # brownout path above): flush the partial GOP the classic
            # way so the client still gets every frame it sent.
            outputs = await loop.run_in_executor(
                self._encode_pool, session.encode_finish
            )
            await self._emit_outputs(session, outputs)
            reason = "server draining"
        await self._egress_put(
            session,
            Stats(session.stats.to_dict(self.config.queue_frames)),
            coalesce=False,
        )
        await self._egress_put(session, Bye(reason), coalesce=False)
        await session.egress.put(_BYE_SENTINEL)

    async def _emit_outputs(self, session: _Session,
                            outputs: List[FrameOutput]) -> None:
        registry = get_registry()
        now = time.perf_counter()
        for out in outputs:
            arrival = session.arrival_s.pop(out.frame_index, None)
            if out.dropped is not None:
                if out.dropped == "corrupt":
                    session.stats.dropped_corrupt += 1
                else:
                    session.stats.dropped_deadline += 1
                await self._egress_put(session, Encoded(
                    frame_index=out.frame_index, frame_type="",
                    dropped=out.dropped, rung=out.rung,
                ))
                continue
            record = out.record
            critical = max(t.cpu_time_fmax for t in record.tiles)
            if self.energy is not None:
                # Model-domain energy: the frame's summed tile CPU
                # seconds at f_max priced by the fig4 busy power —
                # billed to the session's tenant for the budget ledger.
                self.energy.observe(
                    asyncio.get_running_loop().time(),
                    record.cpu_time_fmax
                    * self._power_model.busy_power(
                        self.admission.platform.f_max),
                    session.tenant,
                )
            session.stats.frames_encoded += 1
            session.stats.total_bits += record.bits
            psnr = float(np.mean([t.psnr for t in record.tiles]))
            session.stats.psnr_sum += psnr
            registry.inc("repro_serving_frames_encoded_total",
                         help="Frames encoded by the serving layer")
            if critical > session.slot_s:
                session.stats.deadline_misses += 1
                registry.inc(
                    "repro_serving_deadline_miss_total",
                    help="Encoded frames whose critical tile exceeded "
                         "the 1/FPS slot",
                )
            if arrival is not None:
                latency = now - arrival
                session.stats.latencies_s.append(latency)
                registry.observe(
                    "repro_serving_frame_latency_seconds", latency,
                    help="End-to-end frame latency (arrival to encoded)",
                )
            recon = out.reconstruction
            await self._egress_put(session, _EncodedOut(
                out.frame_index, out.frame_type.value,
                recon.shape[1], recon.shape[0],
                record.bits, psnr, recon, rung=out.rung,
            ))

    async def _egress_put(self, session: _Session, msg: Message,
                          coalesce: bool = True) -> None:
        """Queue an outbound message, coalescing on a slow reader.

        When the egress queue is full and ``coalesce`` is allowed, the
        oldest undelivered ENCODED frame is discarded — the client
        gets the freshest results and the queue never exceeds its
        bound.  Control messages (STATS/BYE) always enqueue.
        """
        registry = get_registry()
        if coalesce:
            while session.egress.full():
                try:
                    stale = session.egress.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - race guard
                    break
                if stale is _BYE_SENTINEL:
                    session.egress.put_nowait(stale)
                    break
                session.stats.dropped_egress += 1
                registry.inc(
                    "repro_serving_frames_dropped_total", reason="egress",
                    help="Frames dropped by the serving layer, by reason",
                )
        await session.egress.put(msg)
        depth = session.egress.qsize()
        if depth > session.stats.peak_egress_depth:
            session.stats.peak_egress_depth = depth
            registry.set_gauge(
                "repro_serving_queue_depth_peak", depth, queue="egress",
                help="Highest per-session queue depth observed",
            )

    async def _egress_loop(self, session: _Session,
                           writer: asyncio.StreamWriter) -> None:
        registry = get_registry()
        while True:
            msg = await session.egress.get()
            if msg is _BYE_SENTINEL:
                return
            if type(msg) is _EncodedOut:
                # Arena egress: serialize the reconstruction plane
                # directly into the per-session buffer and hand that
                # to the transport — no tobytes(), no concatenation.
                arena = session.wire_arena
                del arena[:]
                encode_encoded_into(
                    arena, msg.frame_index, frame_type=msg.frame_type,
                    width=msg.width, height=msg.height,
                    bits=msg.bits, psnr=msg.psnr, luma=msg.recon,
                    flags=msg.rung,
                )
                writer.write(arena)
                await writer.drain()
                registry.inc("repro_serving_frames_total", direction="out",
                             help="Frames crossing the wire by direction")
                registry.inc(
                    "repro_serving_bytes_total", msg.recon.nbytes,
                    direction="out",
                    help="Payload bytes crossing the wire by direction",
                )
                continue
            await write_message(writer, msg)
            if isinstance(msg, Encoded):
                registry.inc("repro_serving_frames_total", direction="out",
                             help="Frames crossing the wire by direction")
                registry.inc(
                    "repro_serving_bytes_total", len(msg.luma),
                    direction="out",
                    help="Payload bytes crossing the wire by direction",
                )
