"""Asyncio streaming front-end for the transcoding pipeline.

One TCP connection is one session: HELLO -> admission decision ->
frame ingest -> encoded-bitstream egress -> STATS/BYE.  Per session
the server runs three tasks:

* **ingest** reads FRAME messages off the socket and feeds a *bounded*
  queue; when the client outruns the encoder and the queue is full,
  the incoming frame is dropped (an ENCODED notice with
  ``dropped="backpressure"`` tells the client) instead of growing RAM;
* **encode** pulls frames in order and pushes them through a
  :class:`repro.transcode.pipeline.ProposedStreamSession` on a
  dedicated executor thread, so the event loop never blocks on CPU
  work (with ``parallel_workers`` set, the tile process pool of
  :mod:`repro.parallel.executor` carries the heavy per-tile encode out
  of the GIL entirely);
* **egress** writes ENCODED messages from a second bounded queue; a
  slow reader causes the *oldest* undelivered frame to be coalesced
  away (newest results win — a viewer wants the current frame, not a
  backlog).

Admission (:mod:`repro.serving.admission`) prices each HELLO with the
shared workload-LUT estimator and admits against Algorithm 2's slot
capacity; parked sessions wait bounded time for capacity to free.  All
sessions share one estimator, so the LUT a session warms speeds up
admission pricing and allocation for every later user of the same
content class — the paper's cross-user reuse, now end to end.

Every admission decision, queue depth, drop and end-to-end frame
latency lands in :mod:`repro.observability`.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.codec.config import EncoderConfig, GopConfig
from repro.observability import get_registry, get_tracer
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.resilience.errors import CorruptFrameError
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.resilience.degradation import ResilienceConfig
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.serving.protocol import (
    Bye,
    Encoded,
    ErrorMsg,
    FrameMsg,
    Hello,
    HelloAck,
    Message,
    ProtocolError,
    Stats,
    read_message,
    write_message,
)
from repro.transcode.pipeline import (
    FrameOutput,
    PipelineConfig,
    StreamTranscoder,
)
from repro.video.frame import Frame
from repro.video.generator import ContentClass
from repro.workload.estimator import WorkloadEstimator

__all__ = ["NetworkServer", "ServeNetConfig", "SessionStats"]


@dataclass(frozen=True)
class ServeNetConfig:
    """Configuration of the network server."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral
    fps: float = 24.0
    gop: int = 8
    #: Seed for every stochastic serving component (currently the
    #: optional CPU-time fault injection below).
    seed: int = 0
    #: Bound of the per-session ingest queue (frames awaiting encode).
    queue_frames: int = 16
    #: Bound of the per-session egress queue (encoded frames awaiting
    #: a slow reader).
    egress_frames: int = 32
    #: How long a parked session waits for capacity before rejection.
    park_timeout_s: float = 2.0
    #: Handshake timeout (connection to first HELLO).
    hello_timeout_s: float = 10.0
    max_frame_width: int = 4096
    max_frame_height: int = 4096
    #: Tile process pool per session (``None`` = serial encode).
    parallel_workers: Optional[int] = None
    #: Per-stream resilience (degradation ladder, corrupt-frame drops).
    resilience: Optional[ResilienceConfig] = field(
        default_factory=ResilienceConfig
    )
    #: Seeded CPU-time spike injection (0 disables); reproducible from
    #: ``seed``.
    fault_spike_rate: float = 0.0
    fault_spike_factor: float = 8.0
    admission: AdmissionPolicy = AdmissionPolicy()
    platform: MpsocConfig = XEON_E5_2667


@dataclass
class SessionStats:
    """Per-session counters, summarized into the STATS message."""

    session_id: int
    frames_received: int = 0
    frames_encoded: int = 0
    dropped_backpressure: int = 0
    dropped_egress: int = 0
    dropped_corrupt: int = 0
    dropped_deadline: int = 0
    deadline_misses: int = 0
    total_bits: int = 0
    psnr_sum: float = 0.0
    peak_ingest_depth: int = 0
    peak_egress_depth: int = 0
    latencies_s: List[float] = field(default_factory=list)

    def to_dict(self, queue_frames: int) -> Dict[str, object]:
        return {
            "session_id": self.session_id,
            "frames_received": self.frames_received,
            "frames_encoded": self.frames_encoded,
            "frames_dropped": {
                "backpressure": self.dropped_backpressure,
                "egress": self.dropped_egress,
                "corrupt": self.dropped_corrupt,
                "deadline": self.dropped_deadline,
            },
            "deadline_misses": self.deadline_misses,
            "total_bits": self.total_bits,
            "psnr_avg": (
                self.psnr_sum / self.frames_encoded
                if self.frames_encoded else None
            ),
            "peak_ingest_depth": self.peak_ingest_depth,
            "peak_egress_depth": self.peak_egress_depth,
            "queue_frames": queue_frames,
        }


_BYE_SENTINEL = object()


class _Session:
    """Mutable state of one accepted client session."""

    def __init__(self, session_id: int, hello: Hello, server: "NetworkServer"):
        cfg = server.config
        self.session_id = session_id
        self.hello = hello
        self.stats = SessionStats(session_id=session_id)
        self.ingest: asyncio.Queue = asyncio.Queue(maxsize=cfg.queue_frames)
        self.egress: asyncio.Queue = asyncio.Queue(maxsize=cfg.egress_frames)
        self.arrival_s: Dict[int, float] = {}
        self.next_index = 0
        content = None
        if hello.content_class:
            try:
                content = ContentClass(hello.content_class)
            except ValueError:
                content = None
        qp, window = server.admission.lighten(32, 64)
        pipeline = PipelineConfig(
            fps=hello.fps if hello.fps > 0 else cfg.fps,
            gop=GopConfig(max(1, hello.gop)),
            base_config=EncoderConfig(qp=qp, search="hexagon",
                                      search_window=window),
            content_class=content,
            resilience=cfg.resilience,
            platform=cfg.platform,
            parallel_tiles=cfg.parallel_workers is not None,
            parallel_workers=cfg.parallel_workers or None,
        )
        injector = None
        if cfg.fault_spike_rate > 0:
            injector = FaultInjector(FaultConfig(
                seed=cfg.seed + session_id,
                time_spike_rate=cfg.fault_spike_rate,
                time_spike_factor=cfg.fault_spike_factor,
            ))
        self.transcoder = StreamTranscoder(
            pipeline, estimator=server.estimator, fault_injector=injector,
        )
        self.stream = self.transcoder.open_session()
        self.slot_s = 1.0 / pipeline.fps


class NetworkServer:
    """The asyncio serving front-end."""

    def __init__(
        self,
        config: ServeNetConfig = ServeNetConfig(),
        estimator: Optional[WorkloadEstimator] = None,
        admission: Optional[AdmissionController] = None,
    ):
        self.config = config
        self.estimator = estimator or WorkloadEstimator(
            quantile=config.admission.quantile
        )
        self.admission = admission or AdmissionController(
            estimator=self.estimator,
            platform=config.platform,
            policy=config.admission,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        # One encode thread: CPU work leaves the event loop, and the
        # shared estimator/classifier/LUT see strictly serialized
        # updates (per-tile parallelism happens in the process pool
        # below this thread when enabled).
        self._encode_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-encode"
        )
        self._capacity_freed = asyncio.Event()
        self._next_session_id = 0
        self._active_handlers = 0

    # -- lifecycle -----------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        get_registry().set_gauge(
            "repro_serving_listening", 1, help="1 while the server accepts",
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._encode_pool.shutdown(wait=True)
        get_registry().set_gauge(
            "repro_serving_listening", 0, help="1 while the server accepts",
        )

    # -- connection handling -------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        registry = get_registry()
        self._active_handlers += 1
        registry.set_gauge(
            "repro_serving_active_connections", self._active_handlers,
            help="Open client connections",
        )
        try:
            await self._run_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            registry.inc("repro_serving_connection_resets_total",
                         help="Connections lost mid-session")
        except ProtocolError as exc:
            registry.inc("repro_serving_protocol_errors_total",
                         help="Wire-protocol violations")
            await self._try_send(writer, ErrorMsg("protocol", str(exc)))
        finally:
            self._active_handlers -= 1
            registry.set_gauge(
                "repro_serving_active_connections", self._active_handlers,
                help="Open client connections",
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _try_send(self, writer: asyncio.StreamWriter,
                        msg: Message) -> None:
        try:
            await write_message(writer, msg)
        except (ConnectionError, OSError):
            pass

    async def _run_connection(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        cfg = self.config
        registry = get_registry()
        msg = await asyncio.wait_for(
            read_message(reader), timeout=cfg.hello_timeout_s
        )
        if not isinstance(msg, Hello):
            raise ProtocolError(
                f"expected HELLO, got {msg.type.name}"
            )
        hello = msg
        if not (0 < hello.width <= cfg.max_frame_width
                and 0 < hello.height <= cfg.max_frame_height):
            await write_message(writer, HelloAck(
                decision="reject", reason=(
                    f"geometry {hello.width}x{hello.height} outside "
                    f"1..{cfg.max_frame_width} x 1..{cfg.max_frame_height}"
                ),
            ))
            return
        session_id = self._next_session_id
        self._next_session_id += 1
        decision, reason = self.admission.decide(session_id, hello)
        if decision is AdmissionDecision.PARK:
            await write_message(writer, HelloAck(
                decision="park", session_id=session_id, reason=reason,
            ))
            decision, reason = await self._wait_parked(session_id, hello)
        if decision is not AdmissionDecision.ACCEPT:
            await write_message(writer, HelloAck(
                decision="reject", session_id=session_id, reason=reason,
            ))
            return
        session = _Session(session_id, hello, self)
        await write_message(writer, HelloAck(
            decision="accept", session_id=session_id, reason=reason,
            queue_frames=cfg.queue_frames,
        ))
        span = get_tracer().span(
            "serving.session", session=session_id,
            width=hello.width, height=hello.height,
        )
        try:
            with span:
                await self._run_session(session, reader, writer)
            registry.inc("repro_serving_sessions_total", outcome="completed",
                         help="Finished sessions by outcome")
        except BaseException:
            registry.inc("repro_serving_sessions_total", outcome="aborted",
                         help="Finished sessions by outcome")
            raise
        finally:
            session.transcoder.close()
            self.admission.release(session_id)
            self._capacity_freed.set()

    async def _wait_parked(self, session_id: int, hello: Hello):
        """Hold a parked session until capacity frees or the park
        timeout elapses."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.park_timeout_s
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                self.admission.abandon_park()
                return AdmissionDecision.REJECT, "park timeout"
            self._capacity_freed.clear()
            try:
                await asyncio.wait_for(
                    self._capacity_freed.wait(), timeout=remaining
                )
            except asyncio.TimeoutError:
                self.admission.abandon_park()
                return AdmissionDecision.REJECT, "park timeout"
            decision, reason = self.admission.unpark(session_id, hello)
            if decision is not AdmissionDecision.PARK:
                return decision, reason

    # -- session tasks -------------------------------------------------
    async def _run_session(self, session: _Session,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        ingest_task = asyncio.ensure_future(
            self._ingest_loop(session, reader)
        )
        encode_task = asyncio.ensure_future(self._encode_loop(session))
        egress_task = asyncio.ensure_future(
            self._egress_loop(session, writer)
        )
        tasks = [ingest_task, encode_task, egress_task]
        try:
            await asyncio.gather(*tasks)
        finally:
            for t in tasks:
                if not t.done():
                    t.cancel()
            # Reap cancellations and secondary errors so no task dies
            # with an unretrieved exception.
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _ingest_loop(self, session: _Session,
                           reader: asyncio.StreamReader) -> None:
        cfg = self.config
        registry = get_registry()
        hello = session.hello
        while True:
            msg = await read_message(reader)
            if isinstance(msg, Bye):
                await session.ingest.put(_BYE_SENTINEL)
                return
            if not isinstance(msg, FrameMsg):
                raise ProtocolError(
                    f"expected FRAME or BYE, got {msg.type.name}"
                )
            if (msg.width, msg.height) != (hello.width, hello.height):
                raise ProtocolError(
                    f"FRAME geometry {msg.width}x{msg.height} disagrees "
                    f"with HELLO {hello.width}x{hello.height}"
                )
            registry.inc("repro_serving_frames_total", direction="in",
                         help="Frames crossing the wire by direction")
            registry.inc(
                "repro_serving_bytes_total", len(msg.luma), direction="in",
                help="Payload bytes crossing the wire by direction",
            )
            index = session.next_index
            session.next_index += 1
            session.stats.frames_received += 1
            if session.ingest.full():
                # Backpressure: the client outruns the encoder.  The
                # incoming frame is dropped (never buffered), keeping
                # the queue depth at its configured bound.
                session.stats.dropped_backpressure += 1
                registry.inc(
                    "repro_serving_frames_dropped_total",
                    reason="backpressure",
                    help="Frames dropped by the serving layer, by reason",
                )
                await self._egress_put(session, Encoded(
                    frame_index=index, frame_type="",
                    dropped="backpressure",
                ))
                continue
            luma = np.frombuffer(msg.luma, dtype=np.uint8).reshape(
                msg.height, msg.width
            ).copy()
            session.arrival_s[index] = time.perf_counter()
            session.ingest.put_nowait(Frame(luma, index=index))
            depth = session.ingest.qsize()
            if depth > session.stats.peak_ingest_depth:
                session.stats.peak_ingest_depth = depth
                registry.set_gauge(
                    "repro_serving_queue_depth_peak", depth, queue="ingest",
                    help="Highest per-session queue depth observed",
                )
            if cfg.queue_frames and depth > cfg.queue_frames:
                raise RuntimeError(
                    "ingest queue exceeded its bound"
                )  # pragma: no cover - guarded by maxsize

    async def _encode_loop(self, session: _Session) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await session.ingest.get()
            if item is _BYE_SENTINEL:
                outputs = await loop.run_in_executor(
                    self._encode_pool, session.stream.finish
                )
                await self._emit_outputs(session, outputs)
                await self._egress_put(
                    session,
                    Stats(session.stats.to_dict(self.config.queue_frames)),
                    coalesce=False,
                )
                await self._egress_put(
                    session, Bye("session complete"), coalesce=False
                )
                await session.egress.put(_BYE_SENTINEL)
                return
            try:
                outputs = await loop.run_in_executor(
                    self._encode_pool, session.stream.push, item
                )
            except CorruptFrameError as exc:
                raise ProtocolError(f"unencodable frame: {exc}") from exc
            await self._emit_outputs(session, outputs)

    async def _emit_outputs(self, session: _Session,
                            outputs: List[FrameOutput]) -> None:
        registry = get_registry()
        now = time.perf_counter()
        for out in outputs:
            arrival = session.arrival_s.pop(out.frame_index, None)
            if out.dropped is not None:
                if out.dropped == "corrupt":
                    session.stats.dropped_corrupt += 1
                else:
                    session.stats.dropped_deadline += 1
                await self._egress_put(session, Encoded(
                    frame_index=out.frame_index, frame_type="",
                    dropped=out.dropped,
                ))
                continue
            record = out.record
            critical = max(t.cpu_time_fmax for t in record.tiles)
            session.stats.frames_encoded += 1
            session.stats.total_bits += record.bits
            psnr = float(np.mean([t.psnr for t in record.tiles]))
            session.stats.psnr_sum += psnr
            registry.inc("repro_serving_frames_encoded_total",
                         help="Frames encoded by the serving layer")
            if critical > session.slot_s:
                session.stats.deadline_misses += 1
                registry.inc(
                    "repro_serving_deadline_miss_total",
                    help="Encoded frames whose critical tile exceeded "
                         "the 1/FPS slot",
                )
            if arrival is not None:
                latency = now - arrival
                session.stats.latencies_s.append(latency)
                registry.observe(
                    "repro_serving_frame_latency_seconds", latency,
                    help="End-to-end frame latency (arrival to encoded)",
                )
            recon = out.reconstruction
            await self._egress_put(session, Encoded(
                frame_index=out.frame_index,
                frame_type=out.frame_type.value,
                width=recon.shape[1], height=recon.shape[0],
                bits=record.bits, psnr=psnr,
                luma=recon.tobytes(),
            ))

    async def _egress_put(self, session: _Session, msg: Message,
                          coalesce: bool = True) -> None:
        """Queue an outbound message, coalescing on a slow reader.

        When the egress queue is full and ``coalesce`` is allowed, the
        oldest undelivered ENCODED frame is discarded — the client
        gets the freshest results and the queue never exceeds its
        bound.  Control messages (STATS/BYE) always enqueue.
        """
        registry = get_registry()
        if coalesce:
            while session.egress.full():
                try:
                    stale = session.egress.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - race guard
                    break
                if stale is _BYE_SENTINEL:
                    session.egress.put_nowait(stale)
                    break
                session.stats.dropped_egress += 1
                registry.inc(
                    "repro_serving_frames_dropped_total", reason="egress",
                    help="Frames dropped by the serving layer, by reason",
                )
        await session.egress.put(msg)
        depth = session.egress.qsize()
        if depth > session.stats.peak_egress_depth:
            session.stats.peak_egress_depth = depth
            registry.set_gauge(
                "repro_serving_queue_depth_peak", depth, queue="egress",
                help="Highest per-session queue depth observed",
            )

    async def _egress_loop(self, session: _Session,
                           writer: asyncio.StreamWriter) -> None:
        registry = get_registry()
        while True:
            msg = await session.egress.get()
            if msg is _BYE_SENTINEL:
                return
            await write_message(writer, msg)
            if isinstance(msg, Encoded):
                registry.inc("repro_serving_frames_total", direction="out",
                             help="Frames crossing the wire by direction")
                registry.inc(
                    "repro_serving_bytes_total", len(msg.luma),
                    direction="out",
                    help="Payload bytes crossing the wire by direction",
                )
