"""End-to-end smoke gate for the serving layer (``make serve-smoke``).

Starts the network server on an ephemeral port, drives a few short
load-generator sessions against it, and fails loudly unless the run
was clean: every session accepted, zero protocol errors, frames
actually encoded, and a non-empty serving metrics snapshot.
"""

from __future__ import annotations

import asyncio
import sys

from repro.observability import get_registry
from repro.serving.loadgen import LoadGenConfig, run_loadgen_async
from repro.serving.server import NetworkServer, ServeNetConfig


async def _run(sessions: int, frames: int) -> int:
    server = NetworkServer(ServeNetConfig(port=0, seed=7))
    await server.start()
    try:
        report = await run_loadgen_async(LoadGenConfig(
            port=server.port, sessions=sessions, frames=frames,
            width=96, height=96, seed=7, arrival="poisson", rate_hz=50.0,
        ))
    finally:
        await server.aclose()

    print(report.summary())
    failures = []
    if report.protocol_errors:
        failures.append(f"{report.protocol_errors} protocol error(s)")
    if report.errored:
        failures.append(f"{report.errored} session error(s)")
    if report.accepted != sessions:
        failures.append(
            f"only {report.accepted}/{sessions} sessions accepted"
        )
    if report.frames_encoded == 0:
        failures.append("no frames encoded")
    snapshot = [
        fam for fam in get_registry().to_dict()["metrics"]
        if fam["name"].startswith("repro_serving_") and fam["samples"]
    ]
    if not snapshot:
        failures.append("serving metrics snapshot is empty")
    print(f"serving metrics series: {len(snapshot)}")
    if failures:
        print("serve-smoke FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("serve-smoke OK")
    return 0


def main() -> int:
    return asyncio.run(_run(sessions=3, frames=16))


if __name__ == "__main__":
    raise SystemExit(main())
