"""Journaling-overhead benchmark (``python -m repro.serving.bench_journal``).

Measures end-to-end serving throughput (frames/s through the loopback
network path, loadgen to encoded output) with the per-session journal
off and on, and records the result in the ``BENCH_<n>.json`` schema
used by ``repro bench``.  The claim under test: making every GOP
durable — one checksummed, fsync'd append at each GOP boundary — costs
under 2% of serving throughput, because the append runs on a dedicated
journal writer thread that overlaps encode work, and one append
amortizes over a whole GOP of frames.

Methodology: frames are paced deterministically (``frame_interval_s``)
at ~75% of the encode thread's capacity, the operating point of a
real-time transcoding service — closed-loop blasting would saturate
admission control and turn the comparison into drop-count noise.  Each
round runs both modes back to back, alternating which goes first to
cancel within-process drift, and the headline overhead is computed
from per-mode *medians* so a single slow ``fsync`` round cannot
dominate the estimate.
"""

from __future__ import annotations

import argparse
import asyncio
import datetime
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.bench import git_sha, repo_root
from repro.observability import scoped
from repro.serving.loadgen import LoadGenConfig, run_loadgen_async
from repro.serving.server import NetworkServer, ServeNetConfig

_SESSIONS = 2
_FRAMES = 48
_GOP = 8
_FRAME_INTERVAL_S = 0.01


async def _one_round(journal_dir: Optional[str]) -> float:
    """One serving run; returns throughput in frames/s."""
    server = NetworkServer(ServeNetConfig(
        port=0, seed=17, journal_dir=journal_dir, journal_fsync=True,
    ))
    await server.start()
    try:
        start = time.perf_counter()
        report = await run_loadgen_async(LoadGenConfig(
            port=server.port, sessions=_SESSIONS, frames=_FRAMES,
            width=96, height=96, gop=_GOP, seed=17,
            rate_hz=100.0, frame_interval_s=_FRAME_INTERVAL_S,
        ))
        elapsed = time.perf_counter() - start
    finally:
        await server.aclose()
    if report.errored or report.protocol_errors:
        raise RuntimeError(f"benchmark run errored: {report.summary()}")
    return report.frames_encoded / elapsed


def _measure(rounds: int) -> dict:
    off: List[float] = []
    on: List[float] = []
    with tempfile.TemporaryDirectory() as root:
        # One warmup each (LUT warm-up, import costs), then paired
        # rounds, alternating which mode runs first.
        with scoped():
            asyncio.run(_one_round(None))
        with scoped():
            asyncio.run(_one_round(str(Path(root) / "warmup")))
        for i in range(rounds):
            journal_dir = str(Path(root) / f"round-{i}")
            if i % 2 == 0:
                with scoped():
                    off.append(asyncio.run(_one_round(None)))
                with scoped():
                    on.append(asyncio.run(_one_round(journal_dir)))
            else:
                with scoped():
                    on.append(asyncio.run(_one_round(journal_dir)))
                with scoped():
                    off.append(asyncio.run(_one_round(None)))
    return {"off": off, "on": on}


def _record(name: str, rates: List[float]) -> dict:
    frames = _SESSIONS * _FRAMES
    mean_rate = statistics.fmean(rates)
    return {
        "name": name,
        "group": "serving-journal",
        "mean_s": frames / mean_rate,
        "stddev_s": (
            statistics.stdev([frames / r for r in rates])
            if len(rates) > 1 else 0.0
        ),
        "rounds": len(rates),
        "frames_per_s": mean_rate,
        "median_frames_per_s": statistics.median(rates),
        "best_frames_per_s": max(rates),
    }


def summarize(rates: dict) -> dict:
    records = [
        _record("serve_journal_off", rates["off"]),
        _record("serve_journal_on", rates["on"]),
    ]
    # Medians are the headline: scheduler or fsync hiccups only ever
    # slow a round down, so the per-mode median is the cleanest robust
    # estimate of each path's cost (best/mean reported alongside).
    med_off = statistics.median(rates["off"])
    med_on = statistics.median(rates["on"])
    best_off, best_on = max(rates["off"]), max(rates["on"])
    mean_off = statistics.fmean(rates["off"])
    mean_on = statistics.fmean(rates["on"])
    records.append({
        "name": "journal_overhead",
        "group": "serving-journal",
        "sessions": _SESSIONS,
        "frames_per_session": _FRAMES,
        "gop": _GOP,
        "frame_interval_s": _FRAME_INTERVAL_S,
        "fsync_per_gop": True,
        "overhead_frac_median": (med_off - med_on) / med_off,
        "overhead_frac_best": (best_off - best_on) / best_off,
        "overhead_frac_mean": (mean_off - mean_on) / mean_off,
        "claim": "journaling at GOP granularity costs < 2% throughput",
    })
    return {
        "machine_info": {
            "node": platform.node(),
            "machine": platform.machine(),
            "system": platform.system(),
            "release": platform.release(),
            "python_implementation": platform.python_implementation(),
            "python_version": platform.python_version(),
        },
        "datetime": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "git_sha": git_sha(),
        "groups": ["serving-journal"],
        "benchmarks": records,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.bench_journal", description=__doc__,
    )
    parser.add_argument("--rounds", type=int, default=9,
                        help="measurement rounds per mode (default 9)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: BENCH_4.json at the "
                             "repo root; refuses to overwrite)")
    args = parser.parse_args(argv)
    out = args.out or (repo_root() / "BENCH_4.json")
    if out.exists():
        parser.error(f"refusing to overwrite existing {out}")
    summary = summarize(_measure(args.rounds))
    with open(out, "x") as fh:
        fh.write(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {out}")
    for rec in summary["benchmarks"]:
        if "frames_per_s" in rec:
            print(f"  {rec['name']:<20} "
                  f"{rec['median_frames_per_s']:8.1f} frames/s median"
                  f"  (mean {rec['frames_per_s']:.1f},"
                  f" best {rec['best_frames_per_s']:.1f})")
        else:
            print(f"  {rec['name']:<20} "
                  f"median {rec['overhead_frac_median']:+.2%}"
                  f"  best {rec['overhead_frac_best']:+.2%}"
                  f"  mean {rec['overhead_frac_mean']:+.2%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
