"""Admission control for network sessions.

A HELLO declares a stream's geometry, frame rate and (optionally)
content class.  The controller prices the session with the workload-LUT
estimator — exactly the predictor the pipeline itself uses for
allocation (§III-D1) — and then asks Algorithm 2's admission stage
(:meth:`~repro.allocation.proposed.ProposedAllocator.admit`) whether
the *whole* set of active sessions plus the candidate still fits the
``1/FPS`` slot capacity of the platform.  Three outcomes:

* **accept** — everything fits; the session is charged its estimated
  core demand until :meth:`AdmissionController.release`.
* **park** — the candidate alone overflows capacity but a bounded
  waiting room has space; the server holds the connection and retries
  when an active session ends.
* **reject** — capacity and waiting room are both exhausted.

Sustained overload (a run of park/reject decisions) trips a
server-level degradation ladder: instead of admitting sessions that
would miss deadlines, *new* sessions are admitted with progressively
lighter encoder configurations (QP bump, then search-window shrink —
the same rungs as :class:`repro.resilience.degradation`'s
per-stream ladder).  A run of accepts with occupancy back under the
relief threshold walks the ladder back down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.allocation.demand import UserDemand, cores_needed
from repro.allocation.proposed import ProposedAllocator
from repro.ladder.config import RUNG_MULTIPLE
from repro.analysis.motion_probe import MotionClass
from repro.analysis.texture import TextureClass
from repro.codec.config import FrameType
from repro.observability import get_registry, get_tracer
from repro.platform.mpsoc import MpsocConfig, XEON_E5_2667
from repro.platform.schedule import ThreadTask
from repro.policy.compiler import CompiledPolicy
from repro.policy.energy import EnergyBudgetScheduler
from repro.resilience.degradation import DegradationLevel
from repro.serving.protocol import Hello
from repro.video.generator import ContentClass
from repro.workload.estimator import WorkloadEstimator
from repro.workload.keys import WorkloadKey, area_bucket

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "FleetAdmission",
    "SessionTicket",
    "WorkerLoad",
]


class AdmissionDecision(enum.Enum):
    ACCEPT = "accept"
    PARK = "park"
    REJECT = "reject"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the admission controller."""

    #: Fraction of the platform's cores sessions may occupy (< 1 keeps
    #: headroom for allocator/OS jitter).
    utilization: float = 1.0
    #: Waiting-room size for parked sessions.
    park_capacity: int = 2
    #: Consecutive non-accept decisions before the overload ladder
    #: climbs one rung.
    overload_trip: int = 3
    #: Occupancy fraction below which an accept walks the ladder down.
    relief_occupancy: float = 0.75
    #: Highest rung of the server-level ladder (new sessions only ever
    #: get lighter configs; the server never drops admitted streams).
    max_level: DegradationLevel = DegradationLevel.WINDOW_SHRINK
    #: Pessimism of the LUT estimate (``None`` = histogram mean; e.g.
    #: 0.9 prices sessions at the 90th percentile of observed cost).
    quantile: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 < self.utilization <= 1:
            raise ValueError("utilization must be in (0, 1]")
        if self.park_capacity < 0:
            raise ValueError("park_capacity must be >= 0")
        if self.overload_trip < 1:
            raise ValueError("overload_trip must be >= 1")


@dataclass
class SessionTicket:
    """One admitted session's standing charge against the slot cap."""

    session_id: int
    demand: UserDemand
    cores: float
    #: Resolved policy tenant the charge bills to (``""`` = no policy).
    tenant: str = ""


class AdmissionController:
    """Prices HELLOs with the LUT and admits against Algorithm 2."""

    def __init__(
        self,
        estimator: Optional[WorkloadEstimator] = None,
        allocator: Optional[ProposedAllocator] = None,
        platform: MpsocConfig = XEON_E5_2667,
        policy: AdmissionPolicy = AdmissionPolicy(),
    ):
        self.estimator = estimator or WorkloadEstimator(
            quantile=policy.quantile
        )
        self.platform = platform
        self.allocator = allocator or ProposedAllocator(platform=platform)
        self.policy = policy
        self._active: Dict[int, SessionTicket] = {}
        self._parked = 0
        self._overload_streak = 0
        self._level = DegradationLevel.NONE
        self._draining = False
        #: Tenant policy (``None`` = pre-policy behaviour, untouched).
        self.compiled: Optional[CompiledPolicy] = None
        self.energy: Optional[EnergyBudgetScheduler] = None
        self._base_platform = platform

    # -- tenant policy -------------------------------------------------
    def set_policy(self, compiled: Optional[CompiledPolicy],
                   energy: Optional[EnergyBudgetScheduler] = None) -> None:
        """(Re)wire the tenant policy; hot-reload entry point.

        A policy with DVFS bounds swaps in an allocator on the clamped
        platform, so every capacity estimate from here on prices
        against the frequencies the policy permits.  ``None`` restores
        the pre-policy controller exactly.
        """
        self.compiled = compiled
        self.energy = energy
        platform = (compiled.clamp_platform(self._base_platform)
                    if compiled is not None else self._base_platform)
        if platform is not self.platform:
            self.platform = platform
            self.allocator = ProposedAllocator(platform=platform)

    def _tenant_name(self, hello: Hello) -> str:
        if self.compiled is None:
            return ""
        return self.compiled.resolve_name(hello.tenant)

    def tenant_occupancy(self, tenant: str) -> float:
        """Core charge of one tenant's active sessions."""
        return sum(t.cores for t in self._active.values()
                   if t.tenant == tenant)

    def tenant_occupancies(self) -> Dict[str, float]:
        """Per-tenant core charges (only tenants with active sessions)."""
        out: Dict[str, float] = {}
        for ticket in self._active.values():
            if ticket.tenant:
                out[ticket.tenant] = (out.get(ticket.tenant, 0.0)
                                      + ticket.cores)
        return out

    def _entitlement_cores(self, tenant: str) -> Optional[float]:
        """The tenant's hard share of the slot capacity (its normalized
        policy weight), or ``None`` without a policy."""
        if self.compiled is None or not tenant:
            return None
        rt = self.compiled.tenants[tenant]
        return rt.capacity_fraction * self.capacity_cores

    def _energy_gate(self, tenant: str) -> Tuple[bool, str]:
        if self.energy is None or not tenant:
            return True, ""
        return self.energy.admits(tenant)

    # -- pricing -------------------------------------------------------
    def estimate_session(self, hello: Hello) -> Tuple[float, UserDemand]:
        """Predicted per-slot demand of a session, from its HELLO.

        The LUT key describes the session's steady state: a P frame at
        the pipeline's default QP/window with mid texture and high
        motion (the conservative prior before any tile statistics
        exist); once the LUT has observations for the stream's content
        class, the estimate sharpens automatically.
        """
        content = None
        if hello.content_class:
            try:
                content = ContentClass(hello.content_class)
            except ValueError:
                content = None
        area = max(1, hello.width * hello.height)
        key = WorkloadKey(
            texture=TextureClass.MEDIUM,
            motion=MotionClass.HIGH,
            qp=32,
            search_window=64,
            frame_type=FrameType.P,
            area_bucket=area_bucket(area),
            content_class=content,
        )
        cpu_per_frame = self.estimator.estimate(key, area)
        demand = UserDemand(
            user_id=0,
            threads=[ThreadTask(thread_id=0, user_id=0,
                                cpu_time_fmax=cpu_per_frame, tile_index=0)],
        )
        return cores_needed(demand, hello.fps), demand

    def estimate_ladder(
        self, hello: Hello,
        rungs: Sequence[Tuple[int, int]],
    ) -> Tuple[float, UserDemand, List[float]]:
        """Price a whole rendition ladder: the sum of per-rung estimates.

        Each rung is priced with its own LUT key — the rung's area
        bucket plus the :attr:`WorkloadKey.resolution` tag the ladder
        sessions record under (``None`` for the full-resolution primary,
        so its statistics pool with pre-ladder sessions).  The ladder's
        demand carries one thread per rung, so Algorithm 2 admits or
        refuses the *whole* ladder, exactly as §III-D2 charges a
        session for everything it will run per slot.
        """
        content = None
        if hello.content_class:
            try:
                content = ContentClass(hello.content_class)
            except ValueError:
                content = None
        threads = []
        per_rung: List[float] = []
        for i, (w, h) in enumerate(rungs):
            area = max(1, w * h)
            key = WorkloadKey(
                texture=TextureClass.MEDIUM,
                motion=MotionClass.HIGH,
                qp=32,
                search_window=64,
                frame_type=FrameType.P,
                area_bucket=area_bucket(area),
                content_class=content,
                resolution=None if i == 0 else h,
            )
            cpu = self.estimator.estimate(key, area)
            per_rung.append(cpu)
            threads.append(ThreadTask(
                thread_id=i, user_id=0, cpu_time_fmax=cpu, tile_index=i,
            ))
        demand = UserDemand(user_id=0, threads=threads)
        return cores_needed(demand, hello.fps), demand, per_rung

    # -- occupancy -----------------------------------------------------
    @property
    def capacity_cores(self) -> float:
        return self.platform.num_cores * self.policy.utilization

    @property
    def occupancy_cores(self) -> float:
        return sum(t.cores for t in self._active.values())

    @property
    def active_sessions(self) -> int:
        return len(self._active)

    @property
    def level(self) -> DegradationLevel:
        """Current rung of the server-level overload ladder."""
        return self._level

    def lighten(self, qp: int, window: int,
                tenant: str = "") -> Tuple[int, int]:
        """Apply the overload ladder to a new session's base config.

        With a policy loaded, the effective rung is capped by the
        tenant's compiled degradation ceiling — an emergency tenant
        whose PSNR floor compiled to ``NONE`` is admitted at full
        quality even while the server-level ladder is up.
        """
        level = self._level
        if self.compiled is not None:
            level = min(level, self.compiled.resolve(tenant).max_level)
        if level >= DegradationLevel.QP_BUMP:
            qp = min(51, qp + 2)
        if level >= DegradationLevel.WINDOW_SHRINK:
            window = max(8, window // 2)
        return qp, window

    # -- decisions -----------------------------------------------------
    def decide(self, session_id: int, hello: Hello,
               fps: Optional[float] = None) -> Tuple[AdmissionDecision, str]:
        """Admission decision for one HELLO.

        ``fps`` overrides the HELLO's frame rate (the server's slot
        clock wins when they disagree).  An ACCEPT immediately charges
        the session; callers must :meth:`release` it when it ends.
        """
        fps = fps if fps is not None else hello.fps
        if fps <= 0:
            return AdmissionDecision.REJECT, "non-positive fps"
        if self._draining:
            get_registry().inc(
                "repro_serving_admission_total", decision="reject",
                help="Admission decisions by outcome",
            )
            return (AdmissionDecision.REJECT,
                    "server draining; admissions stopped")
        tenant = self._tenant_name(hello)
        allowed, why = self._energy_gate(tenant)
        if not allowed:
            registry = get_registry()
            registry.inc(
                "repro_serving_admission_total", decision="reject",
                help="Admission decisions by outcome",
            )
            registry.inc(
                "repro_serving_policy_rejects_total", tenant=tenant,
                help="Admissions refused by the energy/brownout policy",
            )
            return AdmissionDecision.REJECT, why
        cores, demand = self.estimate_session(hello)
        entitled = self._entitlement_cores(tenant)
        if (entitled is not None
                and self.tenant_occupancy(tenant) + cores > entitled + 1e-9):
            registry = get_registry()
            registry.inc(
                "repro_serving_tenant_entitlement_total", tenant=tenant,
                help="Admissions deferred by a tenant's entitlement cap",
            )
            occupied = self.tenant_occupancy(tenant)
            detail = (
                f"tenant {tenant!r} entitlement exceeded: need "
                f"{cores:.2f} cores, {occupied:.2f}/{entitled:.2f} "
                "entitled cores occupied"
            )
            if self._parked < self.policy.park_capacity:
                self._parked += 1
                decision, reason = AdmissionDecision.PARK, detail + "; parked"
            else:
                decision, reason = (AdmissionDecision.REJECT,
                                    detail + "; waiting room full")
            registry.inc(
                "repro_serving_admission_total", decision=decision.value,
                help="Admission decisions by outcome",
            )
            return decision, reason
        demands = [
            t.demand for t in self._active.values()
        ]
        candidate = UserDemand(
            user_id=session_id,
            threads=[
                ThreadTask(thread_id=t.thread_id, user_id=session_id,
                           cpu_time_fmax=t.cpu_time_fmax,
                           tile_index=t.tile_index)
                for t in demand.threads
            ],
        )
        demands.append(candidate)
        capacity = max(1, int(self.capacity_cores))
        admitted, _, _ = self.allocator.admit(demands, fps, capacity=capacity)
        fits = len(admitted) == len(demands)
        registry = get_registry()
        if fits:
            self._active[session_id] = SessionTicket(
                session_id=session_id, demand=candidate, cores=cores,
                tenant=tenant,
            )
            decision, reason = AdmissionDecision.ACCEPT, (
                f"estimated {cores:.2f} cores of "
                f"{self.capacity_cores:.0f} "
                f"({self.occupancy_cores:.2f} occupied)"
            )
            if tenant:
                registry.inc(
                    "repro_serving_tenant_sessions_total", tenant=tenant,
                    help="Sessions admitted per policy tenant",
                )
            self._observe_accept()
        elif self._parked < self.policy.park_capacity:
            self._parked += 1
            decision, reason = AdmissionDecision.PARK, (
                f"slot cap exceeded: need {cores:.2f} cores, "
                f"{self.occupancy_cores:.2f}/{self.capacity_cores:.0f} "
                "occupied; parked"
            )
            self._observe_overload()
        else:
            decision, reason = AdmissionDecision.REJECT, (
                f"slot cap exceeded: need {cores:.2f} cores, "
                f"{self.occupancy_cores:.2f}/{self.capacity_cores:.0f} "
                "occupied; waiting room full"
            )
            self._observe_overload()
        registry.inc(
            "repro_serving_admission_total", decision=decision.value,
            help="Admission decisions by outcome",
        )
        registry.set_gauge(
            "repro_serving_occupancy_cores", self.occupancy_cores,
            help="Estimated core demand of active sessions",
        )
        registry.set_gauge(
            "repro_serving_overload_level", int(self._level),
            help="Server-level overload degradation rung",
        )
        get_tracer().event(
            "admission.decide", session=session_id,
            decision=decision.value, cores=cores,
            occupancy=self.occupancy_cores, level=self._level.name,
        )
        return decision, reason

    def decide_ladder(
        self, session_id: int, hello: Hello,
        fps: Optional[float] = None,
    ) -> Tuple[AdmissionDecision, str, Tuple[Tuple[int, int], ...]]:
        """Admission decision for a HELLO that requests a ladder.

        Returns ``(decision, reason, kept_rungs)`` where ``kept_rungs``
        are the ``(width, height)`` pairs actually admitted (largest
        first, a prefix of the request).  Degradation order: before
        parking or shedding the session, the controller drops rungs
        from the **bottom** of the ladder — the primary full-resolution
        rung is the clinical deliverable and is never dropped; low
        rungs are bandwidth conveniences.  Only when the primary alone
        still overflows capacity does the decision fall through to the
        ordinary park/reject path.
        """
        fps = fps if fps is not None else hello.fps
        registry = get_registry()
        if fps <= 0:
            return AdmissionDecision.REJECT, "non-positive fps", ()
        rungs = hello.ladder or ((hello.width, hello.height),)
        for w, h in rungs:
            if w > hello.width or h > hello.height:
                registry.inc(
                    "repro_serving_admission_total", decision="reject",
                    help="Admission decisions by outcome",
                )
                return (
                    AdmissionDecision.REJECT,
                    f"rung {w}x{h} exceeds {hello.width}x{hello.height} "
                    "ingest: ladders never upscale",
                    (),
                )
            if w < 1 or h < 1 or w % RUNG_MULTIPLE or h % RUNG_MULTIPLE:
                registry.inc(
                    "repro_serving_admission_total", decision="reject",
                    help="Admission decisions by outcome",
                )
                return (
                    AdmissionDecision.REJECT,
                    f"rung {w}x{h} is not encodable: dimensions must be "
                    f"positive multiples of {RUNG_MULTIPLE}",
                    (),
                )
        areas = [w * h for w, h in rungs]
        if any(a <= b for a, b in zip(areas, areas[1:])):
            registry.inc(
                "repro_serving_admission_total", decision="reject",
                help="Admission decisions by outcome",
            )
            return (
                AdmissionDecision.REJECT,
                "ladder rungs must be strictly decreasing in area",
                (),
            )
        if self._draining:
            registry.inc(
                "repro_serving_admission_total", decision="reject",
                help="Admission decisions by outcome",
            )
            return (AdmissionDecision.REJECT,
                    "server draining; admissions stopped", ())
        tenant = self._tenant_name(hello)
        allowed, why = self._energy_gate(tenant)
        if not allowed:
            registry.inc(
                "repro_serving_admission_total", decision="reject",
                help="Admission decisions by outcome",
            )
            registry.inc(
                "repro_serving_policy_rejects_total", tenant=tenant,
                help="Admissions refused by the energy/brownout policy",
            )
            return AdmissionDecision.REJECT, why, ()
        trimmed = 0
        if self.compiled is not None:
            max_rungs = self.compiled.max_rungs_for(hello.tenant)
            if max_rungs and len(rungs) > max_rungs:
                # Ladder-rung entitlement: the policy caps how many
                # renditions this tenant may run per stream; low rungs
                # beyond the cap are trimmed before pricing.
                trimmed = len(rungs) - max_rungs
                rungs = rungs[:max_rungs]
                registry.inc(
                    "repro_serving_ladder_rungs_trimmed_total", trimmed,
                    tenant=tenant,
                    help="Ladder rungs trimmed by tenant entitlements",
                )
        entitled = self._entitlement_cores(tenant)
        active = [t.demand for t in self._active.values()]
        capacity = max(1, int(self.capacity_cores))
        # Rung-drop-before-shed: try the full ladder, then successively
        # shorter prefixes, before giving up on the session entirely.
        for cut in range(len(rungs), 0, -1):
            trial = rungs[:cut]
            cores, demand, _ = self.estimate_ladder(hello, trial)
            if (entitled is not None and self.tenant_occupancy(tenant)
                    + cores > entitled + 1e-9):
                continue
            candidate = UserDemand(
                user_id=session_id,
                threads=[
                    ThreadTask(thread_id=t.thread_id, user_id=session_id,
                               cpu_time_fmax=t.cpu_time_fmax,
                               tile_index=t.tile_index)
                    for t in demand.threads
                ],
            )
            admitted, _, _ = self.allocator.admit(
                active + [candidate], fps, capacity=capacity,
            )
            if len(admitted) != len(active) + 1:
                continue
            self._active[session_id] = SessionTicket(
                session_id=session_id, demand=candidate, cores=cores,
                tenant=tenant,
            )
            dropped = len(rungs) - cut
            if dropped:
                registry.inc(
                    "repro_serving_ladder_rungs_dropped_total", dropped,
                    help="Ladder rungs dropped at admission for capacity",
                )
            if tenant:
                registry.inc(
                    "repro_serving_tenant_sessions_total", tenant=tenant,
                    help="Sessions admitted per policy tenant",
                )
            reason = (
                f"ladder of {cut}/{len(rungs)} rungs at estimated "
                f"{cores:.2f} cores of {self.capacity_cores:.0f} "
                f"({self.occupancy_cores:.2f} occupied)"
                + (f"; dropped {dropped} low rung(s)" if dropped else "")
                + (f"; trimmed {trimmed} rung(s) by tenant entitlement"
                   if trimmed else "")
            )
            self._observe_accept()
            registry.inc(
                "repro_serving_admission_total", decision="accept",
                help="Admission decisions by outcome",
            )
            registry.set_gauge(
                "repro_serving_occupancy_cores", self.occupancy_cores,
                help="Estimated core demand of active sessions",
            )
            get_tracer().event(
                "admission.decide_ladder", session=session_id,
                decision="accept", rungs=cut, dropped=dropped,
                cores=cores, occupancy=self.occupancy_cores,
            )
            return AdmissionDecision.ACCEPT, reason, tuple(trial)
        # Even the primary alone does not fit: ordinary park/reject.
        cores, _, _ = self.estimate_ladder(hello, rungs[:1])
        if self._parked < self.policy.park_capacity:
            self._parked += 1
            decision, reason = AdmissionDecision.PARK, (
                f"slot cap exceeded even for the primary rung: need "
                f"{cores:.2f} cores, {self.occupancy_cores:.2f}/"
                f"{self.capacity_cores:.0f} occupied; parked"
            )
        else:
            decision, reason = AdmissionDecision.REJECT, (
                f"slot cap exceeded even for the primary rung: need "
                f"{cores:.2f} cores, {self.occupancy_cores:.2f}/"
                f"{self.capacity_cores:.0f} occupied; waiting room full"
            )
        self._observe_overload()
        registry.inc(
            "repro_serving_admission_total", decision=decision.value,
            help="Admission decisions by outcome",
        )
        get_tracer().event(
            "admission.decide_ladder", session=session_id,
            decision=decision.value, cores=cores,
            occupancy=self.occupancy_cores,
        )
        return decision, reason, ()

    def unpark(self, session_id: int, hello: Hello,
               fps: Optional[float] = None) -> Tuple[AdmissionDecision, str]:
        """Retry admission for a parked session (frees its park slot;
        a PARK outcome re-takes it)."""
        self._parked = max(0, self._parked - 1)
        return self.decide(session_id, hello, fps)

    def unpark_ladder(
        self, session_id: int, hello: Hello,
        fps: Optional[float] = None,
    ) -> Tuple[AdmissionDecision, str, Tuple[Tuple[int, int], ...]]:
        """Ladder variant of :meth:`unpark`."""
        self._parked = max(0, self._parked - 1)
        return self.decide_ladder(session_id, hello, fps)

    def abandon_park(self) -> None:
        """A parked session gave up (timeout or disconnect)."""
        self._parked = max(0, self._parked - 1)

    # -- drain / recovery ----------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Stop admitting: every subsequent HELLO (and RESUME) is
        rejected while active sessions run to completion or park."""
        self._draining = True
        get_registry().set_gauge(
            "repro_serving_draining", 1,
            help="1 while the server refuses new admissions",
        )

    def replan_after_stall(self, session_id: int,
                           fps: float) -> List[int]:
        """Watchdog recovery: re-pack the active sessions around the
        stalled session's core.

        The wedged encode is indistinguishable from a sick core, so the
        response is Algorithm 2's core-failure path: build the current
        packing, mark the core hosting the stalled session's threads
        failed, and let
        :meth:`~repro.allocation.proposed.ProposedAllocator.reallocate`
        evict it, shed what no longer fits and re-place the orphans.
        Shed sessions lose their capacity tickets (they are the lowest
        priority — the server keeps serving them degraded, but their
        charge stops distorting admission).  Returns the shed ids.

        With a policy loaded, victims are chosen in the policy's shed
        order — lowest-priority tenants first, largest charge first
        within a tenant — instead of the allocator's capacity-greedy
        default; the top tier is only touched when nothing else fits.
        """
        if fps <= 0 or session_id not in self._active:
            return []
        demands = [t.demand for t in self._active.values()]
        result = self.allocator.allocate(demands, fps)
        stalled_core = None
        for slot in result.schedule.slots:
            if any(t.user_id == session_id for t in slot.tasks):
                stalled_core = slot.core_id
                break
        if stalled_core is None:
            return []
        if self.compiled is None:
            repacked = self.allocator.reallocate(result, [stalled_core], fps)
            shed_ids = sorted(d.user_id for d in repacked.shed)
        else:
            shed_ids = self._policy_shed_for_capacity(fps, {stalled_core})
        for sid in shed_ids:
            self._active.pop(sid, None)
        registry = get_registry()
        registry.inc(
            "repro_serving_watchdog_replans_total",
            help="Allocator re-packs triggered by the encode watchdog",
        )
        registry.set_gauge(
            "repro_serving_occupancy_cores", self.occupancy_cores,
            help="Estimated core demand of active sessions",
        )
        get_tracer().event(
            "admission.replan_after_stall", session=session_id,
            failed_core=stalled_core, shed=len(shed_ids),
        )
        return shed_ids

    def _policy_shed_victims(self) -> List[int]:
        """Active session ids in strict policy shed order (first victim
        first): sheddable tenants by their compiled ``shed_rank``, the
        top tier last; within a tenant, the largest charge first so the
        fewest sessions are lost."""
        def key(ticket: SessionTicket):
            rt = self.compiled.resolve(ticket.tenant)
            sheddable = rt.shed_rank is not None
            return (
                0 if sheddable else 1,
                rt.shed_rank if sheddable else 0,
                -ticket.cores,
                ticket.session_id,
            )
        return [t.session_id for t in sorted(self._active.values(), key=key)]

    def _policy_shed_for_capacity(self, fps: float,
                                  failed_cores: set) -> List[int]:
        """Shed sessions in policy order until the survivors pack onto
        the surviving cores."""
        remaining = {t.session_id: t.demand for t in self._active.values()}
        victims = self._policy_shed_victims()
        shed_ids: List[int] = []
        while remaining:
            trial = self.allocator.allocate(
                list(remaining.values()), fps, failed_cores=failed_cores,
            )
            if not trial.rejected:
                break
            victim = next((sid for sid in victims if sid in remaining), None)
            if victim is None:  # pragma: no cover - victims covers active
                shed_ids.extend(sorted(d.user_id for d in trial.rejected))
                break
            del remaining[victim]
            shed_ids.append(victim)
        return shed_ids

    def release(self, session_id: int) -> None:
        """An admitted session ended: free its capacity."""
        ticket = self._active.pop(session_id, None)
        if ticket is None:
            return
        get_registry().set_gauge(
            "repro_serving_occupancy_cores", self.occupancy_cores,
            help="Estimated core demand of active sessions",
        )
        get_tracer().event(
            "admission.release", session=session_id,
            occupancy=self.occupancy_cores,
        )

    # -- overload ladder -----------------------------------------------
    def _observe_overload(self) -> None:
        self._overload_streak += 1
        if (self._overload_streak >= self.policy.overload_trip
                and self._level < self.policy.max_level):
            self._level = DegradationLevel(self._level + 1)
            self._overload_streak = 0
            get_registry().inc(
                "repro_serving_overload_escalations_total",
                help="Overload-ladder escalations",
            )

    def _observe_accept(self) -> None:
        self._overload_streak = 0
        relief = self.capacity_cores * self.policy.relief_occupancy
        if self._level > DegradationLevel.NONE and (
                self.occupancy_cores <= relief):
            self._level = DegradationLevel(self._level - 1)


# ----------------------------------------------------------------------
# Cluster-level admission (Algorithm 2, one level up)
# ----------------------------------------------------------------------
@dataclass
class WorkerLoad:
    """One worker's load as last gossiped over the heartbeat channel.

    ``pending_cores`` is the supervisor's optimistic charge for
    placements routed since the last gossip tick — without it, every
    session arriving inside one heartbeat interval would dogpile onto
    the same "least loaded" worker.  A fresh gossip snapshot (which by
    then reflects the worker's own admission accounting) resets it.
    """

    worker_id: str
    occupancy_cores: float = 0.0
    capacity_cores: float = 0.0
    active_sessions: int = 0
    draining: bool = False
    alive: bool = True
    pending_cores: float = 0.0
    #: Per-tenant core charges from the worker's last gossip (policy
    #: mode only; workers emit ``tenant_cores.<name>`` snapshot keys).
    tenant_cores: Dict[str, float] = field(default_factory=dict)
    #: Optimistic per-tenant charges for placements routed since the
    #: last gossip tick (reset by each fresh snapshot, like
    #: ``pending_cores``).
    tenant_pending: Dict[str, float] = field(default_factory=dict)

    @property
    def free_cores(self) -> float:
        return self.capacity_cores - self.occupancy_cores - self.pending_cores

    def accepts_sessions(self) -> bool:
        return self.alive and not self.draining and self.capacity_cores > 0


class FleetAdmission:
    """Packs *sessions onto workers* with the same min-distance-to-cap
    heuristic Algorithm 2 uses to pack tiles onto cores.

    The paper's admission stage asks "does the candidate fit the
    platform's slot capacity?"; at cluster level each worker *is* a
    capacity bin (its cores divided by the fleet width), and the
    supervisor's router asks "which bin?".  Placement is least-loaded:
    among workers with headroom for the session, pick the one with the
    most free cores (ties: fewest active sessions, then worker id, so
    placement is deterministic).  Unlike the tile level — where
    best-fit preserves contiguous headroom for expensive tiles — each
    worker serializes *all* its sessions through one encode thread
    (shared estimator/LUT state, see ``NetworkServer``), so spreading
    streams across workers is what buys session concurrency; packing
    them would idle the other encode threads.  When no worker has
    headroom the fleet parks the session (bounded waiting room scaled
    by the live-worker count); with no live workers at all it rejects.
    """

    def __init__(
        self,
        estimator: Optional[WorkloadEstimator] = None,
        platform: MpsocConfig = XEON_E5_2667,
        policy: AdmissionPolicy = AdmissionPolicy(),
    ):
        self.policy = policy
        # Pricing only: sessions are charged per worker, not here.
        self._pricer = AdmissionController(
            estimator=estimator, platform=platform, policy=policy,
        )
        self.workers: Dict[str, WorkerLoad] = {}
        self._parked = 0
        self.compiled: Optional[CompiledPolicy] = None

    def set_policy(self, compiled: Optional[CompiledPolicy]) -> None:
        """Route with tenant entitlements: each tenant's fleet-wide
        charge (gossiped + optimistically pending) is capped at its
        normalized weight share of the live fleet's capacity."""
        self.compiled = compiled
        self._pricer.set_policy(compiled)

    def _tenant_fleet_usage(self, tenant: str) -> float:
        return sum(
            w.tenant_cores.get(tenant, 0.0)
            + w.tenant_pending.get(tenant, 0.0)
            for w in self.workers.values() if w.alive
        )

    # -- membership / gossip -------------------------------------------
    def register(self, worker_id: str, capacity_cores: float) -> None:
        self.workers[worker_id] = WorkerLoad(
            worker_id=worker_id, capacity_cores=capacity_cores,
        )

    def mark_dead(self, worker_id: str) -> None:
        load = self.workers.get(worker_id)
        if load is not None:
            load.alive = False

    def update(self, worker_id: str, snapshot: Dict[str, float]) -> None:
        """Fold one heartbeat's load gossip into the routing table."""
        load = self.workers.get(worker_id)
        if load is None:
            load = self.workers[worker_id] = WorkerLoad(worker_id=worker_id)
        load.occupancy_cores = float(
            snapshot.get("occupancy_cores", load.occupancy_cores)
        )
        load.capacity_cores = float(
            snapshot.get("capacity_cores", load.capacity_cores)
        )
        load.active_sessions = int(
            snapshot.get("active_sessions", load.active_sessions)
        )
        load.draining = bool(snapshot.get("draining", 0.0))
        load.alive = True
        load.pending_cores = 0.0
        load.tenant_cores = {
            key.split(".", 1)[1]: float(value)
            for key, value in snapshot.items()
            if key.startswith("tenant_cores.")
        }
        load.tenant_pending = {}

    # -- placement -----------------------------------------------------
    @property
    def live_workers(self) -> List[WorkerLoad]:
        return [w for w in self.workers.values() if w.accepts_sessions()]

    def place(self, hello: Hello,
              prefer: str = "") -> Tuple[AdmissionDecision,
                                         Optional[str], str]:
        """Route one HELLO: ``(decision, worker_id, reason)``.

        ``prefer`` pins the placement (the RESUME path routes to the
        token's lease owner when that worker is alive) as long as the
        preferred worker accepts sessions at all — a resumed session's
        capacity charge lives on that worker regardless.
        """
        registry = get_registry()
        cores, _ = self._pricer.estimate_session(hello)
        live = self.live_workers
        tenant = ""
        if self.compiled is not None and live:
            tenant = self.compiled.resolve_name(hello.tenant)
            runtime = self.compiled.tenants[tenant]
            total_capacity = sum(w.capacity_cores for w in live)
            entitled = runtime.capacity_fraction * total_capacity
            used = self._tenant_fleet_usage(tenant)
            if used + cores > entitled + 1e-9:
                registry.inc(
                    "repro_serving_tenant_entitlement_total", tenant=tenant,
                    help="Admissions deferred by a tenant's entitlement cap",
                )
                if self._parked < self.policy.park_capacity * len(live):
                    self._parked += 1
                    decision = AdmissionDecision.PARK
                else:
                    decision = AdmissionDecision.REJECT
                reason = (
                    f"tenant {tenant!r} fleet entitlement exceeded: need "
                    f"{cores:.2f} cores, {used:.2f}/{entitled:.2f} "
                    "entitled cores in use"
                )
                registry.inc(
                    "repro_serving_fleet_admission_total",
                    decision=decision.value,
                    help="Fleet-level routing decisions by outcome",
                )
                get_tracer().event(
                    "fleet.place", decision=decision.value, worker=None,
                    cores=cores, live_workers=len(live), tenant=tenant,
                )
                return decision, None, reason
        choice: Optional[WorkerLoad] = None
        if prefer:
            preferred = self.workers.get(prefer)
            if preferred is not None and preferred.accepts_sessions():
                choice = preferred
        if choice is None:
            fitting = [w for w in live if w.free_cores >= cores]
            if fitting:
                # Least loaded: the most free cores; deterministic ties.
                choice = min(
                    fitting,
                    key=lambda w: (-w.free_cores, w.active_sessions,
                                   w.worker_id),
                )
        if choice is not None:
            choice.pending_cores += cores
            if tenant:
                choice.tenant_pending[tenant] = (
                    choice.tenant_pending.get(tenant, 0.0) + cores
                )
            if self._parked:
                self._parked = max(0, self._parked - 1)
            decision = AdmissionDecision.ACCEPT
            reason = (
                f"routed to {choice.worker_id}: estimated {cores:.2f} "
                f"cores, {choice.free_cores:.2f} free of "
                f"{choice.capacity_cores:.0f}"
            )
            worker = choice.worker_id
        elif live and self._parked < self.policy.park_capacity * len(live):
            self._parked += 1
            decision = AdmissionDecision.PARK
            worker = None
            reason = (
                f"fleet saturated: need {cores:.2f} cores, no worker "
                f"has headroom; parked"
            )
        else:
            decision = AdmissionDecision.REJECT
            worker = None
            reason = ("no live workers" if not live else
                      "fleet saturated and waiting room full")
        registry.inc(
            "repro_serving_fleet_admission_total", decision=decision.value,
            help="Fleet-level routing decisions by outcome",
        )
        get_tracer().event(
            "fleet.place", decision=decision.value, worker=worker,
            cores=cores, live_workers=len(live),
        )
        return decision, worker, reason

    def abandon_park(self) -> None:
        """A fleet-parked session gave up (timeout or disconnect)."""
        self._parked = max(0, self._parked - 1)
