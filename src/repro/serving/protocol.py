"""Length-prefixed binary wire protocol of the serving layer.

Every message travels as one *frame*::

    +-------+---------+------+-------+----------+---------+----------+
    | magic | version | type | flags | length   | crc32   | payload  |
    | 4 B   | 1 B     | 1 B  | 2 B   | 4 B (BE) | 4 B(BE) | length B |
    +-------+---------+------+-------+----------+---------+----------+

``magic`` is ``b"RPRV"``; ``version`` is :data:`PROTOCOL_VERSION`;
``crc32`` is ``zlib.crc32`` of the payload.  A reader rejects bad
magic, unknown versions, oversized lengths, unknown message types and
checksum mismatches with :class:`ProtocolError` — a corrupted or
truncated stream can never be silently misparsed as frames.

Payload encodings are per-type: pixel-carrying messages (FRAME,
ENCODED) use fixed ``struct`` prefixes followed by the raw luma bytes;
control messages (HELLO, HELLO_ACK, STATS, BYE, ERROR) use UTF-8 JSON,
which keeps them extensible without version bumps.

The module is sans-io at its core — :func:`encode_message`,
:func:`decode_frame` and the incremental :class:`MessageDecoder`
operate on bytes — with thin asyncio adapters (:func:`read_message`,
:func:`write_message`) on top, so the protocol is testable without a
socket.
"""

from __future__ import annotations

import enum
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.resilience.errors import TranscodeError

__all__ = [
    "DEFAULT_DECODER_MAX_PAYLOAD",
    "HEADER_SIZE",
    "MAGIC",
    "MAX_PAYLOAD",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "Bye",
    "Encoded",
    "ErrorMsg",
    "FrameMsg",
    "Hello",
    "HelloAck",
    "Message",
    "MessageDecoder",
    "MsgType",
    "ProtocolError",
    "Resume",
    "ResumeAck",
    "Stats",
    "decode_frame",
    "encode_encoded_into",
    "encode_frame_into",
    "encode_message",
    "read_message",
    "write_message",
]

MAGIC = b"RPRV"
#: v2 adds the RESUME / RESUME_ACK handshake (session fault tolerance);
#: v1 frames remain accepted — the message set of v1 is a strict subset.
PROTOCOL_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
#: Hard payload bound: a 4K 8-bit luma plane is ~8.3 MB; anything far
#: beyond that is a corrupted length field, not a frame.
MAX_PAYLOAD = 32 * 1024 * 1024
#: Default per-message bound of :class:`MessageDecoder`: tighter than
#: the wire-level :data:`MAX_PAYLOAD` so an embedded reassembly buffer
#: never commits to an adversarial 32 MiB allocation (configurable per
#: decoder instance).
DEFAULT_DECODER_MAX_PAYLOAD = 16 * 1024 * 1024

_HEADER = struct.Struct("!4sBBHII")  # magic, version, type, flags, len, crc
HEADER_SIZE = _HEADER.size

_FRAME_PREFIX = struct.Struct("!IHH")  # frame_index, width, height
_ENCODED_PREFIX = struct.Struct("!IBBHHQd")  # idx, ftype, drop, w, h, bits, psnr


class ProtocolError(TranscodeError, ValueError):
    """The byte stream violates the wire protocol (bad magic, version,
    checksum, length, or a malformed payload)."""


class MsgType(enum.IntEnum):
    HELLO = 1        # client -> server: session request
    HELLO_ACK = 2    # server -> client: admission decision
    FRAME = 3        # client -> server: one raw luma frame
    ENCODED = 4      # server -> client: one encoded/decoded frame
    STATS = 5        # server -> client: end-of-session summary
    BYE = 6          # either direction: orderly shutdown
    ERROR = 7        # server -> client: fatal protocol/session error
    RESUME = 8       # client -> server: reattach to a journaled session (v2)
    RESUME_ACK = 9   # server -> client: resume decision + replay plan (v2)


#: ``Encoded.dropped`` reason codes (0 = not dropped).
DROP_REASONS = {0: None, 1: "corrupt", 2: "deadline", 3: "backpressure",
                4: "watchdog", 5: "policy"}
DROP_CODES = {v: k for k, v in DROP_REASONS.items()}

#: ``Encoded.frame_type`` codes.
FRAME_TYPE_CODES = {"I": 0, "P": 1, "B": 2, "": 3}
FRAME_TYPE_NAMES = {v: k for k, v in FRAME_TYPE_CODES.items()}


# ----------------------------------------------------------------------
# Message dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Hello:
    """Session request: declared stream geometry and rate.

    The admission controller prices the session off these fields via
    the workload LUT, so they are promises the client must keep —
    FRAME messages disagreeing with the declared geometry are
    rejected.
    """

    width: int
    height: int
    fps: float = 24.0
    num_frames: int = 0  # 0 = unknown/open-ended
    gop: int = 8
    content_class: Optional[str] = None
    client_id: str = ""
    #: Rendition-ladder request: ``((width, height), ...)`` output
    #: rungs the client wants, largest first.  ``None`` is a plain
    #: single-output session (the pre-ladder wire form — the JSON
    #: payload simply lacks the key, so old servers/clients
    #: interoperate).  The ingest geometry above stays the pricing
    #: anchor; rungs larger than it are rejected at admission
    #: (never-upscale).
    ladder: Optional[Tuple[Tuple[int, int], ...]] = None
    #: Policy tenant this stream bills to.  ``""`` is the pre-policy
    #: wire form (the JSON payload lacks the key, so old peers
    #: interoperate); servers map it — and any name their policy does
    #: not define — to the policy's catch-all default tenant.
    tenant: str = ""

    type = MsgType.HELLO

    def payload(self) -> bytes:
        obj = {
            "width": self.width, "height": self.height, "fps": self.fps,
            "num_frames": self.num_frames, "gop": self.gop,
            "content_class": self.content_class, "client_id": self.client_id,
        }
        if self.ladder is not None:
            obj["ladder"] = [[w, h] for w, h in self.ladder]
        if self.tenant:
            obj["tenant"] = self.tenant
        return _json_bytes(obj)

    @classmethod
    def from_payload(cls, flags: int, data: bytes) -> "Hello":
        obj = _json_obj(data)
        try:
            ladder = obj.get("ladder")
            if ladder is not None:
                ladder = tuple(
                    (int(w), int(h)) for w, h in ladder
                )
                if not ladder:
                    raise ValueError("empty ladder")
            return cls(
                width=int(obj["width"]), height=int(obj["height"]),
                fps=float(obj.get("fps", 24.0)),
                num_frames=int(obj.get("num_frames", 0)),
                gop=int(obj.get("gop", 8)),
                content_class=obj.get("content_class"),
                client_id=str(obj.get("client_id", "")),
                ladder=ladder,
                tenant=str(obj.get("tenant", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed HELLO payload: {exc}") from exc


@dataclass(frozen=True)
class HelloAck:
    """Admission decision: ``accept``, ``reject`` or ``park``.

    ``resume_token`` (v2, journaling servers only) names the session's
    journal: a client that loses its connection presents the token in a
    RESUME message to reattach with no loss of encoded output.
    """

    decision: str
    session_id: int = 0
    reason: str = ""
    queue_frames: int = 0  # server's per-session ingest bound
    resume_token: str = ""  # "" = server does not journal this session
    #: Admitted ladder rungs as ``((rung_id, width, height), ...)``.
    #: May be a subset of the HELLO request: admission drops low rungs
    #: before shedding the session, and the Green-VCA planner prunes
    #: rungs whose predicted quality gain is below threshold.  Empty
    #: for plain single-output sessions (and on the wire of old
    #: servers, which never emit the key).
    rungs: Tuple[Tuple[int, int, int], ...] = ()

    type = MsgType.HELLO_ACK

    def payload(self) -> bytes:
        obj = {
            "decision": self.decision, "session_id": self.session_id,
            "reason": self.reason, "queue_frames": self.queue_frames,
            "resume_token": self.resume_token,
        }
        if self.rungs:
            obj["rungs"] = [[i, w, h] for i, w, h in self.rungs]
        return _json_bytes(obj)

    @classmethod
    def from_payload(cls, flags: int, data: bytes) -> "HelloAck":
        obj = _json_obj(data)
        decision = obj.get("decision")
        if decision not in ("accept", "reject", "park"):
            raise ProtocolError(f"unknown admission decision {decision!r}")
        try:
            rungs = tuple(
                (int(i), int(w), int(h))
                for i, w, h in obj.get("rungs", ())
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed HELLO_ACK rungs: {exc}") from exc
        return cls(
            decision=decision,
            session_id=int(obj.get("session_id", 0)),
            reason=str(obj.get("reason", "")),
            queue_frames=int(obj.get("queue_frames", 0)),
            resume_token=str(obj.get("resume_token", "")),
            rungs=rungs,
        )


@dataclass(frozen=True)
class FrameMsg:
    """One raw 8-bit luma frame.

    ``luma`` is any C-contiguous byte buffer (``bytes`` or a
    ``memoryview`` slice of the wire payload — the decode path hands
    out zero-copy views of the received chunk, so consumers should
    wrap it with ``np.frombuffer`` rather than expect ``bytes``
    methods).
    """

    frame_index: int
    width: int
    height: int
    luma: Union[bytes, memoryview]

    type = MsgType.FRAME

    def __post_init__(self) -> None:
        if len(self.luma) != self.width * self.height:
            raise ProtocolError(
                f"FRAME luma length {len(self.luma)} != "
                f"{self.width}x{self.height}"
            )

    def payload(self) -> bytes:
        luma = self.luma
        if not isinstance(luma, bytes):
            luma = bytes(luma)
        return _FRAME_PREFIX.pack(
            self.frame_index, self.width, self.height
        ) + luma

    @classmethod
    def from_payload(cls, flags: int, data: bytes) -> "FrameMsg":
        if len(data) < _FRAME_PREFIX.size:
            raise ProtocolError("truncated FRAME payload")
        idx, width, height = _FRAME_PREFIX.unpack_from(data)
        luma = data[_FRAME_PREFIX.size:]
        if len(luma) != width * height:
            raise ProtocolError(
                f"FRAME luma length {len(luma)} != {width}x{height}"
            )
        return cls(frame_index=idx, width=width, height=height, luma=luma)


@dataclass(frozen=True)
class Encoded:
    """One frame's encoded outcome.

    ``luma`` carries the reconstructed (decoded) plane — the server's
    proof of what the client's decoder would display; it is empty when
    the frame was dropped (``dropped`` names the reason).  Like
    :class:`FrameMsg` it may be a zero-copy ``memoryview`` of the
    received chunk on the decode path.
    """

    frame_index: int
    frame_type: str = "P"  # "I" | "P" | "B" | "" (dropped)
    dropped: Optional[str] = None
    width: int = 0
    height: int = 0
    bits: int = 0
    psnr: float = 0.0
    luma: Union[bytes, memoryview] = b""
    #: Rendition-ladder rung id this frame belongs to, carried in the
    #: low byte of the header ``flags`` field — the payload layout is
    #: untouched, so rung 0 (the primary, and every pre-ladder sender)
    #: stays wire-identical to protocol v2 as shipped.  Senders pass
    #: ``flags=rung`` to :func:`encode_message` /
    #: :func:`encode_encoded_into`.
    rung: int = 0

    type = MsgType.ENCODED

    def __post_init__(self) -> None:
        if len(self.luma) not in (0, self.width * self.height):
            raise ProtocolError(
                f"ENCODED luma length {len(self.luma)} != "
                f"{self.width}x{self.height}"
            )

    def payload(self) -> bytes:
        try:
            ftype = FRAME_TYPE_CODES[self.frame_type]
            drop = DROP_CODES[self.dropped]
        except KeyError as exc:
            raise ProtocolError(f"unencodable ENCODED field: {exc}") from exc
        luma = self.luma
        if not isinstance(luma, bytes):
            luma = bytes(luma)
        return _ENCODED_PREFIX.pack(
            self.frame_index, ftype, drop, self.width, self.height,
            self.bits, self.psnr,
        ) + luma

    @classmethod
    def from_payload(cls, flags: int, data: bytes) -> "Encoded":
        if len(data) < _ENCODED_PREFIX.size:
            raise ProtocolError("truncated ENCODED payload")
        idx, ftype, drop, width, height, bits, psnr = (
            _ENCODED_PREFIX.unpack_from(data)
        )
        if ftype not in FRAME_TYPE_NAMES:
            raise ProtocolError(f"unknown frame-type code {ftype}")
        if drop not in DROP_REASONS:
            raise ProtocolError(f"unknown drop-reason code {drop}")
        luma = data[_ENCODED_PREFIX.size:]
        if len(luma) not in (0, width * height):
            raise ProtocolError(
                f"ENCODED luma length {len(luma)} != {width}x{height}"
            )
        return cls(
            frame_index=idx, frame_type=FRAME_TYPE_NAMES[ftype],
            dropped=DROP_REASONS[drop], width=width, height=height,
            bits=bits, psnr=psnr, luma=luma, rung=flags & 0xFF,
        )


@dataclass(frozen=True)
class Stats:
    """End-of-session summary (free-form JSON dict)."""

    data: Dict[str, object] = field(default_factory=dict)

    type = MsgType.STATS

    def payload(self) -> bytes:
        return _json_bytes(self.data)

    @classmethod
    def from_payload(cls, flags: int, data: bytes) -> "Stats":
        return cls(data=_json_obj(data))


@dataclass(frozen=True)
class Bye:
    """Orderly shutdown of one direction of the session."""

    reason: str = ""

    type = MsgType.BYE

    def payload(self) -> bytes:
        return _json_bytes({"reason": self.reason})

    @classmethod
    def from_payload(cls, flags: int, data: bytes) -> "Bye":
        return cls(reason=str(_json_obj(data).get("reason", "")))


@dataclass(frozen=True)
class ErrorMsg:
    """Fatal session error; the sender closes after this message."""

    code: str = "error"
    detail: str = ""

    type = MsgType.ERROR

    def payload(self) -> bytes:
        return _json_bytes({"code": self.code, "detail": self.detail})

    @classmethod
    def from_payload(cls, flags: int, data: bytes) -> "ErrorMsg":
        obj = _json_obj(data)
        return cls(code=str(obj.get("code", "error")),
                   detail=str(obj.get("detail", "")))


@dataclass(frozen=True)
class Resume:
    """Reattach to a journaled session after a connection loss (v2).

    ``have_below`` is the client's delivery watermark: every frame
    index strictly below it already has an ENCODED outcome client-side.
    The server replays journaled outcomes from ``have_below`` up and
    then tells the client (via RESUME_ACK ``next_frame_index``) where
    to restart FRAME transmission.
    """

    resume_token: str
    have_below: int = 0
    client_id: str = ""

    type = MsgType.RESUME

    def payload(self) -> bytes:
        return _json_bytes({
            "resume_token": self.resume_token,
            "have_below": self.have_below,
            "client_id": self.client_id,
        })

    @classmethod
    def from_payload(cls, flags: int, data: bytes) -> "Resume":
        obj = _json_obj(data)
        token = obj.get("resume_token")
        if not token or not isinstance(token, str):
            raise ProtocolError("RESUME without a resume_token")
        have_below = int(obj.get("have_below", 0))
        if have_below < 0:
            raise ProtocolError(f"negative have_below {have_below}")
        return cls(resume_token=token, have_below=have_below,
                   client_id=str(obj.get("client_id", "")))


@dataclass(frozen=True)
class ResumeAck:
    """Resume decision (v2).

    On ``accept`` the server has rebuilt the session from its journal:
    journaled ENCODED outcomes from ``have_below`` on are replayed
    (``replayed`` of them), and the client must restart FRAME
    transmission at ``next_frame_index``.

    ``retry_after_s`` qualifies a ``reject``: non-zero means the
    rejection is *transient* — the session's lease is held by a worker
    the fleet has not yet confirmed dead — and the client should retry
    the same RESUME after that many seconds rather than give up.
    """

    decision: str  # "accept" | "reject"
    session_id: int = 0
    next_frame_index: int = 0
    replayed: int = 0
    reason: str = ""
    queue_frames: int = 0
    resume_token: str = ""
    retry_after_s: float = 0.0

    type = MsgType.RESUME_ACK

    def payload(self) -> bytes:
        return _json_bytes({
            "decision": self.decision, "session_id": self.session_id,
            "next_frame_index": self.next_frame_index,
            "replayed": self.replayed, "reason": self.reason,
            "queue_frames": self.queue_frames,
            "resume_token": self.resume_token,
            "retry_after_s": self.retry_after_s,
        })

    @classmethod
    def from_payload(cls, flags: int, data: bytes) -> "ResumeAck":
        obj = _json_obj(data)
        decision = obj.get("decision")
        if decision not in ("accept", "reject"):
            raise ProtocolError(f"unknown resume decision {decision!r}")
        return cls(
            decision=decision,
            session_id=int(obj.get("session_id", 0)),
            next_frame_index=int(obj.get("next_frame_index", 0)),
            replayed=int(obj.get("replayed", 0)),
            reason=str(obj.get("reason", "")),
            queue_frames=int(obj.get("queue_frames", 0)),
            resume_token=str(obj.get("resume_token", "")),
            retry_after_s=float(obj.get("retry_after_s", 0.0)),
        )


Message = Union[Hello, HelloAck, FrameMsg, Encoded, Stats, Bye, ErrorMsg,
                Resume, ResumeAck]

_DECODERS = {
    MsgType.HELLO: Hello.from_payload,
    MsgType.HELLO_ACK: HelloAck.from_payload,
    MsgType.FRAME: FrameMsg.from_payload,
    MsgType.ENCODED: Encoded.from_payload,
    MsgType.STATS: Stats.from_payload,
    MsgType.BYE: Bye.from_payload,
    MsgType.ERROR: ErrorMsg.from_payload,
    MsgType.RESUME: Resume.from_payload,
    MsgType.RESUME_ACK: ResumeAck.from_payload,
}


def _json_bytes(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def _json_obj(data) -> dict:
    # Control payloads are tiny; materializing a memoryview here is
    # not on the pixel hot path.
    if not isinstance(data, (bytes, bytearray)):
        data = bytes(data)
    try:
        obj = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable JSON payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("JSON payload must be an object")
    return obj


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_message(msg: Message, flags: int = 0) -> bytes:
    """Serialize one message to its wire frame.

    An :class:`Encoded` message's ``rung`` rides in the header flags;
    when the caller does not pass explicit flags, the field supplies
    them — so ``encode_message``/``from_payload`` round-trip the rung
    without every call site knowing about ladders.
    """
    if flags == 0:
        flags = getattr(msg, "rung", 0)
    payload = msg.payload()
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD"
        )
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(msg.type), flags,
        len(payload), zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return header + payload


def encode_frame_into(
    out: bytearray,
    frame_index: int,
    width: int,
    height: int,
    luma,
    flags: int = 0,
) -> int:
    """Serialize one FRAME wire frame straight into ``out``.

    Sender-side counterpart of :func:`encode_encoded_into`: ``luma``
    may be ``bytes``, a ``memoryview`` or a C-contiguous ``uint8``
    ``ndarray`` plane, copied exactly once into the arena.  Produces
    bytes identical to ``encode_message(FrameMsg(...), flags)``.
    Returns the number of bytes appended.
    """
    if isinstance(luma, bytes):
        view = luma
        nbytes = len(luma)
    else:
        view = memoryview(luma)
        if view.ndim != 1:
            view = view.cast("B")
        nbytes = view.nbytes
    if nbytes != width * height:
        raise ProtocolError(
            f"FRAME luma length {nbytes} != {width}x{height}"
        )
    length = _FRAME_PREFIX.size + nbytes
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {length} bytes exceeds MAX_PAYLOAD"
        )
    prefix = _FRAME_PREFIX.pack(frame_index, width, height)
    crc = zlib.crc32(view, zlib.crc32(prefix))
    out += _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(MsgType.FRAME), flags, length,
        crc & 0xFFFFFFFF,
    )
    out += prefix
    out += view
    return HEADER_SIZE + length


def encode_encoded_into(
    out: bytearray,
    frame_index: int,
    frame_type: str = "P",
    dropped: Optional[str] = None,
    width: int = 0,
    height: int = 0,
    bits: int = 0,
    psnr: float = 0.0,
    luma=b"",
    flags: int = 0,
) -> int:
    """Serialize one ENCODED wire frame straight into ``out``.

    The zero-copy egress path: ``luma`` may be ``bytes``, a
    ``memoryview`` or a C-contiguous ``uint8`` ``ndarray`` (the
    reconstruction plane), and its pixels flow into the output arena
    exactly once — no :class:`Encoded` dataclass, no ``tobytes()``
    and no intermediate header+payload concatenation.  Produces bytes
    identical to ``encode_message(Encoded(...), flags)``.  Returns the
    number of bytes appended.
    """
    try:
        ftype = FRAME_TYPE_CODES[frame_type]
        drop = DROP_CODES[dropped]
    except KeyError as exc:
        raise ProtocolError(f"unencodable ENCODED field: {exc}") from exc
    if isinstance(luma, bytes):
        view = luma
        nbytes = len(luma)
    else:
        view = memoryview(luma)
        if view.ndim != 1:
            view = view.cast("B")
        nbytes = view.nbytes
    if nbytes not in (0, width * height):
        raise ProtocolError(
            f"ENCODED luma length {nbytes} != {width}x{height}"
        )
    length = _ENCODED_PREFIX.size + nbytes
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {length} bytes exceeds MAX_PAYLOAD"
        )
    prefix = _ENCODED_PREFIX.pack(
        frame_index, ftype, drop, width, height, bits, psnr
    )
    crc = zlib.crc32(prefix)
    if nbytes:
        crc = zlib.crc32(view, crc)
    out += _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(MsgType.ENCODED), flags, length,
        crc & 0xFFFFFFFF,
    )
    out += prefix
    if nbytes:
        out += view
    return HEADER_SIZE + length


def _parse_header(header: bytes) -> Tuple[MsgType, int, int, int]:
    magic, version, mtype, flags, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(speaking {PROTOCOL_VERSION}, accepting "
            f"{list(SUPPORTED_VERSIONS)})"
        )
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"declared payload of {length} bytes too large")
    try:
        mtype = MsgType(mtype)
    except ValueError:
        raise ProtocolError(f"unknown message type {mtype}") from None
    if version < 2 and mtype in (MsgType.RESUME, MsgType.RESUME_ACK):
        raise ProtocolError(
            f"{mtype.name} is a v2 message but the frame declares v{version}"
        )
    return mtype, flags, length, crc


def _check_payload(payload: bytes, crc: int) -> None:
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ProtocolError("payload checksum mismatch")


def decode_frame(buf: bytes) -> Tuple[Optional[Message], int]:
    """Decode one message from the head of ``buf``.

    Returns ``(message, bytes_consumed)``; ``(None, 0)`` when the
    buffer does not yet hold a complete frame.  Raises
    :class:`ProtocolError` on any framing violation.
    """
    if len(buf) < HEADER_SIZE:
        return None, 0
    mtype, flags, length, crc = _parse_header(buf[:HEADER_SIZE])
    end = HEADER_SIZE + length
    if len(buf) < end:
        return None, 0
    payload = bytes(buf[HEADER_SIZE:end])
    _check_payload(payload, crc)
    return _DECODERS[mtype](flags, payload), end


class MessageDecoder:
    """Incremental sans-io decoder: feed arbitrary byte chunks, get
    complete messages out (the TCP stream reassembly layer).

    ``max_payload`` bounds what the decoder will *commit to buffering*
    for one message: a FRAME whose declared length exceeds it is
    rejected with :class:`ProtocolError` as soon as its header is
    parsed, never accumulated.  The default
    (:data:`DEFAULT_DECODER_MAX_PAYLOAD`, 16 MiB) is deliberately
    tighter than the wire-format ceiling :data:`MAX_PAYLOAD`; raise it
    per instance when legitimately reassembling larger planes.
    """

    def __init__(self, max_payload: int = DEFAULT_DECODER_MAX_PAYLOAD):
        if max_payload < 1:
            raise ValueError("max_payload must be positive")
        self.max_payload = min(max_payload, MAX_PAYLOAD)
        self._buf = bytearray()
        # Header of the in-progress message, parsed exactly once
        # (invariant: non-None only while ``_buf`` starts with that
        # full 16-byte header and its payload is still incomplete).
        self._header: Optional[Tuple[MsgType, int, int, int]] = None

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def _check_limit(self, length: int) -> None:
        # Reject an oversized declaration before buffering its
        # payload — the unbounded-memory guard.
        if length > self.max_payload:
            raise ProtocolError(
                f"declared payload of {length} bytes exceeds the "
                f"decoder limit of {self.max_payload}"
            )

    def feed(self, data) -> List[Message]:
        """Feed one received chunk; return every completed message.

        Zero-copy fast path: when no partial message is pending and
        ``data`` is immutable ``bytes`` (the normal socket-read case),
        complete messages are parsed in place and pixel-carrying
        payloads come out as ``memoryview`` slices of ``data`` — the
        chunk's pixels are never copied.  Only a trailing partial
        message (and any chunk arriving while one is pending) is
        staged into the reassembly buffer.
        """
        if not self._buf and isinstance(data, bytes):
            return self._feed_fast(data)
        self._buf.extend(data)
        out: List[Message] = []
        buf = self._buf
        while True:
            if self._header is None:
                if len(buf) < HEADER_SIZE:
                    return out
                self._header = _parse_header(bytes(buf[:HEADER_SIZE]))
                self._check_limit(self._header[2])
            mtype, flags, length, crc = self._header
            end = HEADER_SIZE + length
            if len(buf) < end:
                return out
            # One immutable copy per reassembled message (the payload
            # cannot alias ``buf``: the del below resizes it).
            payload = bytes(memoryview(buf)[HEADER_SIZE:end])
            _check_payload(payload, crc)
            msg = _DECODERS[mtype](flags, memoryview(payload))
            del buf[:end]
            self._header = None
            out.append(msg)

    def _feed_fast(self, data: bytes) -> List[Message]:
        out: List[Message] = []
        mv = memoryview(data)
        total = len(data)
        pos = 0
        while True:
            if self._header is None:
                if total - pos < HEADER_SIZE:
                    break
                self._header = _parse_header(mv[pos:pos + HEADER_SIZE])
                self._check_limit(self._header[2])
            mtype, flags, length, crc = self._header
            end = pos + HEADER_SIZE + length
            if end > total:
                break
            payload = mv[pos + HEADER_SIZE:end]
            _check_payload(payload, crc)
            out.append(_DECODERS[mtype](flags, payload))
            self._header = None
            pos = end
        if pos < total:
            # Stage the partial tail; a cached ``_header`` stays valid
            # because the tail starts with those same header bytes.
            self._buf.extend(mv[pos:])
        return out


# ----------------------------------------------------------------------
# asyncio adapters
# ----------------------------------------------------------------------
async def read_message(
    reader, max_payload: int = DEFAULT_DECODER_MAX_PAYLOAD
) -> Message:
    """Read exactly one message from an ``asyncio.StreamReader``.

    ``max_payload`` bounds what the reader will commit to allocating
    for one message (same contract as :class:`MessageDecoder`): a
    declared length beyond it is rejected as soon as the header is
    parsed, before a single payload byte is buffered.  Raise it per
    call site when legitimately receiving larger planes.

    Raises :class:`ProtocolError` on framing violations and
    ``asyncio.IncompleteReadError`` / ``ConnectionError`` on transport
    loss mid-frame (EOF *between* frames surfaces as
    ``IncompleteReadError`` with no partial bytes).
    """
    header = await reader.readexactly(HEADER_SIZE)
    mtype, flags, length, crc = _parse_header(header)
    if length > min(max_payload, MAX_PAYLOAD):
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the reader "
            f"limit of {min(max_payload, MAX_PAYLOAD)}"
        )
    payload = await reader.readexactly(length) if length else b""
    _check_payload(payload, crc)
    # Hand the decoder a view of the freshly-read (immutable) buffer:
    # FRAME/ENCODED luma comes out as a zero-copy slice of it.
    return _DECODERS[mtype](flags, memoryview(payload))


async def write_message(writer, msg: Message, flags: int = 0) -> None:
    """Write one message to an ``asyncio.StreamWriter`` and drain."""
    writer.write(encode_message(msg, flags))
    await writer.drain()
