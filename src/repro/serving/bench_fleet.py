"""Fleet scaling + lease overhead benchmark
(``python -m repro.serving.bench_fleet``).

Two claims, recorded in the ``BENCH_<n>.json`` schema:

* **Fleet scaling** — every worker serializes its sessions through one
  encode thread (shared estimator/LUT state), so the multi-worker
  fleet is the session-concurrency axis of the serving stack.  The
  benchmark drives the same 8-session workload through a 1-worker and
  a 4-worker router-mode fleet and claims >= 2.5x session throughput.
  Frames are paced by ``encode_floor_s`` (a wall-clock floor per
  encoded frame) so the 1-CPU CI box measures the architecture's
  concurrency honestly instead of raw encode contention: with the
  floor dominating, a worker's encode thread is sleep-bound and worker
  processes overlap freely, exactly as independent encode threads
  would on a wider machine.

* **Lease overhead** — externalizing session ownership as single-owner
  lease records (one checksummed lease file + flock per session, not
  per frame) costs <= 2% serving throughput against the lease-free
  journaled path of the previous benchmark generation.  Methodology
  mirrors ``bench_journal``: deterministic pacing at a realistic
  operating point, paired rounds alternating order, median headline.
"""

from __future__ import annotations

import argparse
import asyncio
import datetime
import json
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.bench import git_sha, repo_root
from repro.observability import scoped
from repro.serving.fleet import FleetConfig, FleetSupervisor
from repro.serving.loadgen import LoadGenConfig, run_loadgen_async
from repro.serving.server import NetworkServer, ServeNetConfig

_GROUP = "serving-fleet"

# Scaling arm.
_SCALE_SESSIONS = 8
_SCALE_FRAMES = 16
_SCALE_GOP = 4
_ENCODE_FLOOR_S = 0.04
_FLEET_WIDTHS = (1, 4)

# Lease arm (mirrors bench_journal's operating point).
_LEASE_SESSIONS = 2
_LEASE_FRAMES = 48
_LEASE_GOP = 8
_LEASE_FRAME_INTERVAL_S = 0.01


async def _fleet_round(workers: int, journal_dir: str) -> float:
    """One fleet run; returns session throughput in sessions/s."""
    supervisor = FleetSupervisor(FleetConfig(
        workers=workers,
        server=ServeNetConfig(
            gop=_SCALE_GOP, seed=29, journal_dir=journal_dir,
            journal_fsync=False, encode_floor_s=_ENCODE_FLOOR_S,
        ),
    ))
    await supervisor.start()
    try:
        await supervisor.wait_ready(30.0)
        start = time.perf_counter()
        report = await run_loadgen_async(LoadGenConfig(
            port=supervisor.port, sessions=_SCALE_SESSIONS,
            frames=_SCALE_FRAMES, width=64, height=64, gop=_SCALE_GOP,
            seed=29, arrival="burst", burst_size=_SCALE_SESSIONS,
            rate_hz=100.0, timeout_s=300.0,
        ))
        elapsed = time.perf_counter() - start
    finally:
        await supervisor.drain()
    if report.errored or report.protocol_errors:
        raise RuntimeError(f"benchmark run errored: {report.summary()}")
    if report.accepted != _SCALE_SESSIONS:
        raise RuntimeError(
            f"only {report.accepted}/{_SCALE_SESSIONS} sessions accepted"
        )
    return _SCALE_SESSIONS / elapsed


async def _lease_round(journal_dir: str, lease: bool) -> float:
    """One solo-server run; returns throughput in frames/s."""
    server = NetworkServer(ServeNetConfig(
        port=0, seed=17, journal_dir=journal_dir, journal_fsync=True,
        lease=lease,
    ))
    await server.start()
    try:
        start = time.perf_counter()
        report = await run_loadgen_async(LoadGenConfig(
            port=server.port, sessions=_LEASE_SESSIONS,
            frames=_LEASE_FRAMES, width=96, height=96, gop=_LEASE_GOP,
            seed=17, rate_hz=100.0,
            frame_interval_s=_LEASE_FRAME_INTERVAL_S,
        ))
        elapsed = time.perf_counter() - start
    finally:
        await server.aclose()
    if report.errored or report.protocol_errors:
        raise RuntimeError(f"benchmark run errored: {report.summary()}")
    return report.frames_encoded / elapsed


def _measure_scaling(rounds: int) -> dict:
    rates = {w: [] for w in _FLEET_WIDTHS}
    with tempfile.TemporaryDirectory() as root:
        with scoped():
            asyncio.run(_fleet_round(
                max(_FLEET_WIDTHS), str(Path(root) / "warmup")
            ))
        for i in range(rounds):
            for workers in _FLEET_WIDTHS:
                with scoped():
                    rates[workers].append(asyncio.run(_fleet_round(
                        workers, str(Path(root) / f"w{workers}-{i}")
                    )))
    return rates


def _measure_lease(rounds: int) -> dict:
    off: List[float] = []
    on: List[float] = []
    with tempfile.TemporaryDirectory() as root:
        with scoped():
            asyncio.run(_lease_round(str(Path(root) / "warmup"), True))
        for i in range(rounds):
            order = ((False, off), (True, on))
            if i % 2:
                order = tuple(reversed(order))
            for lease, sink in order:
                path = str(Path(root) / f"lease{int(lease)}-{i}")
                with scoped():
                    sink.append(asyncio.run(_lease_round(path, lease)))
    return {"off": off, "on": on}


def _rate_record(name: str, rates: List[float], unit: str,
                 work: float) -> dict:
    mean_rate = statistics.fmean(rates)
    return {
        "name": name,
        "group": _GROUP,
        "mean_s": work / mean_rate,
        "stddev_s": (
            statistics.stdev([work / r for r in rates])
            if len(rates) > 1 else 0.0
        ),
        "rounds": len(rates),
        f"{unit}_per_s": mean_rate,
        f"median_{unit}_per_s": statistics.median(rates),
        f"best_{unit}_per_s": max(rates),
    }


def summarize(scaling: dict, lease: dict) -> dict:
    records = [
        _rate_record(f"serve_fleet_w{w}", scaling[w], "sessions",
                     _SCALE_SESSIONS)
        for w in _FLEET_WIDTHS
    ]
    base, wide = (statistics.median(scaling[w]) for w in _FLEET_WIDTHS)
    records.append({
        "name": "fleet_scaling",
        "group": _GROUP,
        "workers": list(_FLEET_WIDTHS),
        "sessions": _SCALE_SESSIONS,
        "frames_per_session": _SCALE_FRAMES,
        "gop": _SCALE_GOP,
        "encode_floor_s": _ENCODE_FLOOR_S,
        "speedup_median": wide / base,
        "speedup_best": max(scaling[_FLEET_WIDTHS[-1]])
        / max(scaling[_FLEET_WIDTHS[0]]),
        "claim": "4 workers carry >= 2.5x the session throughput of 1",
    })
    records += [
        _rate_record("serve_lease_off", lease["off"], "frames",
                     _LEASE_SESSIONS * _LEASE_FRAMES),
        _rate_record("serve_lease_on", lease["on"], "frames",
                     _LEASE_SESSIONS * _LEASE_FRAMES),
    ]
    med_off = statistics.median(lease["off"])
    med_on = statistics.median(lease["on"])
    records.append({
        "name": "lease_overhead",
        "group": _GROUP,
        "sessions": _LEASE_SESSIONS,
        "frames_per_session": _LEASE_FRAMES,
        "gop": _LEASE_GOP,
        "frame_interval_s": _LEASE_FRAME_INTERVAL_S,
        "overhead_frac_median": (med_off - med_on) / med_off,
        "overhead_frac_best": (
            (max(lease["off"]) - max(lease["on"])) / max(lease["off"])
        ),
        "overhead_frac_mean": (
            (statistics.fmean(lease["off"]) - statistics.fmean(lease["on"]))
            / statistics.fmean(lease["off"])
        ),
        "claim": "per-session ownership leases cost <= 2% throughput",
    })
    return {
        "machine_info": {
            "node": platform.node(),
            "machine": platform.machine(),
            "system": platform.system(),
            "release": platform.release(),
            "python_implementation": platform.python_implementation(),
            "python_version": platform.python_version(),
        },
        "datetime": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
        "git_sha": git_sha(),
        "groups": [_GROUP],
        "benchmarks": records,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.bench_fleet", description=__doc__,
    )
    parser.add_argument("--scale-rounds", type=int, default=3,
                        help="measurement rounds per fleet width")
    parser.add_argument("--lease-rounds", type=int, default=9,
                        help="paired measurement rounds for the lease arm")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: BENCH_5.json at the "
                             "repo root; refuses to overwrite)")
    args = parser.parse_args(argv)
    out = args.out or (repo_root() / "BENCH_5.json")
    if out.exists():
        parser.error(f"refusing to overwrite existing {out}")
    summary = summarize(
        _measure_scaling(args.scale_rounds),
        _measure_lease(args.lease_rounds),
    )
    with open(out, "x") as fh:
        fh.write(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {out}")
    for rec in summary["benchmarks"]:
        if "sessions_per_s" in rec:
            print(f"  {rec['name']:<16} "
                  f"{rec['median_sessions_per_s']:7.2f} sessions/s median"
                  f"  (best {rec['best_sessions_per_s']:.2f})")
        elif "frames_per_s" in rec:
            print(f"  {rec['name']:<16} "
                  f"{rec['median_frames_per_s']:7.1f} frames/s median"
                  f"  (best {rec['best_frames_per_s']:.1f})")
        elif rec["name"] == "fleet_scaling":
            print(f"  {rec['name']:<16} x{rec['speedup_median']:.2f} median"
                  f"  (best x{rec['speedup_best']:.2f})")
        else:
            print(f"  {rec['name']:<16} "
                  f"median {rec['overhead_frac_median']:+.2%}"
                  f"  best {rec['overhead_frac_best']:+.2%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
