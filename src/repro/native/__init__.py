"""Native (C) kernel layer for the encode hot path.

The per-block encode loop spends most of its time in interpreter and
NumPy dispatch overhead on tiny arrays.  This package compiles
``kernels.c`` once per machine with the system C compiler (``cc``) and
loads it through :mod:`ctypes`; the Python wrappers below present the
same contracts as the NumPy implementations they accelerate:

* :func:`sad_batch` — integer SADs of one block against many reference
  windows, **bit-identical** to the NumPy strided-view path (both
  accumulate ``|ref - block|`` in int64);
* :func:`choose_intra` — fused intra mode decision; the winning
  prediction block is bit-identical to ``repro.codec.intra.predict``
  (the kernels are compiled with ``-ffp-contract=off`` so the C
  arithmetic follows the same one-rounding-per-operation IEEE
  semantics as NumPy), while the SAD reductions may differ from
  NumPy's pairwise summation in the last ulp — which only matters on
  exact cost ties;
* :func:`intra_sads` — the four intra-mode SADs (same ulp caveat);
* :func:`encode_residual` — the fused residual pipeline (zero-skip ->
  DCT -> quantize -> zigzag bit count), returning the same integer
  levels and bit counts as the staged NumPy pipeline up to coefficient
  rounding at quantization boundaries.

Call overhead matters as much as kernel speed here: every exported
function is declared with ``c_void_p`` pointer arguments so callers
pass raw ``ndarray.ctypes.data`` integers (no per-call ``data_as``
pointer objects), and small fixed-size outputs live in thread-local
scratch buffers whose pointers are computed once.  Hot inner loops
(``SearchContext``) go further and cache the plane/block pointers for
the lifetime of the context, calling ``lib.sad_batch_u8`` directly.

Everything degrades gracefully: if no compiler is available, if
compilation fails, or if ``REPRO_NATIVE=0`` is set, :data:`lib` is
``None`` and callers fall back to pure NumPy.  The compiled object is
cached under ``_build/``, keyed by a hash of the source and flags.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

_HERE = Path(__file__).resolve().parent
_SOURCE = _HERE / "kernels.c"
_BUILD_DIR = _HERE / "_build"

#: ``-ffp-contract=off`` disables FMA contraction: a fused multiply-add
#: rounds once where NumPy rounds twice, which would break the
#: bit-exactness of the intra prediction arithmetic.
_CFLAGS = ["-O3", "-ffp-contract=off", "-fPIC", "-shared"]

#: The loaded shared library, or None when native kernels are off.
lib: Optional[ctypes.CDLL] = None


def _compile() -> Optional[Path]:
    source = _SOURCE.read_text()
    digest = hashlib.sha256(
        (source + "\0" + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    so_path = _BUILD_DIR / f"kernels-{digest}.so"
    if so_path.exists():
        return so_path
    _BUILD_DIR.mkdir(exist_ok=True)
    # Compile into a temp file then rename, so concurrent interpreters
    # (the tile-parallel worker pool) never load a half-written object.
    fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=_BUILD_DIR)
    os.close(fd)
    cmd = ["cc", *_CFLAGS, str(_SOURCE), "-o", tmp_name, "-lm"]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=120)
        os.replace(tmp_name, so_path)
        return so_path
    except (OSError, subprocess.SubprocessError):
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        return None


def _load() -> Optional[ctypes.CDLL]:
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return None
    try:
        so_path = _compile()
        if so_path is None:
            return None
        cdll = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    ptr = ctypes.c_void_p  # callers pass ndarray.ctypes.data integers
    i64 = ctypes.c_int64
    i32 = ctypes.c_int
    f64 = ctypes.c_double
    cdll.sad_batch_u8.argtypes = [ptr, i64, i64, ptr, i32, i32, ptr, ptr, i32, ptr]
    cdll.sad_batch_u8.restype = None
    cdll.sad_cost_batch_u8.argtypes = [
        ptr, i64, ptr, i32, i32, ptr, ptr, i32, i64, i64, f64, ptr,
    ]
    cdll.sad_cost_batch_u8.restype = None
    cdll.sad_pred_d.argtypes = [ptr, ptr, i64, ptr]
    cdll.sad_pred_d.restype = None
    cdll.ssd_recon_u8.argtypes = [ptr, ptr, i64, ptr]
    cdll.ssd_recon_u8.restype = None
    cdll.intra_sads.argtypes = [ptr, i32, i32, ptr, ptr, f64, ptr, ptr]
    cdll.intra_sads.restype = None
    cdll.choose_intra.argtypes = [ptr, i32, i32, ptr, ptr, ptr, ptr, ptr]
    cdll.choose_intra.restype = None
    cdll.encode_residual.argtypes = [ptr, ptr, i32, i32, f64, ptr, ptr, ptr, ptr]
    cdll.encode_residual.restype = None
    cdll.reconstruct_block_u8.argtypes = [ptr, ptr, i32, i32, f64, ptr, ptr, i64]
    cdll.reconstruct_block_u8.restype = None
    cdll.encode_block_fused.argtypes = [
        ptr, ptr, i32, i32, f64, ptr, ptr, ptr, ptr, i64, ptr, ptr,
    ]
    cdll.encode_block_fused.restype = None
    return cdll


def available() -> bool:
    """Whether the compiled kernels are loaded in this process."""
    return lib is not None


class _Scratch(threading.local):
    """Per-thread fixed-size output buffers with precomputed pointers.

    ctypes releases the GIL during foreign calls, so module-global
    scratch would race if two threads encoded concurrently;
    thread-local storage keeps the cached pointers safe.
    """

    def __init__(self):
        self.f4 = np.empty(4, dtype=np.float64)
        self.f4_ptr = self.f4.ctypes.data
        self.mode = np.empty(1, dtype=np.int32)
        self.mode_ptr = self.mode.ctypes.data
        self.sad = np.empty(1, dtype=np.float64)
        self.sad_ptr = self.sad.ctypes.data
        self.stats = np.empty(2, dtype=np.int64)
        self.stats_ptr = self.stats.ctypes.data
        self.cap = 0

    def ensure(self, n: int) -> None:
        """Grow the candidate scratch (xs, ys, costs) to hold ``n``."""
        if n > self.cap:
            self.cap = max(2 * n, 64)
            self.xs = np.empty(self.cap, dtype=np.int64)
            self.ys = np.empty(self.cap, dtype=np.int64)
            self.costs = np.empty(self.cap, dtype=np.float64)
            self.sads = np.empty(self.cap, dtype=np.int64)
            self.xs_ptr = self.xs.ctypes.data
            self.ys_ptr = self.ys.ctypes.data
            self.costs_ptr = self.costs.ctypes.data
            self.sads_ptr = self.sads.ctypes.data


_scratch = _Scratch()


def scratch() -> _Scratch:
    """This thread's scratch buffers (for direct ``lib`` callers)."""
    return _scratch


def sad_batch(
    reference: np.ndarray,
    block: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    istep: int = 1,
) -> np.ndarray:
    """Integer SADs of ``block`` at anchors ``(ys, xs)`` of ``reference``.

    ``reference`` must be C-contiguous uint8, ``block`` C-contiguous
    int32, ``xs``/``ys`` int64.  ``istep`` is the element pitch inside
    each window (2 samples the half-pel grid at integer positions).
    """
    n = int(xs.size)
    out = np.empty(n, dtype=np.int64)
    lib.sad_batch_u8(
        reference.ctypes.data,
        reference.strides[0],
        istep,
        block.ctypes.data,
        block.shape[0], block.shape[1],
        xs.ctypes.data, ys.ctypes.data,
        n,
        out.ctypes.data,
    )
    return out


def intra_sads(
    block_f: np.ndarray,
    top: Optional[np.ndarray],
    left: Optional[np.ndarray],
    dc: float,
    planar: np.ndarray,
) -> Tuple[float, float, float, float]:
    """The four intra-mode SADs ``(dc, planar, horizontal, vertical)``."""
    bh, bw = block_f.shape
    out = _scratch.f4
    lib.intra_sads(
        block_f.ctypes.data, bh, bw,
        top.ctypes.data if top is not None else None,
        left.ctypes.data if left is not None else None,
        dc,
        planar.ctypes.data,
        _scratch.f4_ptr,
    )
    return float(out[0]), float(out[1]), float(out[2]), float(out[3])


def choose_intra(
    block_f: np.ndarray,
    top: Optional[np.ndarray],
    left: Optional[np.ndarray],
) -> Tuple[int, np.ndarray, float]:
    """Fused intra decision: returns ``(mode_index, prediction, sad)``.

    The prediction block is bit-identical to
    ``repro.codec.intra.predict(mode, top, left, ...)``; mode selection
    matches ``choose_mode`` (strict <, DC-first tie-break).
    """
    bh, bw = block_f.shape
    pred = np.empty((bh, bw), dtype=np.float64)
    sc = _scratch
    lib.choose_intra(
        block_f.ctypes.data, bh, bw,
        top.ctypes.data if top is not None else None,
        left.ctypes.data if left is not None else None,
        pred.ctypes.data, sc.mode_ptr, sc.sad_ptr,
    )
    return int(sc.mode[0]), pred, float(sc.sad[0])


def encode_residual(
    block_f: np.ndarray,
    prediction: np.ndarray,
    step: float,
    basis: np.ndarray,
    zz_order: np.ndarray,
) -> Tuple[np.ndarray, int, int]:
    """Fused residual pipeline for one ``(h, w)`` coding block.

    Returns ``(levels, bits, num_active)`` where ``levels`` is the
    ``(n, 8, 8)`` int32 stack in blockify order, ``bits`` the exact
    entropy bit count of the zigzag-scanned levels, and ``num_active``
    the number of sub-blocks that went through the transform.
    """
    h, w = block_f.shape
    n = (h // 8) * (w // 8)
    levels = np.empty((n, 8, 8), dtype=np.int32)
    sc = _scratch
    lib.encode_residual(
        block_f.ctypes.data,
        prediction.ctypes.data,
        h, w, step,
        basis.ctypes.data,
        zz_order.ctypes.data,
        levels.ctypes.data,
        sc.stats_ptr,
    )
    return levels, int(sc.stats[0]), int(sc.stats[1])


lib = _load()
