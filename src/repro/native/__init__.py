"""Native (C) kernel layer for the encode hot path.

The per-block encode loop spends most of its time in interpreter and
NumPy dispatch overhead on tiny arrays.  This package compiles
``kernels.c`` once per machine with the system C compiler (``cc``) and
loads it through :mod:`ctypes`; the Python wrappers below present the
same contracts as the NumPy implementations they accelerate:

* :func:`sad_batch` — integer SADs of one block against many reference
  windows, **bit-identical** to the NumPy strided-view path (both
  accumulate ``|ref - block|`` in int64);
* :func:`choose_intra` — fused intra mode decision; the winning
  prediction block is bit-identical to ``repro.codec.intra.predict``
  (the kernels are compiled with ``-ffp-contract=off`` so the C
  arithmetic follows the same one-rounding-per-operation IEEE
  semantics as NumPy), while the SAD reductions may differ from
  NumPy's pairwise summation in the last ulp — which only matters on
  exact cost ties;
* :func:`intra_sads` — the four intra-mode SADs (same ulp caveat);
* :func:`encode_residual` — the fused residual pipeline (zero-skip ->
  DCT -> quantize -> zigzag bit count), returning the same integer
  levels and bit counts as the staged NumPy pipeline up to coefficient
  rounding at quantization boundaries.

Call overhead matters as much as kernel speed here: every exported
function is declared with ``c_void_p`` pointer arguments so callers
pass raw ``ndarray.ctypes.data`` integers (no per-call ``data_as``
pointer objects), and small fixed-size outputs live in thread-local
scratch buffers whose pointers are computed once.  Hot inner loops
(``SearchContext``) go further and cache the plane/block pointers for
the lifetime of the context, calling ``lib.sad_batch_u8`` directly.

Everything degrades gracefully: if no compiler is available, if
compilation fails, or if ``REPRO_NATIVE=0`` is set, :data:`lib` is
``None`` and callers fall back to pure NumPy.  The compiled object is
cached under ``_build/``, keyed by a hash of the source and flags.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

_HERE = Path(__file__).resolve().parent
_SOURCE = _HERE / "kernels.c"
_BUILD_DIR = _HERE / "_build"

#: ``-ffp-contract=off`` disables FMA contraction: a fused multiply-add
#: rounds once where NumPy rounds twice, which would break the
#: bit-exactness of the intra prediction arithmetic.
#: ``-Wall -Werror`` is the compile-time guard: a kernel change that
#: introduces any warning fails the build, and the package falls back
#: to NumPy (tests comparing native vs. fallback would then expose the
#: regression as a missing-native skip rather than silent corruption).
_CFLAGS = ["-O3", "-ffp-contract=off", "-fPIC", "-shared", "-Wall", "-Werror"]

#: Half-extent of the motion-search cost cache table (must match
#: ``MS_H`` in ``kernels.c``): the C driver caches candidate costs for
#: displacements in ``[-MOTION_CACHE_HALF, MOTION_CACHE_HALF]`` per
#: axis.  The wrapper refuses windows/seeds that could step outside.
MOTION_CACHE_HALF = 160

#: The loaded shared library, or None when native kernels are off.
lib: Optional[ctypes.CDLL] = None


def _compile() -> Optional[Path]:
    source = _SOURCE.read_text()
    digest = hashlib.sha256(
        (source + "\0" + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    so_path = _BUILD_DIR / f"kernels-{digest}.so"
    if so_path.exists():
        return so_path
    _BUILD_DIR.mkdir(exist_ok=True)
    # Compile into a temp file then rename, so concurrent interpreters
    # (the tile-parallel worker pool) never load a half-written object.
    fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=_BUILD_DIR)
    os.close(fd)
    cmd = ["cc", *_CFLAGS, str(_SOURCE), "-o", tmp_name, "-lm"]
    try:
        subprocess.run(cmd, check=True, capture_output=True, timeout=120)
        os.replace(tmp_name, so_path)
        # Durable publish: fsync the directory so a crash right after
        # the rename cannot roll back the entry and leave the next
        # interpreter recompiling against a vanished cache.  Best
        # effort — the .so is reproducible, losing it is only slow.
        try:
            dir_fd = os.open(_BUILD_DIR, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass
        return so_path
    except (OSError, subprocess.SubprocessError):
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        return None


def _load() -> Optional[ctypes.CDLL]:
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return None
    try:
        so_path = _compile()
        if so_path is None:
            return None
        cdll = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    ptr = ctypes.c_void_p  # callers pass ndarray.ctypes.data integers
    i64 = ctypes.c_int64
    i32 = ctypes.c_int
    f64 = ctypes.c_double
    cdll.sad_batch_u8.argtypes = [ptr, i64, i64, ptr, i32, i32, ptr, ptr, i32, ptr]
    cdll.sad_batch_u8.restype = None
    cdll.sad_cost_batch_u8.argtypes = [
        ptr, i64, ptr, i32, i32, ptr, ptr, i32, i64, i64, f64, ptr,
    ]
    cdll.sad_cost_batch_u8.restype = None
    cdll.sad_pred_d.argtypes = [ptr, ptr, i64, ptr]
    cdll.sad_pred_d.restype = None
    cdll.ssd_recon_u8.argtypes = [ptr, ptr, i64, ptr]
    cdll.ssd_recon_u8.restype = None
    cdll.intra_sads.argtypes = [ptr, i32, i32, ptr, ptr, f64, ptr, ptr]
    cdll.intra_sads.restype = None
    cdll.choose_intra.argtypes = [ptr, i32, i32, ptr, ptr, ptr, ptr, ptr]
    cdll.choose_intra.restype = None
    cdll.encode_residual.argtypes = [ptr, ptr, i32, i32, f64, ptr, ptr, ptr, ptr]
    cdll.encode_residual.restype = None
    cdll.reconstruct_block_u8.argtypes = [ptr, ptr, i32, i32, f64, ptr, ptr, i64]
    cdll.reconstruct_block_u8.restype = None
    cdll.encode_block_fused.argtypes = [
        ptr, ptr, i32, i32, f64, ptr, ptr, ptr, ptr, i64, ptr, ptr,
    ]
    cdll.encode_block_fused.restype = None
    cdll.simd_detect.argtypes = []
    cdll.simd_detect.restype = i32
    cdll.simd_set_level.argtypes = [i32]
    cdll.simd_set_level.restype = None
    cdll.simd_get_level.argtypes = []
    cdll.simd_get_level.restype = i32
    cdll.motion_search_u8.argtypes = [
        ptr, i64, i64, i64, ptr, i64, i32, i32, i64, i64, i32, f64,
        i32, i32, ptr, ptr, i32, ptr, ptr, ptr, ptr, ptr,
    ]
    cdll.motion_search_u8.restype = None
    cdll.entropy_write_levels.argtypes = [ptr, i64, ptr, ptr, i64]
    cdll.entropy_write_levels.restype = i64
    cdll.choose_intra_plane_u8.argtypes = [
        ptr, i64, ptr, i64, i32, i32, i64, i64, i64, i64, ptr, ptr, ptr,
    ]
    cdll.choose_intra_plane_u8.restype = None
    cdll.encode_block_fused2.argtypes = [
        ptr, i64, ptr, i64, ptr, i64, i32, i32, f64, ptr, ptr, ptr,
        ptr, i64, ptr, i64, ptr, ptr,
    ]
    cdll.encode_block_fused2.restype = None
    cdll.downscale_box_u8.argtypes = [ptr, i64, i64, i64, ptr, i64, i64]
    cdll.downscale_box_u8.restype = None
    return cdll


def available() -> bool:
    """Whether the compiled kernels are loaded in this process."""
    return lib is not None


class _Scratch(threading.local):
    """Per-thread fixed-size output buffers with precomputed pointers.

    ctypes releases the GIL during foreign calls, so module-global
    scratch would race if two threads encoded concurrently;
    thread-local storage keeps the cached pointers safe.
    """

    def __init__(self):
        self.f4 = np.empty(4, dtype=np.float64)
        self.f4_ptr = self.f4.ctypes.data
        self.mode = np.empty(1, dtype=np.int32)
        self.mode_ptr = self.mode.ctypes.data
        self.sad = np.empty(1, dtype=np.float64)
        self.sad_ptr = self.sad.ctypes.data
        self.stats = np.empty(2, dtype=np.int64)
        self.stats_ptr = self.stats.ctypes.data
        self.cap = 0
        # Fully-native block path scratch: intra prediction (up to a
        # 64x64 block), quantized level stack, residual bit emission
        # buffer, motion seeds and outputs.
        self.stats3 = np.empty(3, dtype=np.int64)
        self.stats3_ptr = self.stats3.ctypes.data
        self.pred = np.empty(64 * 64, dtype=np.float64)
        self.pred_ptr = self.pred.ctypes.data
        self.levels = np.empty((64, 8, 8), dtype=np.int32)
        self.levels_ptr = self.levels.ctypes.data
        self.bitbuf = np.empty(1 << 16, dtype=np.uint8)
        self.bitbuf_ptr = self.bitbuf.ctypes.data
        self.seed_dx = np.empty(8, dtype=np.int64)
        self.seed_dx_ptr = self.seed_dx.ctypes.data
        self.seed_dy = np.empty(8, dtype=np.int64)
        self.seed_dy_ptr = self.seed_dy.ctypes.data
        self.mout = np.empty(4, dtype=np.int64)
        self.mout_ptr = self.mout.ctypes.data
        self.mcost = np.empty(1, dtype=np.float64)
        self.mcost_ptr = self.mcost.ctypes.data
        # The ~1.7 MiB motion cost-cache table is lazy: only threads
        # that actually drive the native motion search pay for it.
        self.mcache_costs: Optional[np.ndarray] = None

    def ensure_motion(self) -> None:
        """Allocate the epoch-stamped motion cost cache on first use."""
        if self.mcache_costs is None:
            dim = 2 * MOTION_CACHE_HALF + 1
            self.mcache_costs = np.empty(dim * dim, dtype=np.float64)
            self.mcache_stamps = np.zeros(dim * dim, dtype=np.int64)
            self.mcache_epoch = np.zeros(1, dtype=np.int64)
            self.mcache_costs_ptr = self.mcache_costs.ctypes.data
            self.mcache_stamps_ptr = self.mcache_stamps.ctypes.data
            self.mcache_epoch_ptr = self.mcache_epoch.ctypes.data

    def ensure(self, n: int) -> None:
        """Grow the candidate scratch (xs, ys, costs) to hold ``n``."""
        if n > self.cap:
            self.cap = max(2 * n, 64)
            self.xs = np.empty(self.cap, dtype=np.int64)
            self.ys = np.empty(self.cap, dtype=np.int64)
            self.costs = np.empty(self.cap, dtype=np.float64)
            self.sads = np.empty(self.cap, dtype=np.int64)
            self.xs_ptr = self.xs.ctypes.data
            self.ys_ptr = self.ys.ctypes.data
            self.costs_ptr = self.costs.ctypes.data
            self.sads_ptr = self.sads.ctypes.data


_scratch = _Scratch()


def scratch() -> _Scratch:
    """This thread's scratch buffers (for direct ``lib`` callers)."""
    return _scratch


def sad_batch(
    reference: np.ndarray,
    block: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    istep: int = 1,
) -> np.ndarray:
    """Integer SADs of ``block`` at anchors ``(ys, xs)`` of ``reference``.

    ``reference`` must be C-contiguous uint8, ``block`` C-contiguous
    int32, ``xs``/``ys`` int64.  ``istep`` is the element pitch inside
    each window (2 samples the half-pel grid at integer positions).
    """
    n = int(xs.size)
    out = np.empty(n, dtype=np.int64)
    lib.sad_batch_u8(
        reference.ctypes.data,
        reference.strides[0],
        istep,
        block.ctypes.data,
        block.shape[0], block.shape[1],
        xs.ctypes.data, ys.ctypes.data,
        n,
        out.ctypes.data,
    )
    return out


def intra_sads(
    block_f: np.ndarray,
    top: Optional[np.ndarray],
    left: Optional[np.ndarray],
    dc: float,
    planar: np.ndarray,
) -> Tuple[float, float, float, float]:
    """The four intra-mode SADs ``(dc, planar, horizontal, vertical)``."""
    bh, bw = block_f.shape
    out = _scratch.f4
    lib.intra_sads(
        block_f.ctypes.data, bh, bw,
        top.ctypes.data if top is not None else None,
        left.ctypes.data if left is not None else None,
        dc,
        planar.ctypes.data,
        _scratch.f4_ptr,
    )
    return float(out[0]), float(out[1]), float(out[2]), float(out[3])


def choose_intra(
    block_f: np.ndarray,
    top: Optional[np.ndarray],
    left: Optional[np.ndarray],
) -> Tuple[int, np.ndarray, float]:
    """Fused intra decision: returns ``(mode_index, prediction, sad)``.

    The prediction block is bit-identical to
    ``repro.codec.intra.predict(mode, top, left, ...)``; mode selection
    matches ``choose_mode`` (strict <, DC-first tie-break).
    """
    bh, bw = block_f.shape
    pred = np.empty((bh, bw), dtype=np.float64)
    sc = _scratch
    lib.choose_intra(
        block_f.ctypes.data, bh, bw,
        top.ctypes.data if top is not None else None,
        left.ctypes.data if left is not None else None,
        pred.ctypes.data, sc.mode_ptr, sc.sad_ptr,
    )
    return int(sc.mode[0]), pred, float(sc.sad[0])


def encode_residual(
    block_f: np.ndarray,
    prediction: np.ndarray,
    step: float,
    basis: np.ndarray,
    zz_order: np.ndarray,
) -> Tuple[np.ndarray, int, int]:
    """Fused residual pipeline for one ``(h, w)`` coding block.

    Returns ``(levels, bits, num_active)`` where ``levels`` is the
    ``(n, 8, 8)`` int32 stack in blockify order, ``bits`` the exact
    entropy bit count of the zigzag-scanned levels, and ``num_active``
    the number of sub-blocks that went through the transform.
    """
    h, w = block_f.shape
    n = (h // 8) * (w // 8)
    levels = np.empty((n, 8, 8), dtype=np.int32)
    sc = _scratch
    lib.encode_residual(
        block_f.ctypes.data,
        prediction.ctypes.data,
        h, w, step,
        basis.ctypes.data,
        zz_order.ctypes.data,
        levels.ctypes.data,
        sc.stats_ptr,
    )
    return levels, int(sc.stats[0]), int(sc.stats[1])


def motion_search(
    reference: np.ndarray,
    block: np.ndarray,
    bx: int,
    by: int,
    window: int,
    lambda_mv: float,
    alg: int,
    param: int,
    seeds,
) -> Optional[Tuple[Tuple[int, int], float, int, int]]:
    """Run the C search driver; returns ``(mv, cost, evals, sad)``.

    Replicates ``SearchContext`` + the cross / one-at-a-time / hexagon
    loops evaluation-for-evaluation: same candidates in the same order,
    same cost cache semantics, same strict-< tie-breaks, same
    evaluation counters.  ``seeds`` is the AMVP candidate list probed
    first (the plain path passes ``[(0, 0), start]``, the bio-medical
    policy adds the learned predictor).  Returns ``None`` when the
    inputs fall outside the driver's envelope (non-uint8 planes,
    windows larger than the cache table) — callers then run the Python
    search.
    """
    if lib is None:
        return None
    bh, bw = block.shape
    if (
        reference.dtype != np.uint8
        or not reference.flags.c_contiguous
        or block.dtype != np.uint8
        or block.strides[1] != 1
        # Pattern offsets reach at most window + window // 2 (cross)
        # past the origin; keep everything inside the cache table.
        or window + window // 2 >= MOTION_CACHE_HALF
        or len(seeds) > 8
    ):
        return None
    raw = (
        reference.ctypes.data, reference.strides[0],
        reference.shape[0], reference.shape[1],
        block.ctypes.data, block.strides[0],
        bh, bw, bx, by,
    )
    return motion_search_raw(raw, window, lambda_mv, alg, param, seeds)


def motion_search_raw(
    raw: Tuple[int, int, int, int, int, int, int, int, int, int],
    window: int,
    lambda_mv: float,
    alg: int,
    param: int,
    seeds,
) -> Optional[Tuple[Tuple[int, int], float, int, int]]:
    """Pointer-level twin of :func:`motion_search` for pre-vetted planes.

    ``raw`` is ``(ref_ptr, ref_stride, ref_h, ref_w, blk_ptr, blk_stride,
    bh, bw, bx, by)`` with both planes already known to be C-contiguous
    uint8 — the per-tile encoder loop computes it once per block from
    hoisted base pointers so the hot path never touches ``ndarray.ctypes``
    (each access builds a fresh ctypes helper object).
    """
    if window + window // 2 >= MOTION_CACHE_HALF or len(seeds) > 8:
        return None
    sc = _scratch
    sdx = sc.seed_dx
    sdy = sc.seed_dy
    i = 0
    for sx, sy in seeds:
        if -MOTION_CACHE_HALF < sx < MOTION_CACHE_HALF and \
                -MOTION_CACHE_HALF < sy < MOTION_CACHE_HALF:
            sdx[i] = sx
            sdy[i] = sy
            i += 1
        else:
            return None
    if sc.mcache_costs is None:
        sc.ensure_motion()
    lib.motion_search_u8(
        raw[0], raw[1], raw[2], raw[3], raw[4], raw[5],
        raw[6], raw[7], raw[8], raw[9], window, lambda_mv, alg, param,
        sc.seed_dx_ptr, sc.seed_dy_ptr, i,
        sc.mcache_costs_ptr, sc.mcache_stamps_ptr, sc.mcache_epoch_ptr,
        sc.mout_ptr, sc.mcost_ptr,
    )
    dx, dy, evals, sad = sc.mout.tolist()
    return (dx, dy), sc.mcost[0].item(), evals, sad


def entropy_write(
    levels: np.ndarray, zz_order: np.ndarray
) -> Optional[Tuple[bytes, int]]:
    """Batch-emit the residual syntax of an ``(n, 8, 8)`` level stack.

    Returns ``(payload, nbits)`` where the first ``nbits`` bits of
    ``payload`` (MSB-first) are exactly what ``write_block`` would have
    produced for each sub-block in order; splice with
    ``BitWriter.append_bits``.  ``None`` when the native layer is off.
    """
    if lib is None:
        return None
    sc = _scratch
    nbits = lib.entropy_write_levels(
        levels.ctypes.data, levels.shape[0], zz_order.ctypes.data,
        sc.bitbuf_ptr, sc.bitbuf.size,
    )
    if nbits < 0:
        return None
    return sc.bitbuf[: (nbits + 7) // 8].tobytes(), int(nbits)


def downscale_box(
    src: np.ndarray, out_h: int, out_w: int
) -> Optional[np.ndarray]:
    """Exact integer box downscale of a C-contiguous uint8 plane.

    Bit-identical to ``repro.video.scale.downscale_box_reference`` for
    every valid geometry (``1 <= out_h <= h``, ``1 <= out_w <= w``);
    ``None`` when the native layer is off or the input falls outside
    the kernel's envelope — callers then run the NumPy oracle.
    """
    if lib is None:
        return None
    if src.dtype != np.uint8 or not src.flags.c_contiguous:
        return None
    h, w = src.shape
    if not (1 <= out_h <= h) or not (1 <= out_w <= w):
        return None
    out = np.empty((out_h, out_w), dtype=np.uint8)
    lib.downscale_box_u8(
        src.ctypes.data, src.strides[0], h, w,
        out.ctypes.data, out_h, out_w,
    )
    return out


#: Active SIMD level of the SAD kernels: 0 = scalar/SSE2 baseline,
#: 1 = AVX2, 2 = AVX-512.  Set at import from the CPU capabilities,
#: clamped by the ``REPRO_NATIVE_SIMD`` environment escape hatch.
simd_level: int = 0


def _init_simd(cdll: ctypes.CDLL) -> int:
    want = cdll.simd_detect()
    env = os.environ.get("REPRO_NATIVE_SIMD")
    if env is not None:
        try:
            want = min(want, int(env))
        except ValueError:
            pass
    cdll.simd_set_level(want)
    return int(cdll.simd_get_level())


lib = _load()
if lib is not None:
    simd_level = _init_simd(lib)
