/* Native hot-path kernels for the codec substrate.
 *
 * Compiled on demand by repro.native (gcc -O3, no -ffast-math: the
 * double arithmetic must follow IEEE semantics so results stay
 * deterministic and, for the integer SAD kernel, bit-identical to the
 * NumPy fallback).  Every function is a plain C symbol loaded through
 * ctypes; all arrays are C-contiguous buffers prepared by the Python
 * wrappers.
 */

#include <math.h>
#include <stddef.h>
#include <stdint.h>

/* Exp-Golomb code lengths (same arithmetic as repro.codec.bitstream). */
static inline int64_t ue_bits(int64_t value)
{
    uint64_t code = (uint64_t)value + 1;
    int bl = 64 - __builtin_clzll(code);
    return 2 * bl - 1;
}

static inline int64_t se_bits(int64_t value)
{
    int64_t mapped = value > 0 ? 2 * value - 1 : -2 * value;
    return ue_bits(mapped);
}

/* SAD of one int32 block against n displaced windows of a uint8 plane.
 *
 * Window i anchors at (ys[i], xs[i]); element (r, c) reads
 * ref[(ys[i] + r * istep) * stride + xs[i] + c * istep].  istep is 1
 * for integer-pel search and 2 for the half-pel grid (where anchors
 * are half-pel coordinates and the window samples at integer pitch).
 * Accumulates in int64 — bit-identical to the NumPy int path.
 */
void sad_batch_u8(const uint8_t *ref, int64_t stride, int64_t istep,
                  const int32_t *block, int bh, int bw,
                  const int64_t *xs, const int64_t *ys, int n,
                  int64_t *out)
{
    for (int i = 0; i < n; i++) {
        const uint8_t *anchor = ref + ys[i] * stride + xs[i];
        int64_t acc = 0;
        for (int r = 0; r < bh; r++) {
            const uint8_t *wr = anchor + (int64_t)r * istep * stride;
            const int32_t *br = block + (int64_t)r * bw;
            for (int c = 0; c < bw; c++) {
                int32_t d = (int32_t)wr[(int64_t)c * istep] - br[c];
                acc += d < 0 ? -d : d;
            }
        }
        out[i] = acc;
    }
}

/* The four intra mode SADs: DC, planar, horizontal, vertical.
 *
 * block is the (bh, bw) float64 original; top/left may be NULL (tile
 * boundary), in which case the neutral sample 128 substitutes, as in
 * repro.codec.intra.  planar is the precomputed planar prediction
 * (built in Python so the winning prediction block stays identical to
 * what predict() returns).  out = [dc, planar, horizontal, vertical].
 */
void intra_sads(const double *block, int bh, int bw,
                const double *top, const double *left,
                double dc, const double *planar,
                double *out)
{
    double s_dc = 0.0, s_pl = 0.0, s_h = 0.0, s_v = 0.0;
    for (int r = 0; r < bh; r++) {
        const double *br = block + (ptrdiff_t)r * bw;
        const double *pr = planar + (ptrdiff_t)r * bw;
        double lv = left ? left[r] : 128.0;
        for (int c = 0; c < bw; c++) {
            double x = br[c];
            double tv = top ? top[c] : 128.0;
            s_dc += fabs(x - dc);
            s_pl += fabs(x - pr[c]);
            s_h += fabs(x - lv);
            s_v += fabs(x - tv);
        }
    }
    out[0] = s_dc;
    out[1] = s_pl;
    out[2] = s_h;
    out[3] = s_v;
}

/* Sum of |block - pred| over n doubles.
 *
 * Used for the inter-prediction SAD, where block samples are integers
 * and predictions are integers (motion compensation, half-pel fetch)
 * or exact halves (bi-prediction average): every partial sum is then
 * exactly representable, so sequential summation is bit-identical to
 * NumPy's pairwise reduction.
 */
void sad_pred_d(const double *block, const double *pred, int64_t n,
                double *out)
{
    double acc = 0.0;
    for (int64_t k = 0; k < n; k++)
        acc += fabs(block[k] - pred[k]);
    out[0] = acc;
}

/* Sum of (block - recon)^2: block is the integer-valued float64
 * original, recon the reconstructed uint8 samples.  Integer squares
 * sum exactly in double, so the order of summation cannot matter.
 */
void ssd_recon_u8(const double *block, const uint8_t *recon, int64_t n,
                  double *out)
{
    double acc = 0.0;
    for (int64_t k = 0; k < n; k++) {
        double d = block[k] - (double)recon[k];
        acc += d * d;
    }
    out[0] = acc;
}

/* Rate-penalized motion costs: SAD plus lambda * (|dx| + |dy|).
 *
 * Same window arithmetic as sad_batch_u8 with istep == 1; (bx, by) is
 * the block position, so dx = xs[i] - bx.  The cost arithmetic
 * replicates the Python scalar path exactly (one rounding per
 * operation, no FMA): double(sad) + lam * double(|dx| + |dy|).
 */
void sad_cost_batch_u8(const uint8_t *ref, int64_t stride,
                       const int32_t *block, int bh, int bw,
                       const int64_t *xs, const int64_t *ys, int n,
                       int64_t bx, int64_t by, double lam,
                       double *out)
{
    for (int i = 0; i < n; i++) {
        const uint8_t *anchor = ref + ys[i] * stride + xs[i];
        int64_t acc = 0;
        for (int r = 0; r < bh; r++) {
            const uint8_t *wr = anchor + (int64_t)r * stride;
            const int32_t *br = block + (int64_t)r * bw;
            for (int c = 0; c < bw; c++) {
                int32_t d = (int32_t)wr[c] - br[c];
                acc += d < 0 ? -d : d;
            }
        }
        int64_t adx = xs[i] - bx, ady = ys[i] - by;
        if (adx < 0) adx = -adx;
        if (ady < 0) ady = -ady;
        out[i] = (double)acc + lam * (double)(adx + ady);
    }
}

/* Fused intra mode decision for one coding block.
 *
 * Computes the DC / planar / horizontal / vertical predictions and
 * their SADs in one pass, picks the SAD-best mode (strict <, ties
 * toward the lower mode index, DC first — same order as
 * repro.codec.intra.choose_mode) and writes the winning prediction
 * into pred_out.  The prediction arithmetic replicates predict()
 * operation-for-operation (compiled with -ffp-contract=off), so the
 * winner block is bit-identical to what the Python decoder rebuilds
 * from the coded mode.  Only the SAD reductions may differ from
 * NumPy's pairwise summation in the last ulp, which matters only on
 * exact cost ties.
 *
 * top/left may be NULL (tile boundary): the neutral sample 128
 * substitutes.  mode_out[0] in {0=DC, 1=planar, 2=horizontal,
 * 3=vertical}; sad_out[0] is the winning SAD.
 */
void choose_intra(const double *block, int bh, int bw,
                  const double *top, const double *left,
                  double *pred_out, int32_t *mode_out, double *sad_out)
{
    double s_dc = 0.0, s_pl = 0.0, s_h = 0.0, s_v = 0.0;
    /* DC value: mean of the available reference samples.  The samples
     * are integer-valued doubles, so sequential summation is exact and
     * matches repro.codec.intra._dc_value bit-for-bit. */
    double dc = 128.0;
    if (top || left) {
        double total = 0.0;
        int64_t count = 0;
        if (top) {
            for (int c = 0; c < bw; c++)
                total += top[c];
            count += bw;
        }
        if (left) {
            for (int r = 0; r < bh; r++)
                total += left[r];
            count += bh;
        }
        dc = total / (double)count;
    }
    double tr = top ? top[bw - 1] : 128.0;   /* top-right reference */
    double bl = left ? left[bh - 1] : 128.0; /* bottom-left reference */
    double inv_w = (double)(bw + 1);
    double inv_h = (double)(bh + 1);
    for (int r = 0; r < bh; r++) {
        const double *br = block + (ptrdiff_t)r * bw;
        double *pr = pred_out + (ptrdiff_t)r * bw;
        double lv = left ? left[r] : 128.0;
        double wy = (double)(r + 1) / inv_h;
        for (int c = 0; c < bw; c++) {
            double x = br[c];
            double tv = top ? top[c] : 128.0;
            double wx = (double)(c + 1) / inv_w;
            /* planar: same op sequence as predict(PLANAR, ...) */
            double horiz = lv * (1.0 - wx) + tr * wx;
            double vert = tv * (1.0 - wy) + bl * wy;
            double pl = (horiz + vert) / 2.0;
            pr[c] = pl; /* provisional: overwritten unless planar wins */
            s_dc += fabs(x - dc);
            s_pl += fabs(x - pl);
            s_h += fabs(x - lv);
            s_v += fabs(x - tv);
        }
    }
    double sads[4] = { s_dc, s_pl, s_h, s_v };
    int best = 0;
    for (int m = 1; m < 4; m++)
        if (sads[m] < sads[best])
            best = m;
    mode_out[0] = best;
    sad_out[0] = sads[best];
    if (best == 0) {
        for (ptrdiff_t k = 0; k < (ptrdiff_t)bh * bw; k++)
            pred_out[k] = dc;
    } else if (best == 2) {
        for (int r = 0; r < bh; r++) {
            double lv = left ? left[r] : 128.0;
            double *pr = pred_out + (ptrdiff_t)r * bw;
            for (int c = 0; c < bw; c++)
                pr[c] = lv;
        }
    } else if (best == 3) {
        for (int r = 0; r < bh; r++) {
            double *pr = pred_out + (ptrdiff_t)r * bw;
            for (int c = 0; c < bw; c++)
                pr[c] = top ? top[c] : 128.0;
        }
    }
}

/* Fused residual pipeline for one coding block:
 * residual -> per-8x8 zero skip -> DCT (basis matmul) -> dead-zone
 * quantization -> zigzag run-length bit count.
 *
 * block/pred are (h, w) float64; basis is the orthonormal 8x8 DCT-II
 * matrix (row-major); zz_order maps scan position -> row-major index.
 * levels_out receives (h/8)*(w/8) blocks of 64 int32 levels in
 * blockify order (sub-block rows first).  stats_out = [total_bits,
 * num_active_blocks].  Matches the NumPy pipeline: a sub-block whose
 * residual SAD is below 3 * step provably quantizes to all zeros and
 * skips its transform.
 */
/* Reconstruction of one 8x8 sub-block from its levels and prediction.
 *
 * Replicates repro.codec.encoder.reconstruct_block: all-zero levels
 * short-circuit to rint(pred); otherwise dequantize (level * step),
 * inverse DCT (basis^T @ X @ basis) and rint(pred + residual); both
 * paths then bound to [0, 255].  rint() uses round-half-to-even like
 * np.rint.  pred strides by pstride doubles per row; out strides by
 * ostride bytes.
 */
static void recon_sub8(const int32_t *levels, const double *pred,
                       ptrdiff_t pstride, double step, const double *basis,
                       uint8_t *out, ptrdiff_t ostride)
{
    int zero = 1;
    for (int k = 0; k < 64; k++)
        if (levels[k]) {
            zero = 0;
            break;
        }
    if (zero) {
        for (int r = 0; r < 8; r++) {
            const double *pr = pred + (ptrdiff_t)r * pstride;
            uint8_t *orow = out + (ptrdiff_t)r * ostride;
            for (int c = 0; c < 8; c++) {
                double v = rint(pr[c]);
                if (v > 255.0)
                    v = 255.0;
                if (v < 0.0)
                    v = 0.0;
                orow[c] = (uint8_t)v;
            }
        }
        return;
    }
    double coef[64], tmp[64];
    for (int k = 0; k < 64; k++)
        coef[k] = (double)levels[k] * step;
    /* tmp = basis^T @ coef */
    for (int i = 0; i < 8; i++)
        for (int j = 0; j < 8; j++) {
            double acc = 0.0;
            for (int k = 0; k < 8; k++)
                acc += basis[k * 8 + i] * coef[k * 8 + j];
            tmp[i * 8 + j] = acc;
        }
    /* resid = tmp @ basis */
    for (int r = 0; r < 8; r++) {
        const double *pr = pred + (ptrdiff_t)r * pstride;
        uint8_t *orow = out + (ptrdiff_t)r * ostride;
        for (int c = 0; c < 8; c++) {
            double acc = 0.0;
            for (int k = 0; k < 8; k++)
                acc += tmp[r * 8 + k] * basis[k * 8 + c];
            double v = rint(acc + pr[c]);
            if (v > 255.0)
                v = 255.0;
            if (v < 0.0)
                v = 0.0;
            orow[c] = (uint8_t)v;
        }
    }
}

/* Reconstruction of a whole coding block (decoder and fallback path).
 * levels is the (h/8 * w/8, 8, 8) stack in blockify order; out is a
 * (h, w) uint8 buffer with out_stride bytes per row.
 */
void reconstruct_block_u8(const double *pred, const int32_t *levels,
                          int h, int w, double step, const double *basis,
                          uint8_t *out, int64_t out_stride)
{
    int rows = h / 8, cols = w / 8;
    for (int rb = 0; rb < rows; rb++)
        for (int cb = 0; cb < cols; cb++)
            recon_sub8(levels + ((ptrdiff_t)rb * cols + cb) * 64,
                       pred + ((ptrdiff_t)rb * 8) * w + cb * 8, w,
                       step, basis,
                       out + (ptrdiff_t)rb * 8 * out_stride + cb * 8,
                       out_stride);
}

/* Fully fused per-block encode: residual pipeline (zero-skip, DCT,
 * quantization, zigzag bit count) plus reconstruction written straight
 * into the frame's reconstruction plane and the SSD of the original
 * against the reconstructed samples.  recon_out points at the block's
 * top-left sample inside the plane (recon_stride bytes per row).
 * stats_out = [bits, num_active]; ssd_out[0] = sum((block - recon)^2),
 * exact in any order because both operands are integer-valued.
 */
void encode_block_fused(const double *block, const double *pred,
                        int h, int w, double step, const double *basis,
                        const int32_t *zz_order,
                        int32_t *levels_out,
                        uint8_t *recon_out, int64_t recon_stride,
                        int64_t *stats_out, double *ssd_out)
{
    int rows = h / 8, cols = w / 8;
    double res[64], tmp[64], coef[64];
    int64_t bits = 0, active = 0;
    double ssd = 0.0;
    for (int rb = 0; rb < rows; rb++) {
        for (int cb = 0; cb < cols; cb++) {
            int32_t *levels = levels_out + ((ptrdiff_t)rb * cols + cb) * 64;
            const double *bsub = block + ((ptrdiff_t)rb * 8) * w + cb * 8;
            const double *psub = pred + ((ptrdiff_t)rb * 8) * w + cb * 8;
            uint8_t *osub = recon_out + (ptrdiff_t)rb * 8 * recon_stride + cb * 8;
            double sad = 0.0;
            for (int r = 0; r < 8; r++) {
                const double *br = bsub + (ptrdiff_t)r * w;
                const double *pr = psub + (ptrdiff_t)r * w;
                for (int c = 0; c < 8; c++) {
                    double d = br[c] - pr[c];
                    res[r * 8 + c] = d;
                    sad += fabs(d);
                }
            }
            if (sad < 3.0 * step) {
                for (int k = 0; k < 64; k++)
                    levels[k] = 0;
                bits += 1; /* ue(0): all-zero block header */
            } else {
                active++;
                /* tmp = basis @ res */
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++) {
                        double acc = 0.0;
                        for (int k = 0; k < 8; k++)
                            acc += basis[i * 8 + k] * res[k * 8 + j];
                        tmp[i * 8 + j] = acc;
                    }
                /* coef = tmp @ basis^T */
                for (int i = 0; i < 8; i++)
                    for (int j = 0; j < 8; j++) {
                        double acc = 0.0;
                        for (int k = 0; k < 8; k++)
                            acc += tmp[i * 8 + k] * basis[j * 8 + k];
                        coef[i * 8 + j] = acc;
                    }
                for (int k = 0; k < 64; k++) {
                    double c = coef[k];
                    double mag = floor(fabs(c) / step + 0.25);
                    levels[k] = c > 0.0 ? (int32_t)mag
                              : c < 0.0 ? -(int32_t)mag : 0;
                }
                int last = -1;
                for (int s = 63; s >= 0; s--)
                    if (levels[zz_order[s]] != 0) {
                        last = s;
                        break;
                    }
                bits += ue_bits((int64_t)last + 1);
                int prev = -1;
                for (int s = 0; s <= last; s++) {
                    int32_t lv = levels[zz_order[s]];
                    if (lv == 0)
                        continue;
                    bits += ue_bits((int64_t)(s - prev - 1));
                    bits += se_bits((int64_t)lv);
                    prev = s;
                }
            }
            recon_sub8(levels, psub, w, step, basis, osub, recon_stride);
            for (int r = 0; r < 8; r++) {
                const double *br = bsub + (ptrdiff_t)r * w;
                const uint8_t *orow = osub + (ptrdiff_t)r * recon_stride;
                for (int c = 0; c < 8; c++) {
                    double d = br[c] - (double)orow[c];
                    ssd += d * d;
                }
            }
        }
    }
    stats_out[0] = bits;
    stats_out[1] = active;
    ssd_out[0] = ssd;
}

void encode_residual(const double *block, const double *pred, int h, int w,
                     double step, const double *basis,
                     const int32_t *zz_order,
                     int32_t *levels_out, int64_t *stats_out)
{
    int rows = h / 8, cols = w / 8;
    double res[64], tmp[64], coef[64];
    int64_t bits = 0, active = 0;
    for (int rb = 0; rb < rows; rb++) {
        for (int cb = 0; cb < cols; cb++) {
            int32_t *levels = levels_out + ((ptrdiff_t)rb * cols + cb) * 64;
            double sad = 0.0;
            for (int r = 0; r < 8; r++) {
                const double *br = block + ((ptrdiff_t)(rb * 8 + r)) * w + cb * 8;
                const double *pr = pred + ((ptrdiff_t)(rb * 8 + r)) * w + cb * 8;
                for (int c = 0; c < 8; c++) {
                    double d = br[c] - pr[c];
                    res[r * 8 + c] = d;
                    sad += fabs(d);
                }
            }
            if (sad < 3.0 * step) {
                for (int k = 0; k < 64; k++)
                    levels[k] = 0;
                bits += 1; /* ue(0): all-zero block header */
                continue;
            }
            active++;
            /* tmp = basis @ res */
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) {
                    double acc = 0.0;
                    for (int k = 0; k < 8; k++)
                        acc += basis[i * 8 + k] * res[k * 8 + j];
                    tmp[i * 8 + j] = acc;
                }
            /* coef = tmp @ basis^T */
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) {
                    double acc = 0.0;
                    for (int k = 0; k < 8; k++)
                        acc += tmp[i * 8 + k] * basis[j * 8 + k];
                    coef[i * 8 + j] = acc;
                }
            /* dead-zone quantization (repro.codec.quant semantics) */
            for (int k = 0; k < 64; k++) {
                double c = coef[k];
                double mag = floor(fabs(c) / step + 0.25);
                levels[k] = c > 0.0 ? (int32_t)mag
                          : c < 0.0 ? -(int32_t)mag : 0;
            }
            /* zigzag run-length bit count (repro.codec.entropy) */
            int last = -1;
            for (int s = 63; s >= 0; s--)
                if (levels[zz_order[s]] != 0) {
                    last = s;
                    break;
                }
            bits += ue_bits((int64_t)last + 1);
            int prev = -1;
            for (int s = 0; s <= last; s++) {
                int32_t lv = levels[zz_order[s]];
                if (lv == 0)
                    continue;
                bits += ue_bits((int64_t)(s - prev - 1));
                bits += se_bits((int64_t)lv);
                prev = s;
            }
        }
    }
    stats_out[0] = bits;
    stats_out[1] = active;
}
